//===- opt/ProfileView.cpp - Optimizer view of a profile artifact -------------===//

#include "opt/ProfileView.h"

#include "bl/PathNumbering.h"
#include "cct/CallingContextTree.h"
#include "cfg/Cfg.h"
#include "ir/Module.h"
#include "obs/Obs.h"
#include "prof/CallSites.h"
#include "profdb/Artifact.h"

#include <algorithm>
#include <map>
#include <unordered_map>

using namespace pp;
using namespace pp::opt;

const char *opt::viewStatusName(ViewStatus Status) {
  switch (Status) {
  case ViewStatus::Ok:
    return "ok";
  case ViewStatus::CrossAcquisition:
    return "cross-acquisition";
  case ViewStatus::SchemaMismatch:
    return "schema-mismatch";
  case ViewStatus::EmptyPathTables:
    return "empty-path-tables";
  case ViewStatus::FunctionTableMismatch:
    return "function-table-mismatch";
  case ViewStatus::PathSpaceMismatch:
    return "path-space-mismatch";
  case ViewStatus::MultiIterationPaths:
    return "multi-iteration-paths";
  }
  return "unknown";
}

namespace {

/// Per-(function, path sum) accumulator across every source the artifact
/// stores paths in (flat tables for Flow modes, per-record CCT tables for
/// ContextFlow modes; merged artifacts only ever populate one).
struct PathAgg {
  uint64_t Freq = 0;
  uint64_t Metric0 = 0;
  uint64_t Metric1 = 0;
};

ViewStatus refuse(ViewStatus Status) {
  obs::add(obs::Counter::OptProfileRefusals);
  return Status;
}

} // namespace

ViewStatus ProfileView::build(const profdb::Artifact &A, const ir::Module &M,
                              ProfileView &Out) {
  Out = ProfileView();
  Out.M = &M;

  if (A.Schema.Acquisition != "exact")
    return refuse(ViewStatus::CrossAcquisition);
  if (A.Schema.K > 1)
    return refuse(ViewStatus::MultiIterationPaths);
  // Merged pre-k artifacts have Schema.K == 1; trust the per-function
  // flag too so a hand-assembled mix cannot slip window sums through.
  for (const prof::FunctionPathProfile &Profile : A.PathProfiles)
    if (Profile.KIters > 1)
      return refuse(ViewStatus::MultiIterationPaths);

  static const prof::Mode AllModes[] = {
      prof::Mode::None,      prof::Mode::Edge,
      prof::Mode::Flow,      prof::Mode::FlowHw,
      prof::Mode::Context,   prof::Mode::ContextHw,
      prof::Mode::ContextFlow, prof::Mode::ContextFlowHw,
  };
  bool KnownMode = false;
  for (prof::Mode Candidate : AllModes)
    if (A.Schema.Mode == prof::modeName(Candidate)) {
      Out.ProfMode = Candidate;
      KnownMode = true;
      break;
    }
  if (!KnownMode)
    return refuse(ViewStatus::SchemaMismatch);
  const prof::Mode Mode = Out.ProfMode;
  if (!prof::modeUsesPaths(Mode) && !prof::modeUsesCct(Mode))
    return refuse(ViewStatus::SchemaMismatch);

  const size_t NumFuncs = M.numFunctions();
  if (A.Functions.size() != NumFuncs)
    return refuse(ViewStatus::FunctionTableMismatch);
  for (size_t Id = 0; Id != NumFuncs; ++Id)
    if (A.Functions[Id] != M.function(Id)->name())
      return refuse(ViewStatus::FunctionTableMismatch);

  Out.Funcs.resize(NumFuncs);
  Out.Sites.resize(NumFuncs);
  Out.SiteHot.resize(NumFuncs);

  // Resolve call sites to (block, instruction) handles now, in the
  // canonical enumeration order the CCT's callee slots use. Handles stay
  // valid across reorderBlocks; the indices they were derived from do not.
  for (size_t Id = 0; Id != NumFuncs; ++Id) {
    const ir::Function &F = *M.function(Id);
    for (const prof::CallSite &Site : prof::enumerateCallSites(F))
      Out.Sites[Id].push_back(
          SiteRef{F.block(Site.BlockId), Site.InstIndex, Site.Indirect});
  }

  if (prof::modeUsesPaths(Mode)) {
    std::vector<std::map<uint64_t, PathAgg>> Agg(NumFuncs);
    std::vector<uint64_t> DeclaredPaths(NumFuncs, 0);

    for (const prof::FunctionPathProfile &Profile : A.PathProfiles) {
      if (!Profile.HasProfile)
        continue;
      if (Profile.FuncId >= NumFuncs)
        return refuse(ViewStatus::FunctionTableMismatch);
      DeclaredPaths[Profile.FuncId] = Profile.NumPaths;
      for (const prof::PathEntry &Entry : Profile.Paths) {
        PathAgg &Cell = Agg[Profile.FuncId][Entry.PathSum];
        Cell.Freq += Entry.Freq;
        Cell.Metric0 += Entry.Metric0;
        Cell.Metric1 += Entry.Metric1;
      }
    }

    if (A.Tree) {
      for (const auto &R : A.Tree->records()) {
        if (R->PathTable.empty())
          continue;
        if (R->procId() == cct::RootProcId ||
            R->procId() >= NumFuncs)
          return refuse(ViewStatus::FunctionTableMismatch);
        for (const auto &CellPair : R->PathTable) {
          PathAgg &Cell = Agg[R->procId()][CellPair.first];
          Cell.Freq += CellPair.second.Freq;
          Cell.Metric0 += CellPair.second.Metric0;
          Cell.Metric1 += CellPair.second.Metric1;
        }
      }
      for (size_t Id = 0; Id != NumFuncs && Id != A.Tree->numProcs(); ++Id)
        if (A.Tree->procDesc(static_cast<cct::ProcId>(Id)).NumPaths)
          DeclaredPaths[Id] =
              A.Tree->procDesc(static_cast<cct::ProcId>(Id)).NumPaths;
    }

    for (size_t Id = 0; Id != NumFuncs; ++Id) {
      if (Agg[Id].empty() && !DeclaredPaths[Id])
        continue;
      const ir::Function &F = *M.function(Id);
      cfg::Cfg G(F);
      bl::PathNumbering PN(G);
      // The profiler only records paths for functions whose numbering is
      // countable; an artifact claiming paths for an uncountable function
      // was collected from different code.
      if (!PN.valid())
        return refuse(ViewStatus::PathSpaceMismatch);
      if (DeclaredPaths[Id] && DeclaredPaths[Id] != PN.numPaths())
        return refuse(ViewStatus::PathSpaceMismatch);
      if (Agg[Id].empty())
        continue;

      FunctionHotness &FH = Out.Funcs[Id];
      bool UseMetric = false;
      for (const auto &CellPair : Agg[Id]) {
        if (CellPair.first >= PN.numPaths())
          return refuse(ViewStatus::PathSpaceMismatch);
        UseMetric |= CellPair.second.Metric0 != 0;
        FH.TotalFreq += CellPair.second.Freq;
        FH.TotalMetric0 += CellPair.second.Metric0;
        FH.TotalMetric1 += CellPair.second.Metric1;
      }

      // Rank paths by the consistent measure: measured PIC0 cost when
      // the run recorded any, frequency otherwise. Ties keep the smaller
      // path sum (the map iterates ascending, stable_sort preserves it).
      std::vector<std::pair<uint64_t, const PathAgg *>> Ranked;
      for (const auto &CellPair : Agg[Id])
        Ranked.push_back({CellPair.first, &CellPair.second});
      std::stable_sort(Ranked.begin(), Ranked.end(),
                       [UseMetric](const auto &L, const auto &R) {
                         uint64_t WL = UseMetric ? L.second->Metric0
                                                 : L.second->Freq;
                         uint64_t WR = UseMetric ? R.second->Metric0
                                                 : R.second->Freq;
                         return WL > WR;
                       });
      if (Ranked.size() > MaxPathsKept)
        Ranked.resize(MaxPathsKept);

      for (const auto &[Sum, Cell] : Ranked) {
        bl::RegeneratedPath Path = PN.regenerate(Sum);
        HotPath HP;
        HP.PathSum = Sum;
        HP.Freq = Cell->Freq;
        HP.Metric0 = Cell->Metric0;
        HP.Metric1 = Cell->Metric1;
        HP.StartsAfterBackedge = Path.StartsAfterBackedge;
        for (unsigned Node : Path.Nodes)
          HP.Blocks.push_back(G.block(Node));
        for (unsigned EdgeId : Path.Edges) {
          const cfg::Edge &E = G.edge(EdgeId);
          if (E.To == G.exitNode())
            continue; // the synthetic return edge ends the path
          HP.SuccIndices.push_back(static_cast<unsigned>(E.SuccIndex));
        }
        if (HP.SuccIndices.size() + 1 != HP.Blocks.size())
          return refuse(ViewStatus::PathSpaceMismatch);
        FH.Paths.push_back(std::move(HP));
      }
      FH.Hottest = FH.Paths.front();
      FH.HasPaths = true;
      Out.HasPaths = true;
    }

    if (!Out.HasPaths)
      return refuse(ViewStatus::EmptyPathTables);
  }

  if (prof::modeUsesCct(Mode)) {
    if (!A.Tree)
      return refuse(ViewStatus::SchemaMismatch);
    const cct::CallingContextTree &T = *A.Tree;
    if (T.numProcs() != NumFuncs)
      return refuse(ViewStatus::FunctionTableMismatch);
    for (size_t Id = 0; Id != NumFuncs; ++Id) {
      const cct::ProcDesc &Desc = T.procDesc(static_cast<cct::ProcId>(Id));
      if (Desc.Name != M.function(Id)->name() ||
          Desc.NumSites != Out.Sites[Id].size())
        return refuse(ViewStatus::FunctionTableMismatch);
      Out.SiteHot[Id].resize(Out.Sites[Id].size());
      for (size_t S = 0; S != Out.Sites[Id].size(); ++S)
        Out.SiteHot[Id][S].Indirect = Out.Sites[Id][S].Indirect;
    }

    // Subtree metric sums: records are stored in allocation order with
    // parents before children, so one reverse sweep folding each record
    // into its parent accumulates complete subtrees.
    const auto &Records = T.records();
    const size_t N = Records.size();
    std::unordered_map<const cct::CallRecord *, size_t> Index;
    Index.reserve(N);
    for (size_t I = 0; I != N; ++I)
      Index[Records[I].get()] = I;
    std::vector<uint64_t> SubCalls(N, 0), SubM0(N, 0), SubM1(N, 0);
    for (size_t I = N; I-- > 0;) {
      const cct::CallRecord &R = *Records[I];
      // Own cost: record metrics (ContextHw) plus path-cell metrics
      // (ContextFlowHw); the runtime populates exactly one of the two.
      SubCalls[I] += R.Metrics.empty() ? 0 : R.Metrics[0];
      SubM0[I] += R.Metrics.size() > 1 ? R.Metrics[1] : 0;
      SubM1[I] += R.Metrics.size() > 2 ? R.Metrics[2] : 0;
      for (const auto &CellPair : R.PathTable) {
        SubM0[I] += CellPair.second.Metric0;
        SubM1[I] += CellPair.second.Metric1;
      }
      if (R.parent()) {
        auto It = Index.find(R.parent());
        if (It == Index.end())
          return refuse(ViewStatus::FunctionTableMismatch);
        SubCalls[It->second] += SubCalls[I];
        SubM0[It->second] += SubM0[I];
        SubM1[It->second] += SubM1[I];
      }
    }

    // Attribute each child subtree to the caller slot that reached it.
    // A slot resolving to a non-child (an ancestor) is a recursion
    // backedge: mark it and attribute nothing — its "subtree" is the
    // ancestor's own, already counted.
    for (size_t I = 0; I != N; ++I) {
      const cct::CallRecord &R = *Records[I];
      if (R.procId() == cct::RootProcId)
        continue;
      if (R.numSlots() != Out.SiteHot[R.procId()].size())
        return refuse(ViewStatus::FunctionTableMismatch);
      for (unsigned S = 0; S != R.numSlots(); ++S) {
        const cct::CallRecord::Slot &Slot = R.slot(S);
        SiteHotness &Hot = Out.SiteHot[R.procId()][S];
        auto attribute = [&](const cct::CallRecord *Target) {
          if (!Target)
            return;
          if (Target->parent() != &R) {
            Hot.Recursive = true;
            return;
          }
          auto It = Index.find(Target);
          if (It == Index.end())
            return;
          const cct::CallRecord &Child = *Records[It->second];
          Hot.Calls += Child.Metrics.empty() ? 0 : Child.Metrics[0];
          Hot.Metric0 += SubM0[It->second];
          Hot.Metric1 += SubM1[It->second];
        };
        if (Slot.K == cct::CallRecord::Slot::Kind::Record)
          attribute(Slot.Direct);
        else if (Slot.K == cct::CallRecord::Slot::Kind::List)
          for (const auto &Entry : Slot.List)
            attribute(Entry.first);
      }
    }

    Out.TotalMetric0 = N ? SubM0[0] : 0;
    Out.TotalCalls = N ? SubCalls[0] : 0;
    Out.HasCct = true;
  }

  return ViewStatus::Ok;
}
