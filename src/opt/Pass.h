//===- opt/Pass.h - The profile-guided pass pipeline ------------*- C++ -*-===//
///
/// \file
/// The optimizer's pass layer: three profile consumers — hot-path-first
/// block layout, path-based superblock formation (tail duplication along
/// the hottest Ball-Larus path), and CCT-hotness-directed inlining — run
/// in a deterministic, caller-chosen order over one module + ProfileView
/// pair. Each pass reports typed per-pass statistics (what it changed,
/// what it refused and why), and the pipeline re-verifies the module
/// after every pass so a transform bug surfaces as a typed error, never
/// as a miscomputing program.
///
/// Knobs follow the repo's strict env convention (warn-and-default):
/// PP_OPT_PASSES (comma-separated pass list), PP_OPT_INLINE_BUDGET
/// (instructions a caller may grow by), PP_OPT_DUP_BUDGET (instructions
/// a function may duplicate).
///
//===----------------------------------------------------------------------===//

#ifndef PP_OPT_PASS_H
#define PP_OPT_PASS_H

#include "opt/ProfileView.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pp {
namespace ir {
class Module;
} // namespace ir

namespace opt {

/// The passes the pipeline knows, in their conventional order.
enum class PassKind : unsigned {
  Layout,     ///< hot-path-first block layout
  Superblock, ///< tail-duplicate the hot path's side-entered suffix
  Inline,     ///< inline call sites whose CCT subtree is hot enough
};

/// CLI/report name of \p Kind ("layout", "superblock", "inline").
const char *passName(PassKind Kind);

/// Pipeline knobs.
struct PassOptions {
  /// Max instructions a single caller may grow by through inlining.
  uint64_t InlineBudget = 256;
  /// Max instructions a single function may add through tail duplication.
  uint64_t DupBudget = 128;
  /// Inline a site when its CCT subtree carries at least
  /// InlineHotNum/InlineHotDen of the whole run's PIC0 (invocations when
  /// the profile recorded no HW metrics). Default: 1/50 = 2%.
  uint64_t InlineHotNum = 1;
  uint64_t InlineHotDen = 50;
  /// Max extra instructions an inlined invocation may execute over the
  /// call it replaces. The VM's Call instruction marshals arguments and
  /// the return value itself, so expansion costs numParams (explicit
  /// argument Movs) plus one result Mov per invocation; a site above this
  /// line is a measured pessimization on this machine, whatever its
  /// hotness, and is refused (counted in CostRefusals).
  uint64_t InlineMaxOverhead = 1;

  /// Reads PP_OPT_INLINE_BUDGET / PP_OPT_DUP_BUDGET through the strict
  /// env path (warn-and-default, support/Env.h).
  static PassOptions fromEnv(const char *Tool);
};

/// What one pass did — and what it declined to do, with the reason
/// bucketed, so "the optimizer did nothing" is always diagnosable.
struct PassStats {
  PassKind Kind = PassKind::Layout;
  unsigned FunctionsConsidered = 0;
  unsigned FunctionsChanged = 0;
  unsigned BlocksDuplicated = 0;
  unsigned SitesInlined = 0;
  uint64_t InstsAdded = 0;
  /// Transforms refused because a budget knob was exhausted.
  unsigned BudgetRefusals = 0;
  /// Inline sites refused because they would unroll recursion (CCT
  /// backedge or a static callee->caller cycle).
  unsigned RecursionRefusals = 0;
  /// Inline sites refused for safety: indirect targets, or callees
  /// containing Setjmp (whose buffer records the frame it runs in).
  unsigned UnsafeRefusals = 0;
  /// Inline sites refused because expansion would execute more
  /// instructions per invocation than the call it replaces
  /// (PassOptions::InlineMaxOverhead).
  unsigned CostRefusals = 0;
};

/// Outcome of a pipeline run.
struct PipelineResult {
  std::vector<PassStats> Passes;
  bool Ok = true;
  /// First verifier failure when !Ok (the module must be discarded).
  std::string Error;
};

/// Parses a comma-separated pass list ("layout,superblock,inline").
/// Unknown names fail with a message in \p Error; duplicates are kept
/// (running a pass twice is allowed and idempotent for layout).
bool parsePasses(const std::string &Text, std::vector<PassKind> &Out,
                 std::string &Error);

/// PP_OPT_PASSES via the warn-and-default convention: unset returns
/// \p Default, a malformed list warns on stderr and returns \p Default.
std::vector<PassKind> passesFromEnv(const char *Tool,
                                    std::vector<PassKind> Default);

/// The individual passes (exposed for targeted tests; runPipeline is the
/// production entry). Each returns its stats and mutates \p M in place.
PassStats runLayoutPass(ir::Module &M, const ProfileView &View);
PassStats runSuperblockPass(ir::Module &M, const ProfileView &View,
                            const PassOptions &Opts);
PassStats runInlinePass(ir::Module &M, const ProfileView &View,
                        const PassOptions &Opts);

/// Runs \p Passes over \p M in order, re-verifying the module after each
/// pass. On a verifier failure the pipeline stops and reports the pass
/// and first problem; \p M is then in an unspecified state and must be
/// discarded.
PipelineResult runPipeline(ir::Module &M, const ProfileView &View,
                           const std::vector<PassKind> &Passes,
                           const PassOptions &Opts);

} // namespace opt
} // namespace pp

#endif // PP_OPT_PASS_H
