//===- tests/WireTest.cpp - framed wire protocol ---------------------------------===//
//
// The wire codec's contract: every frame type's byte layout is pinned
// golden (a layout change must break a test, not a fleet); the
// incremental decoder yields byte-identical results whether bytes arrive
// one at a time, in arbitrary chunks, or coalesced many-frames-per-read;
// every malformed input — bit flips, truncations, lying length fields,
// stomped CRCs, giant-length DoS frames — terminates in a typed
// WireStatus without crashing, over-reading, or ballooning memory.
//
//===----------------------------------------------------------------------===//

#include "collectd/Wire.h"

#include "support/Checksum.h"

#include "gtest/gtest.h"

#include <cstring>
#include <string>
#include <vector>

using namespace pp;
using namespace pp::collectd;

namespace {

std::vector<uint8_t> bytesOf(const char *Data, size_t Size) {
  return std::vector<uint8_t>(Data, Data + Size);
}

/// The five reference frames whose encodings are pinned below. Field
/// values are arbitrary but fixed; the layouts are the contract.
Frame helloFrame() {
  Frame F;
  F.Type = FrameType::Hello;
  F.Protocol = 1;
  F.Tenant = "acme";
  F.Acquisition = "exact";
  return F;
}

Frame uploadFrame() {
  Frame F;
  F.Type = FrameType::Upload;
  F.Serial = 7;
  F.Window = 3;
  F.Artifact = {0xde, 0xad, 0xbe, 0xef};
  return F;
}

Frame ackFrame() {
  Frame F;
  F.Type = FrameType::Ack;
  F.Serial = 7;
  F.Text = "ok";
  return F;
}

Frame rejectFrame() {
  Frame F;
  F.Type = FrameType::Reject;
  F.Serial = 9;
  F.Reason = RejectReason::Corrupt;
  F.Decode = profdb::DecodeStatus::BadChecksum;
  F.Wire = WireStatus::Ok;
  F.Message = "bad";
  return F;
}

Frame queryFrame() {
  Frame F;
  F.Type = FrameType::Query;
  F.Serial = 11;
  F.Kind = QueryKind::TopProcs;
  F.Window = 3;
  F.Limit = 5;
  return F;
}

/// Feeds \p Stream to a fresh decoder in \p ChunkSize-byte slices and
/// returns the decoded frames re-encoded — the canonical form the
/// torture tests compare across delivery patterns.
std::vector<std::vector<uint8_t>> decodeChunked(
    const std::vector<uint8_t> &Stream, size_t ChunkSize) {
  FrameDecoder Decoder;
  std::vector<std::vector<uint8_t>> Out;
  size_t Pos = 0;
  while (Pos != Stream.size()) {
    size_t Take = std::min(ChunkSize, Stream.size() - Pos);
    Decoder.feed(Stream.data() + Pos, Take);
    Pos += Take;
    Frame F;
    WireStatus Status;
    while ((Status = Decoder.next(F)) == WireStatus::Ok)
      Out.push_back(encodeFrame(F));
    EXPECT_EQ(Status, WireStatus::NeedMore);
  }
  return Out;
}

/// xorshift64* — the repo's seeded-determinism idiom: the fuzz sweep is
/// a fixed corpus, not a flaky one.
struct Rng {
  uint64_t State;
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 1) {}
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1DULL;
  }
  size_t below(size_t N) { return N ? next() % N : 0; }
};

// ---- golden byte layouts -----------------------------------------------

TEST(WireLayoutTest, HelloBytesArePinned) {
  static const char Pinned[] =
      "\x50\x50\x57\x46\x01\x01\x21\x00\x00\x00\x01\x00\x00\x00\x00\x00"
      "\x00\x00\x04\x00\x00\x00\x00\x00\x00\x00\x61\x63\x6d\x65\x05\x00"
      "\x00\x00\x00\x00\x00\x00\x65\x78\x61\x63\x74\x83\xa4\xa6\x4d";
  EXPECT_EQ(encodeFrame(helloFrame()), bytesOf(Pinned, sizeof(Pinned) - 1));
}

TEST(WireLayoutTest, UploadBytesArePinned) {
  static const char Pinned[] =
      "\x50\x50\x57\x46\x01\x02\x1c\x00\x00\x00\x07\x00\x00\x00\x00\x00"
      "\x00\x00\x03\x00\x00\x00\x00\x00\x00\x00\x04\x00\x00\x00\x00\x00"
      "\x00\x00\xde\xad\xbe\xef\x9f\xe7\x28\x32";
  EXPECT_EQ(encodeFrame(uploadFrame()), bytesOf(Pinned, sizeof(Pinned) - 1));
}

TEST(WireLayoutTest, AckBytesArePinned) {
  static const char Pinned[] =
      "\x50\x50\x57\x46\x01\x03\x12\x00\x00\x00\x07\x00\x00\x00\x00\x00"
      "\x00\x00\x02\x00\x00\x00\x00\x00\x00\x00\x6f\x6b\x21\x9b\x83\xc1";
  EXPECT_EQ(encodeFrame(ackFrame()), bytesOf(Pinned, sizeof(Pinned) - 1));
}

TEST(WireLayoutTest, RejectBytesArePinned) {
  static const char Pinned[] =
      "\x50\x50\x57\x46\x01\x04\x16\x00\x00\x00\x09\x00\x00\x00\x00\x00"
      "\x00\x00\x01\x05\x00\x03\x00\x00\x00\x00\x00\x00\x00\x62\x61\x64"
      "\xd3\x3e\x34\x95";
  EXPECT_EQ(encodeFrame(rejectFrame()), bytesOf(Pinned, sizeof(Pinned) - 1));
}

TEST(WireLayoutTest, QueryBytesArePinned) {
  static const char Pinned[] =
      "\x50\x50\x57\x46\x01\x05\x19\x00\x00\x00\x0b\x00\x00\x00\x00\x00"
      "\x00\x00\x02\x03\x00\x00\x00\x00\x00\x00\x00\x05\x00\x00\x00\x00"
      "\x00\x00\x00\x4b\x3d\xe3\x81";
  EXPECT_EQ(encodeFrame(queryFrame()), bytesOf(Pinned, sizeof(Pinned) - 1));
}

TEST(WireLayoutTest, EveryTypeRoundTrips) {
  for (const Frame &F : {helloFrame(), uploadFrame(), ackFrame(),
                         rejectFrame(), queryFrame()}) {
    FrameDecoder Decoder;
    Decoder.feed(encodeFrame(F));
    Frame Out;
    ASSERT_EQ(Decoder.next(Out), WireStatus::Ok);
    EXPECT_EQ(static_cast<int>(Out.Type), static_cast<int>(F.Type));
    EXPECT_EQ(Out.Serial, F.Serial);
    EXPECT_EQ(Out.Tenant, F.Tenant);
    EXPECT_EQ(Out.Acquisition, F.Acquisition);
    EXPECT_EQ(Out.Window, F.Window);
    EXPECT_EQ(Out.Artifact, F.Artifact);
    EXPECT_EQ(Out.Text, F.Text);
    EXPECT_EQ(static_cast<int>(Out.Reason), static_cast<int>(F.Reason));
    EXPECT_EQ(static_cast<int>(Out.Decode), static_cast<int>(F.Decode));
    EXPECT_EQ(static_cast<int>(Out.Wire), static_cast<int>(F.Wire));
    EXPECT_EQ(Out.Message, F.Message);
    EXPECT_EQ(static_cast<int>(Out.Kind), static_cast<int>(F.Kind));
    EXPECT_EQ(Out.Limit, F.Limit);
    // Canonical: re-encoding the decode reproduces the input bytes.
    EXPECT_EQ(encodeFrame(Out), encodeFrame(F));
    EXPECT_EQ(Decoder.buffered(), 0u);
  }
}

// ---- typed decoder verdicts --------------------------------------------

TEST(WireDecoderTest, EmptyAndPartialHeaderNeedMore) {
  FrameDecoder Decoder;
  Frame Out;
  EXPECT_EQ(Decoder.next(Out), WireStatus::NeedMore);
  std::vector<uint8_t> Bytes = encodeFrame(ackFrame());
  Decoder.feed(Bytes.data(), WireHeaderBytes - 1);
  EXPECT_EQ(Decoder.next(Out), WireStatus::NeedMore);
}

TEST(WireDecoderTest, BadMagicDetectedFromTheFirstByte) {
  // One wrong byte is enough: the decoder must not wait for a full
  // header to call a non-protocol stream what it is.
  FrameDecoder Decoder;
  uint8_t Junk = 'X';
  Decoder.feed(&Junk, 1);
  Frame Out;
  EXPECT_EQ(Decoder.next(Out), WireStatus::BadMagic);
}

TEST(WireDecoderTest, BadVersionIsTyped) {
  std::vector<uint8_t> Bytes = encodeFrame(ackFrame());
  Bytes[4] = WireVersion + 1;
  FrameDecoder Decoder;
  Decoder.feed(Bytes);
  Frame Out;
  EXPECT_EQ(Decoder.next(Out), WireStatus::BadVersion);
}

TEST(WireDecoderTest, BadTypeIsTyped) {
  std::vector<uint8_t> Bytes = encodeFrame(ackFrame());
  Bytes[5] = 0x7f;
  FrameDecoder Decoder;
  Decoder.feed(Bytes);
  Frame Out;
  EXPECT_EQ(Decoder.next(Out), WireStatus::BadType);
}

TEST(WireDecoderTest, GiantLengthRefusedFromHeaderAlone) {
  // A liar's 4 GiB length field must cost ten buffered bytes, not an
  // allocation: FrameTooLarge fires before the payload is awaited.
  std::vector<uint8_t> Header(WireHeaderBytes);
  std::memcpy(Header.data(), WireMagic, 4);
  Header[4] = WireVersion;
  Header[5] = static_cast<uint8_t>(FrameType::Upload);
  Header[6] = 0xff;
  Header[7] = 0xff;
  Header[8] = 0xff;
  Header[9] = 0xff;
  FrameDecoder Decoder;
  Decoder.feed(Header);
  Frame Out;
  EXPECT_EQ(Decoder.next(Out), WireStatus::FrameTooLarge);
  EXPECT_EQ(Decoder.buffered(), WireHeaderBytes);
}

TEST(WireDecoderTest, PayloadCeilingIsConfigurable) {
  Frame Big = uploadFrame();
  Big.Artifact.assign(1024, 0xab);
  std::vector<uint8_t> Bytes = encodeFrame(Big);
  FrameDecoder Tight(/*MaxPayloadBytes=*/64);
  Tight.feed(Bytes);
  Frame Out;
  EXPECT_EQ(Tight.next(Out), WireStatus::FrameTooLarge);
  FrameDecoder Roomy(/*MaxPayloadBytes=*/4096);
  Roomy.feed(Bytes);
  EXPECT_EQ(Roomy.next(Out), WireStatus::Ok);
}

TEST(WireDecoderTest, FlippedPayloadByteIsBadChecksum) {
  std::vector<uint8_t> Bytes = encodeFrame(uploadFrame());
  Bytes[WireHeaderBytes + 2] ^= 0x01;
  FrameDecoder Decoder;
  Decoder.feed(Bytes);
  Frame Out;
  EXPECT_EQ(Decoder.next(Out), WireStatus::BadChecksum);
}

TEST(WireDecoderTest, StompedTrailerIsBadChecksum) {
  std::vector<uint8_t> Bytes = encodeFrame(queryFrame());
  Bytes[Bytes.size() - 1] ^= 0xff;
  FrameDecoder Decoder;
  Decoder.feed(Bytes);
  Frame Out;
  EXPECT_EQ(Decoder.next(Out), WireStatus::BadChecksum);
}

/// Rebuilds \p Payload into a whole frame of \p Type with a correct
/// length field and CRC — the shape of an attacker who can compute
/// checksums, which is what forces payload-structure validation to be
/// its own layer.
std::vector<uint8_t> frameRaw(FrameType Type,
                              const std::vector<uint8_t> &Payload) {
  Frame Probe;
  Probe.Type = FrameType::Ack;
  Probe.Serial = 0;
  std::vector<uint8_t> Out = encodeFrame(Probe);
  Out.resize(WireHeaderBytes);
  Out[5] = static_cast<uint8_t>(Type);
  Out[6] = static_cast<uint8_t>(Payload.size());
  Out[7] = static_cast<uint8_t>(Payload.size() >> 8);
  Out[8] = static_cast<uint8_t>(Payload.size() >> 16);
  Out[9] = static_cast<uint8_t>(Payload.size() >> 24);
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  // Recompute the CRC the way encodeFrame does, via a round trip: encode
  // an Ack whose payload we then splice. Simpler: borrow encodeFrame's
  // trailer by re-deriving it from a decoder probe is impossible, so the
  // test links the same crc32 the codec uses.
  uint32_t Crc = pp::crc32(Out.data(), Out.size());
  for (unsigned Index = 0; Index != 4; ++Index)
    Out.push_back(static_cast<uint8_t>(Crc >> (8 * Index)));
  return Out;
}

TEST(WireDecoderTest, TruncatedPayloadStructureIsMalformed) {
  // A checksummed Hello whose tenant string promises more bytes than the
  // payload holds: CRC passes, structure does not.
  std::vector<uint8_t> Payload(16, 0);
  Payload[8] = 0x40; // tenant length 64, but nothing follows
  FrameDecoder Decoder;
  Decoder.feed(frameRaw(FrameType::Hello, Payload));
  Frame Out;
  EXPECT_EQ(Decoder.next(Out), WireStatus::Malformed);
}

TEST(WireDecoderTest, OutOfRangeEnumBytesAreMalformed) {
  // A Reject whose reason byte names no RejectReason.
  std::vector<uint8_t> Payload = {0, 0, 0, 0, 0, 0, 0, 0, // serial
                                  0xee, 0, 0};            // reason, dec, wire
  Payload.insert(Payload.end(), 8, 0); // empty message
  FrameDecoder Decoder;
  Decoder.feed(frameRaw(FrameType::Reject, Payload));
  Frame Out;
  EXPECT_EQ(Decoder.next(Out), WireStatus::Malformed);
}

TEST(WireDecoderTest, UnexplainedPayloadSuffixIsTrailingBytes) {
  std::vector<uint8_t> Bytes = encodeFrame(ackFrame());
  std::vector<uint8_t> Payload(Bytes.begin() + WireHeaderBytes,
                               Bytes.end() - WireTrailerBytes);
  Payload.push_back(0x00);
  FrameDecoder Decoder;
  Decoder.feed(frameRaw(FrameType::Ack, Payload));
  Frame Out;
  EXPECT_EQ(Decoder.next(Out), WireStatus::TrailingBytes);
}

// ---- partial-I/O torture -----------------------------------------------

TEST(WireTortureTest, ByteAtATimeMatchesWholeStream) {
  std::vector<uint8_t> Stream;
  for (const Frame &F : {helloFrame(), uploadFrame(), queryFrame(),
                         ackFrame(), rejectFrame()}) {
    std::vector<uint8_t> Bytes = encodeFrame(F);
    Stream.insert(Stream.end(), Bytes.begin(), Bytes.end());
  }
  std::vector<std::vector<uint8_t>> Whole =
      decodeChunked(Stream, Stream.size());
  ASSERT_EQ(Whole.size(), 5u);
  // 1 byte at a time, then every chunk size that straddles frame
  // boundaries differently: identical decoded frames, byte for byte.
  for (size_t Chunk : {size_t(1), size_t(2), size_t(3), size_t(7),
                       size_t(13), size_t(41), size_t(64)})
    EXPECT_EQ(decodeChunked(Stream, Chunk), Whole) << "chunk " << Chunk;
}

TEST(WireTortureTest, CoalescedFramesDrainInOneFeed) {
  // Many frames in a single feed must all come out before NeedMore — the
  // server relies on this to serve pipelined uploads from one read.
  std::vector<uint8_t> Stream;
  const unsigned Count = 64;
  for (unsigned Index = 0; Index != Count; ++Index) {
    Frame F = uploadFrame();
    F.Serial = Index;
    std::vector<uint8_t> Bytes = encodeFrame(F);
    Stream.insert(Stream.end(), Bytes.begin(), Bytes.end());
  }
  FrameDecoder Decoder;
  Decoder.feed(Stream);
  Frame Out;
  for (unsigned Index = 0; Index != Count; ++Index) {
    ASSERT_EQ(Decoder.next(Out), WireStatus::Ok);
    EXPECT_EQ(Out.Serial, Index);
  }
  EXPECT_EQ(Decoder.next(Out), WireStatus::NeedMore);
  EXPECT_EQ(Decoder.buffered(), 0u);
}

TEST(WireTortureTest, BufferIsCompactedNotAccumulated) {
  // The decoder's buffer must track live bytes, not stream history: after
  // ten thousand decoded frames the buffered residue is still zero.
  std::vector<uint8_t> One = encodeFrame(ackFrame());
  FrameDecoder Decoder;
  Frame Out;
  for (unsigned Index = 0; Index != 10000; ++Index) {
    Decoder.feed(One);
    ASSERT_EQ(Decoder.next(Out), WireStatus::Ok);
    ASSERT_EQ(Decoder.buffered(), 0u);
  }
}

// ---- seeded mutation fuzz sweep ----------------------------------------

/// Drives \p Stream through a decoder in random chunks, asserting only
/// the protocol's safety property: decoding terminates, every verdict is
/// a defined WireStatus, and after a fatal verdict the decoder stays
/// fatally poisoned rather than resynchronising on garbage.
void pumpMutated(const std::vector<uint8_t> &Stream, Rng &R) {
  FrameDecoder Decoder;
  size_t Pos = 0;
  bool Poisoned = false;
  WireStatus Fatal = WireStatus::Ok;
  while (Pos != Stream.size()) {
    size_t Take = std::min(1 + R.below(96), Stream.size() - Pos);
    Decoder.feed(Stream.data() + Pos, Take);
    Pos += Take;
    for (;;) {
      Frame Out;
      WireStatus Status = Decoder.next(Out);
      ASSERT_LE(static_cast<unsigned>(Status),
                static_cast<unsigned>(WireStatus::TrailingBytes));
      if (Status == WireStatus::Ok) {
        ASSERT_FALSE(Poisoned)
            << "decoder recovered after fatal " << wireStatusName(Fatal);
        continue;
      }
      if (Status != WireStatus::NeedMore && !Poisoned) {
        Poisoned = true;
        Fatal = Status;
      }
      if (Status != WireStatus::Ok) {
        // A fatal status must be stable: asking again yields the same
        // verdict, not an advance past the poison.
        if (Status != WireStatus::NeedMore)
          EXPECT_EQ(Decoder.next(Out), Status);
        break;
      }
    }
    if (Poisoned)
      break;
  }
}

TEST(WireFuzzTest, SeededMutationSweepNeverCrashes) {
  // Base stream: a realistic session (hello, uploads of varying size,
  // query) whose every mutated variant must decode to typed verdicts.
  std::vector<uint8_t> Base;
  {
    std::vector<uint8_t> Bytes = encodeFrame(helloFrame());
    Base.insert(Base.end(), Bytes.begin(), Bytes.end());
    for (unsigned Index = 0; Index != 4; ++Index) {
      Frame F = uploadFrame();
      F.Serial = Index;
      F.Artifact.assign(17 * (Index + 1), static_cast<uint8_t>(Index));
      Bytes = encodeFrame(F);
      Base.insert(Base.end(), Bytes.begin(), Bytes.end());
    }
    Bytes = encodeFrame(queryFrame());
    Base.insert(Base.end(), Bytes.begin(), Bytes.end());
  }

  Rng R(0x77697265u); // "wire"
  const unsigned Mutations = 320;
  for (unsigned Round = 0; Round != Mutations; ++Round) {
    std::vector<uint8_t> Mutated = Base;
    switch (Round % 5) {
    case 0: // single bit flip anywhere
      Mutated[R.below(Mutated.size())] ^= uint8_t(1u << R.below(8));
      break;
    case 1: // truncation (possibly mid-header, mid-payload, mid-CRC)
      Mutated.resize(R.below(Mutated.size()));
      break;
    case 2: { // length-field lie in a random frame header
      size_t At = 6 + R.below(Mutated.size() - 10);
      uint32_t Lie = static_cast<uint32_t>(R.next());
      for (unsigned Byte = 0; Byte != 4; ++Byte)
        Mutated[At + Byte] = static_cast<uint8_t>(Lie >> (8 * Byte));
      break;
    }
    case 3: // CRC stomp: flip trailer bytes of the first frame
      Mutated[47 - 1 - R.below(4)] ^= 0xff;
      break;
    case 4: { // giant-length DoS header spliced onto the stream
      std::vector<uint8_t> Giant(WireHeaderBytes);
      std::memcpy(Giant.data(), WireMagic, 4);
      Giant[4] = WireVersion;
      Giant[5] = static_cast<uint8_t>(FrameType::Upload);
      Giant[6] = Giant[7] = Giant[8] = Giant[9] = 0xff;
      Mutated.insert(Mutated.begin() + static_cast<ptrdiff_t>(
                         47 * R.below(3)), // frame boundary 0, 1, or 2
                     Giant.begin(), Giant.end());
      break;
    }
    }
    pumpMutated(Mutated, R);
    if (HasFatalFailure())
      FAIL() << "mutation round " << Round;
  }
}

} // namespace
