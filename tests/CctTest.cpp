//===- tests/CctTest.cpp - calling context tree unit tests --------------------===//

#include "cct/CallingContextTree.h"
#include "cct/DynamicCallTree.h"
#include "cct/Export.h"

#include <gtest/gtest.h>

using namespace pp;
using namespace pp::cct;

namespace {

/// Procedures for the Figure 4 world: M(0) calls A(1) and D(4); A calls
/// B(2); B calls C(3); D calls C.
std::vector<ProcDesc> fig4Procs() {
  std::vector<ProcDesc> Procs(5);
  Procs[0] = {"M", 2, {0, 0}, 0}; // M has two call sites
  Procs[1] = {"A", 1, {0}, 0};
  Procs[2] = {"B", 1, {0}, 0};
  Procs[3] = {"C", 0, {}, 0};
  Procs[4] = {"D", 1, {0}, 0};
  return Procs;
}

} // namespace

TEST(Cct, Fig4ContextsStayDistinct) {
  CallingContextTree Tree(fig4Procs(), 1);
  CallRecord *M = Tree.enter(Tree.root(), 0, 0);
  CallRecord *A = Tree.enter(M, 0, 1);
  CallRecord *B = Tree.enter(A, 0, 2);
  CallRecord *C1 = Tree.enter(B, 0, 3);
  CallRecord *D = Tree.enter(M, 1, 4);
  CallRecord *C2 = Tree.enter(D, 0, 3);

  // The paper's point: C under M-A-B and C under M-D are distinct vertices.
  EXPECT_NE(C1, C2);
  EXPECT_EQ(C1->parent(), B);
  EXPECT_EQ(C2->parent(), D);
  EXPECT_EQ(Tree.numRecords(), 7u); // root + M A B C D C'

  // Re-entering through resolved slots returns the same records.
  EXPECT_EQ(Tree.enter(M, 0, 1), A);
  EXPECT_EQ(Tree.enter(B, 0, 3), C1);
  EXPECT_EQ(Tree.enter(D, 0, 3), C2);
  EXPECT_EQ(Tree.numRecords(), 7u);
}

TEST(Cct, DepthsAndAddressesAreAssigned) {
  CallingContextTree Tree(fig4Procs(), 1);
  CallRecord *M = Tree.enter(Tree.root(), 0, 0);
  CallRecord *A = Tree.enter(M, 0, 1);
  EXPECT_EQ(Tree.root()->depth(), 0u);
  EXPECT_EQ(M->depth(), 1u);
  EXPECT_EQ(A->depth(), 2u);
  EXPECT_GE(M->addr(), layout::CctHeapBase);
  EXPECT_NE(M->addr(), A->addr());
  EXPECT_GT(Tree.heapBytes(), 0u);
}

TEST(Cct, RecursionCollapsesOntoAncestor) {
  // A(0) calls B(1); B calls A. Entering A below B must find the ancestor
  // A record, forming a backedge and bounding the depth.
  std::vector<ProcDesc> Procs(2);
  Procs[0] = {"A", 1, {0}, 0};
  Procs[1] = {"B", 1, {0}, 0};
  // Root slot 0 -> A.
  CallingContextTree Tree(Procs, 1);
  CallRecord *A = Tree.enter(Tree.root(), 0, 0);
  CallRecord *B = Tree.enter(A, 0, 1);
  CallRecord *A2 = Tree.enter(B, 0, 0);
  EXPECT_EQ(A2, A) << "recursive call must reuse the ancestor record";
  // Going around the cycle again only revisits existing records.
  CallRecord *B2 = Tree.enter(A2, 0, 1);
  EXPECT_EQ(B2, B);
  EXPECT_EQ(Tree.numRecords(), 3u); // root, A, B

  CctStats Stats = Tree.computeStats();
  EXPECT_EQ(Stats.BackedgeSlots, 1u);
  EXPECT_EQ(Stats.MaxDepth, 2u);
}

TEST(Cct, SelfRecursionIsABackedgeToo) {
  std::vector<ProcDesc> Procs(1);
  Procs[0] = {"A", 1, {0}, 0};
  CallingContextTree Tree(Procs, 1);
  CallRecord *A = Tree.enter(Tree.root(), 0, 0);
  CallRecord *A2 = Tree.enter(A, 0, 0);
  EXPECT_EQ(A2, A);
  EXPECT_EQ(Tree.numRecords(), 2u);
}

TEST(Cct, IndirectSitesKeepListsWithMoveToFront) {
  // P(0) has one indirect site that dynamically calls X(1), Y(2), X...
  std::vector<ProcDesc> Procs(3);
  Procs[0] = {"P", 1, {1}, 0}; // indirect
  Procs[1] = {"X", 0, {}, 0};
  Procs[2] = {"Y", 0, {}, 0};
  CallingContextTree Tree(Procs, 1);
  CallRecord *P = Tree.enter(Tree.root(), 0, 0);
  CallRecord *X = Tree.enter(P, 0, 1);
  CallRecord *Y = Tree.enter(P, 0, 2);
  EXPECT_NE(X, Y);
  // The list now fronts Y; finding X again moves it back to the front.
  const CallRecord::Slot &S = P->slot(0);
  ASSERT_EQ(S.K, CallRecord::Slot::Kind::List);
  ASSERT_EQ(S.List.size(), 2u);
  EXPECT_EQ(S.List.front().first, Y);
  CallRecord *XAgain = Tree.enter(P, 0, 1);
  EXPECT_EQ(XAgain, X);
  EXPECT_EQ(P->slot(0).List.front().first, X);
  EXPECT_EQ(Tree.numRecords(), 4u);
}

TEST(Cct, MetricsAccumulatePerRecord) {
  CallingContextTree Tree(fig4Procs(), 3);
  CallRecord *M = Tree.enter(Tree.root(), 0, 0);
  CallingContextTree::bumpMetric(M, 0, 1);
  CallingContextTree::bumpMetric(M, 1, 250);
  CallingContextTree::bumpMetric(M, 0, 1);
  EXPECT_EQ(M->Metrics[0], 2u);
  EXPECT_EQ(M->Metrics[1], 250u);
  EXPECT_EQ(M->Metrics[2], 0u);
}

TEST(Cct, PathCommitsLandInRecordTables) {
  std::vector<ProcDesc> Procs(1);
  Procs[0] = {"A", 0, {}, 6}; // 6 potential paths
  CallingContextTree Tree(Procs, 1);
  CallRecord *A = Tree.enter(Tree.root(), 0, 0);
  Tree.commitPath(A, 2, false, 0, 0);
  Tree.commitPath(A, 2, false, 0, 0);
  Tree.commitPath(A, 5, true, 10, 3);
  EXPECT_EQ(A->PathTable.size(), 2u);
  EXPECT_EQ(A->PathTable.at(2).Freq, 2u);
  EXPECT_EQ(A->PathTable.at(5).Metric0, 10u);
  EXPECT_EQ(A->PathTable.at(5).Metric1, 3u);
}

TEST(Cct, StatsDescribeShape) {
  CallingContextTree Tree(fig4Procs(), 1);
  CallRecord *M = Tree.enter(Tree.root(), 0, 0);
  CallRecord *A = Tree.enter(M, 0, 1);
  CallRecord *B = Tree.enter(A, 0, 2);
  Tree.enter(B, 0, 3);
  CallRecord *D = Tree.enter(M, 1, 4);
  Tree.enter(D, 0, 3);

  CctStats Stats = Tree.computeStats();
  EXPECT_EQ(Stats.NumRecords, 7u);
  EXPECT_EQ(Stats.MaxDepth, 4u); // root M A B C
  EXPECT_EQ(Stats.MaxReplication, 2u); // C twice
  EXPECT_EQ(Stats.MaxReplicationProc, 3u);
  EXPECT_EQ(Stats.BackedgeSlots, 0u);
  // Slots: root 2 (entry + signal) + M 2 + A 1 + B 1 + C 0 + D 1 + C' 0.
  EXPECT_EQ(Stats.TotalSlots, 7u);
  EXPECT_EQ(Stats.UsedSlots, 6u);
  EXPECT_GT(Stats.AvgNodeBytes, 0.0);
}

TEST(Cct, ChargerSeesTraffic) {
  struct CountingCharger : MemCharger {
    uint64_t Touches = 0, Insts = 0;
    void touchMemory(uint64_t, unsigned, bool) override { ++Touches; }
    void chargeInsts(unsigned N) override { Insts += N; }
  };
  CountingCharger Charger;
  CallingContextTree Tree(fig4Procs(), 1, &Charger);
  uint64_t AfterRoot = Charger.Touches;
  CallRecord *M = Tree.enter(Tree.root(), 0, 0);
  EXPECT_GT(Charger.Touches, AfterRoot) << "enter must charge memory";
  uint64_t AfterFirst = Charger.Touches;
  Tree.enter(Tree.root(), 0, 0); // resolved slot: cheap but not free
  EXPECT_GT(Charger.Touches, AfterFirst);
  EXPECT_LT(Charger.Touches - AfterFirst, AfterFirst - AfterRoot);
  EXPECT_GT(Charger.Insts, 0u);
  (void)M;
}

TEST(Dct, TracksActivationsAndContexts) {
  DynamicCallTree Dct;
  // M; M->A; A->B; B->C; ret ret ret; M->D; D->C.
  Dct.enter(0);
  Dct.enter(1);
  Dct.enter(2);
  Dct.enter(3);
  Dct.exit();
  Dct.exit();
  Dct.exit();
  Dct.enter(4);
  Dct.enter(3);
  Dct.exit();
  Dct.exit();
  Dct.exit();
  EXPECT_EQ(Dct.numActivations(), 6u);
  // Distinct contexts = CCT size without recursion: M, MA, MAB, MABC, MD,
  // MDC = 6.
  EXPECT_EQ(Dct.numDistinctContexts(), 6u);
}

TEST(Dct, RepeatedCallsShareContexts) {
  DynamicCallTree Dct;
  Dct.enter(0);
  for (int Round = 0; Round != 5; ++Round) {
    Dct.enter(1);
    Dct.exit();
  }
  Dct.exit();
  EXPECT_EQ(Dct.numActivations(), 6u);
  EXPECT_EQ(Dct.numDistinctContexts(), 2u);
}

TEST(Dcg, EdgesAreDeduplicated) {
  DynamicCallGraph Dcg;
  Dcg.addCall(0, 1);
  Dcg.addCall(0, 1);
  Dcg.addCall(1, 2);
  EXPECT_EQ(Dcg.numEdges(), 2u);
  EXPECT_TRUE(Dcg.hasEdge(0, 1));
  EXPECT_FALSE(Dcg.hasEdge(2, 1));
}

TEST(CctExport, SerializeRoundTrips) {
  CallingContextTree Tree(fig4Procs(), 2);
  CallRecord *M = Tree.enter(Tree.root(), 0, 0);
  CallingContextTree::bumpMetric(M, 0, 3);
  CallRecord *A = Tree.enter(M, 0, 1);
  CallingContextTree::bumpMetric(A, 1, 77);

  std::vector<uint8_t> Bytes = serialize(Tree);
  std::vector<LoadedRecord> Loaded;
  ASSERT_TRUE(deserialize(Bytes, Loaded));
  ASSERT_EQ(Loaded.size(), 3u);
  EXPECT_EQ(Loaded[0].Proc, RootProcId);
  EXPECT_EQ(Loaded[0].Parent, -1);
  EXPECT_EQ(Loaded[1].Proc, 0u);
  EXPECT_EQ(Loaded[1].Parent, 0);
  EXPECT_EQ(Loaded[1].Metrics[0], 3u);
  EXPECT_EQ(Loaded[2].Parent, 1);
  EXPECT_EQ(Loaded[2].Metrics[1], 77u);
}

TEST(CctExport, DeserializeRejectsGarbage) {
  std::vector<uint8_t> Garbage(64, 0xab);
  std::vector<LoadedRecord> Loaded;
  EXPECT_FALSE(deserialize(Garbage, Loaded));
  std::vector<uint8_t> Truncated = {1, 2, 3};
  EXPECT_FALSE(deserialize(Truncated, Loaded));
}

TEST(CctExport, DotMarksBackedgesDashed) {
  std::vector<ProcDesc> Procs(2);
  Procs[0] = {"A", 1, {0}, 0};
  Procs[1] = {"B", 1, {0}, 0};
  CallingContextTree Tree(Procs, 1);
  CallRecord *A = Tree.enter(Tree.root(), 0, 0);
  CallRecord *B = Tree.enter(A, 0, 1);
  Tree.enter(B, 0, 0); // recursion: backedge B -> A
  std::string Dot = exportDot(Tree);
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(Dot.find("label=\"A\""), std::string::npos);
  EXPECT_NE(Dot.find("label=\"T\""), std::string::npos);
}
