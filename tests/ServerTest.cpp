//===- tests/ServerTest.cpp - epoll socket front end -----------------------------===//
//
// The socket front end's contract: artifacts uploaded by real client
// *processes* over loopback TCP land byte-identical to the same uploads
// fed straight into an IngestService — including when the FaultInjector
// read seam corrupts some in flight; every protocol violation (no hello,
// bad magic, wrong version, giant frames) is a typed REJECT then a
// close; per-request failures (corrupt artifact, absent window) reject
// typed and leave the connection usable; idle connections are closed;
// write backpressure pauses reading instead of buffering without bound;
// the per-tenant token bucket refuses over the wire exactly as it does
// in process.
//
//===----------------------------------------------------------------------===//

#include "cct/CallingContextTree.h"
#include "collectd/Ingest.h"
#include "collectd/Server.h"
#include "collectd/Wire.h"
#include "driver/Driver.h"
#include "driver/FaultInjector.h"
#include "profdb/Store.h"
#include "workloads/Spec.h"

#include "gtest/gtest.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace pp;
using namespace pp::collectd;

namespace {

std::string makeTempDir() {
  char Template[] = "/tmp/pp-server-test-XXXXXX";
  const char *Dir = mkdtemp(Template);
  EXPECT_NE(Dir, nullptr);
  return Dir ? Dir : "";
}

void removeDir(const std::string &Dir) {
  std::string Cmd = "rm -rf " + Dir;
  (void)std::system(Cmd.c_str());
}

struct InjectorGuard {
  ~InjectorGuard() { driver::FaultInjector::instance().configure({}); }
};

/// One encoded 130.li artifact per fingerprint (run executed once,
/// re-stamped per upload) — the same corpus CollectdTest uses.
std::vector<uint8_t> encodedArtifact(const std::string &Fingerprint) {
  static driver::OutcomePtr Run;
  static std::unique_ptr<ir::Module> Module;
  static prof::ProfileConfig Config;
  if (!Run) {
    driver::Driver D(/*DiskDir=*/"", /*Threads=*/0);
    driver::RunPlan Plan;
    Plan.Workload = "130.li";
    Plan.Options.Config.M = prof::Mode::ContextFlowHw;
    Run = D.run(Plan);
    EXPECT_TRUE(Run && Run->Result.Ok);
    Module = workloads::buildWorkload("130.li", 1);
    Config = Plan.Options.Config;
  }
  profdb::Artifact A = profdb::artifactFromOutcome(*Run, *Module, Fingerprint,
                                                   "130.li", 1, Config);
  return profdb::encodeArtifact(A);
}

/// A blocking loopback client for the framed protocol, with a receive
/// timeout so a server bug fails the test instead of hanging it.
class TestClient {
public:
  ~TestClient() { disconnect(); }

  bool connectTo(uint16_t Port, int RcvBufBytes = 0) {
    Fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (Fd < 0)
      return false;
    if (RcvBufBytes)
      setsockopt(Fd, SOL_SOCKET, SO_RCVBUF, &RcvBufBytes,
                 sizeof(RcvBufBytes));
    timeval Timeout{30, 0};
    setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Timeout, sizeof(Timeout));
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(Port);
    inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
    return connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                   sizeof(Addr)) == 0;
  }

  bool sendBytes(const std::vector<uint8_t> &Bytes) {
    size_t Sent = 0;
    while (Sent != Bytes.size()) {
      ssize_t Got = send(Fd, Bytes.data() + Sent, Bytes.size() - Sent,
                         MSG_NOSIGNAL);
      if (Got < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      Sent += static_cast<size_t>(Got);
    }
    return true;
  }

  bool sendFrame(const Frame &F) { return sendBytes(encodeFrame(F)); }

  /// Ok = frame read; NeedMore here means the peer closed (EOF).
  WireStatus readFrame(Frame &Out) {
    for (;;) {
      WireStatus Status = Decoder.next(Out);
      if (Status != WireStatus::NeedMore)
        return Status;
      uint8_t Chunk[64 * 1024];
      ssize_t Got = recv(Fd, Chunk, sizeof(Chunk), 0);
      if (Got < 0 && errno == EINTR)
        continue;
      if (Got <= 0)
        return WireStatus::NeedMore; // EOF or timeout
      Decoder.feed(Chunk, static_cast<size_t>(Got));
    }
  }

  /// True when the peer has closed: the next read yields EOF.
  bool readEof() {
    uint8_t Byte;
    for (;;) {
      ssize_t Got = recv(Fd, &Byte, 1, 0);
      if (Got < 0 && errno == EINTR)
        continue;
      return Got == 0;
    }
  }

  bool hello(const std::string &Tenant) {
    Frame F;
    F.Type = FrameType::Hello;
    F.Tenant = Tenant;
    F.Acquisition = "exact";
    if (!sendFrame(F))
      return false;
    Frame Reply;
    return readFrame(Reply) == WireStatus::Ok &&
           Reply.Type == FrameType::Ack;
  }

  void disconnect() {
    if (Fd >= 0)
      close(Fd);
    Fd = -1;
  }

private:
  int Fd = -1;
  FrameDecoder Decoder;
};

/// Runs \p Stream against the server from a forked child process: the
/// child connects, writes the pre-serialised bytes, half-closes, drains
/// replies to EOF, and exits. Everything the child touches is allocated
/// before the fork — the parent is threaded, so the child must not
/// malloc.
pid_t spawnSender(uint16_t Port, const std::vector<uint8_t> &Stream) {
  pid_t Pid = fork();
  if (Pid != 0)
    return Pid;

  int Fd = socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    _exit(10);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
  if (connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    _exit(11);
  size_t Sent = 0;
  while (Sent != Stream.size()) {
    ssize_t Got =
        send(Fd, Stream.data() + Sent, Stream.size() - Sent, MSG_NOSIGNAL);
    if (Got < 0) {
      if (errno == EINTR)
        continue;
      _exit(12);
    }
    Sent += static_cast<size_t>(Got);
  }
  shutdown(Fd, SHUT_WR);
  uint8_t Sink[4096];
  for (;;) {
    ssize_t Got = recv(Fd, Sink, sizeof(Sink), 0);
    if (Got < 0 && errno == EINTR)
      continue;
    if (Got <= 0)
      break;
  }
  _exit(0);
}

int waitFor(pid_t Pid) {
  int Status = 0;
  while (waitpid(Pid, &Status, 0) < 0 && errno == EINTR)
    ;
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

/// A client session as bytes: hello + every upload, framed.
std::vector<uint8_t> sessionStream(const std::string &Tenant,
                                   const std::vector<Upload> &Uploads) {
  Frame Hello;
  Hello.Type = FrameType::Hello;
  Hello.Tenant = Tenant;
  Hello.Acquisition = "exact";
  std::vector<uint8_t> Stream = encodeFrame(Hello);
  uint64_t Serial = 0;
  for (const Upload &U : Uploads) {
    Frame Up;
    Up.Type = FrameType::Upload;
    Up.Serial = Serial++;
    Up.Window = U.Window;
    Up.Artifact = U.Bytes;
    std::vector<uint8_t> Bytes = encodeFrame(Up);
    Stream.insert(Stream.end(), Bytes.begin(), Bytes.end());
  }
  return Stream;
}

/// Every persisted artifact under \p StoreDir, keyed by
/// "w<window>/<file>" — the byte-identity view the loopback tests diff.
std::map<std::string, std::vector<uint8_t>>
persistedTree(const std::string &StoreDir,
              const std::vector<uint64_t> &WindowIds) {
  std::map<std::string, std::vector<uint8_t>> Tree;
  for (uint64_t Id : WindowIds) {
    std::string Dir = StoreDir + "/w" + std::to_string(Id);
    for (const std::string &Path : profdb::listArtifactFiles(Dir)) {
      std::ifstream In(Path, std::ios::binary);
      std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                                 std::istreambuf_iterator<char>());
      Tree["w" + std::to_string(Id) + Path.substr(Path.rfind('/'))] =
          std::move(Bytes);
    }
  }
  return Tree;
}

IngestConfig manualConfig() {
  IngestConfig C;
  C.Threads = 0;
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// Loopback multi-process byte identity — the acceptance criterion
//===----------------------------------------------------------------------===//

TEST(ServerLoopbackTest, ForkedClientsMatchInProcessIngestUnderFaults) {
  InjectorGuard Guard;
  std::string WireDir = makeTempDir();
  std::string RefDir = makeTempDir();

  // Fleet: 4 client processes, 3 uploads each, over 2 windows. Built
  // (and framed) before any fork or server start.
  const unsigned Clients = 4, PerClient = 3;
  std::vector<std::vector<Upload>> Fleet(Clients);
  std::vector<std::vector<uint8_t>> Streams(Clients);
  for (unsigned Client = 0; Client != Clients; ++Client) {
    for (unsigned U = 0; U != PerClient; ++U)
      Fleet[Client].push_back(
          Upload{"c" + std::to_string(Client), Client % 2,
                 encodedArtifact("fleet;c" + std::to_string(Client) + ";u" +
                                 std::to_string(U))});
    Streams[Client] =
        sessionStream("c" + std::to_string(Client), Fleet[Client]);
  }

  // The read seam corrupts every 5th ingest — server-side, after the
  // wire CRC has passed, standing in for corruption between the socket
  // and the store.
  driver::FaultInjector::Config Faults;
  Faults.Seed = 42;
  Faults.FlipEveryNthRead = 5;
  driver::FaultInjector::instance().configure(Faults);

  uint64_t WireRejected;
  {
    IngestConfig Config = manualConfig();
    Config.StoreDir = WireDir;
    IngestService Service(Config);
    Server Front({}, Service);
    std::string Error;
    ASSERT_TRUE(Front.start(Error)) << Error;

    // Sequential client processes: deterministic arrival order, so the
    // injector's every-Nth cadence hits the same uploads as the
    // reference ingest below.
    for (unsigned Client = 0; Client != Clients; ++Client)
      ASSERT_EQ(waitFor(spawnSender(Front.port(), Streams[Client])), 0)
          << "client " << Client;

    ServerStats Stats = Front.stats();
    EXPECT_EQ(Stats.ConnectionsAccepted, Clients);
    EXPECT_EQ(Stats.Uploads, uint64_t(Clients) * PerClient);
    EXPECT_EQ(Stats.ProtocolErrors, 0u);
    Front.stop();

    ASSERT_TRUE(Service.persist(Error)) << Error;
    WireRejected = Service.stats().Rejected;
  }

  // Reference: identical uploads, identical injector schedule, no wire.
  driver::FaultInjector::instance().configure(Faults);
  std::vector<uint64_t> WindowIds;
  {
    IngestConfig Config = manualConfig();
    Config.StoreDir = RefDir;
    IngestService Reference(Config);
    for (unsigned Client = 0; Client != Clients; ++Client)
      for (const Upload &U : Fleet[Client])
        Reference.ingestNow(U);
    std::string Error;
    ASSERT_TRUE(Reference.persist(Error)) << Error;
    EXPECT_EQ(Reference.stats().Rejected, WireRejected);
    EXPECT_GT(WireRejected, 0u); // the seam really fired
    WindowIds = Reference.windows();
  }

  auto WireTree = persistedTree(WireDir, WindowIds);
  auto RefTree = persistedTree(RefDir, WindowIds);
  EXPECT_FALSE(RefTree.empty());
  EXPECT_EQ(WireTree, RefTree);

  removeDir(WireDir);
  removeDir(RefDir);
}

TEST(ServerLoopbackTest, ConcurrentClientProcessesFoldIdentically) {
  // No injector here: with concurrent clients the arrival order is
  // nondeterministic, and the window fold must not care (the MergeTree
  // order-independence guarantee, now exercised through real sockets).
  const unsigned Clients = 6, PerClient = 2;
  std::vector<std::vector<Upload>> Fleet(Clients);
  std::vector<std::vector<uint8_t>> Streams(Clients);
  for (unsigned Client = 0; Client != Clients; ++Client) {
    for (unsigned U = 0; U != PerClient; ++U)
      Fleet[Client].push_back(
          Upload{"c" + std::to_string(Client), 0,
                 encodedArtifact("conc;c" + std::to_string(Client) + ";u" +
                                 std::to_string(U))});
    Streams[Client] =
        sessionStream("c" + std::to_string(Client), Fleet[Client]);
  }

  IngestService Service(manualConfig());
  Server Front({}, Service);
  std::string Error;
  ASSERT_TRUE(Front.start(Error)) << Error;

  std::vector<pid_t> Pids;
  for (unsigned Client = 0; Client != Clients; ++Client)
    Pids.push_back(spawnSender(Front.port(), Streams[Client]));
  for (unsigned Client = 0; Client != Clients; ++Client)
    EXPECT_EQ(waitFor(Pids[Client]), 0) << "client " << Client;
  Front.stop();

  IngestService Reference(manualConfig());
  for (unsigned Client = 0; Client != Clients; ++Client)
    for (const Upload &U : Fleet[Client])
      EXPECT_TRUE(Reference.ingestNow(U).Accepted);

  std::vector<std::vector<uint8_t>> WireBytes = Service.windowBytes(0, Error);
  ASSERT_TRUE(Error.empty()) << Error;
  std::vector<std::vector<uint8_t>> RefBytes =
      Reference.windowBytes(0, Error);
  ASSERT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(WireBytes, RefBytes);
  EXPECT_EQ(Service.stats().Accepted, uint64_t(Clients) * PerClient);
}

//===----------------------------------------------------------------------===//
// Typed protocol errors
//===----------------------------------------------------------------------===//

TEST(ServerProtocolTest, UploadBeforeHelloIsRefusedAndClosed) {
  IngestService Service(manualConfig());
  Server Front({}, Service);
  std::string Error;
  ASSERT_TRUE(Front.start(Error)) << Error;

  TestClient Client;
  ASSERT_TRUE(Client.connectTo(Front.port()));
  Frame Up;
  Up.Type = FrameType::Upload;
  Up.Serial = 3;
  Up.Window = 0;
  Up.Artifact = {1, 2, 3};
  ASSERT_TRUE(Client.sendFrame(Up));
  Frame Reply;
  ASSERT_EQ(Client.readFrame(Reply), WireStatus::Ok);
  EXPECT_EQ(Reply.Type, FrameType::Reject);
  EXPECT_EQ(Reply.Serial, 3u);
  EXPECT_NE(Reply.Message.find("hello"), std::string::npos);
  EXPECT_TRUE(Client.readEof());
  EXPECT_EQ(Service.stats().Submitted, 0u);
}

TEST(ServerProtocolTest, BadMagicIsTypedRejectThenClose) {
  IngestService Service(manualConfig());
  Server Front({}, Service);
  std::string Error;
  ASSERT_TRUE(Front.start(Error)) << Error;

  TestClient Client;
  ASSERT_TRUE(Client.connectTo(Front.port()));
  ASSERT_TRUE(Client.sendBytes({'G', 'E', 'T', ' ', '/', '\r', '\n'}));
  Frame Reply;
  ASSERT_EQ(Client.readFrame(Reply), WireStatus::Ok);
  EXPECT_EQ(Reply.Type, FrameType::Reject);
  EXPECT_EQ(Reply.Wire, WireStatus::BadMagic);
  EXPECT_TRUE(Client.readEof());
  EXPECT_GE(Front.stats().ProtocolErrors, 1u);
}

TEST(ServerProtocolTest, BadVersionIsTypedRejectThenClose) {
  IngestService Service(manualConfig());
  Server Front({}, Service);
  std::string Error;
  ASSERT_TRUE(Front.start(Error)) << Error;

  TestClient Client;
  ASSERT_TRUE(Client.connectTo(Front.port()));
  Frame Hello;
  Hello.Type = FrameType::Hello;
  Hello.Tenant = "t";
  Hello.Acquisition = "exact";
  std::vector<uint8_t> Bytes = encodeFrame(Hello);
  Bytes[4] = WireVersion + 9;
  ASSERT_TRUE(Client.sendBytes(Bytes));
  Frame Reply;
  ASSERT_EQ(Client.readFrame(Reply), WireStatus::Ok);
  EXPECT_EQ(Reply.Type, FrameType::Reject);
  EXPECT_EQ(Reply.Wire, WireStatus::BadVersion);
  EXPECT_TRUE(Client.readEof());
}

TEST(ServerProtocolTest, OversizedFrameIsTypedRejectThenClose) {
  IngestService Service(manualConfig());
  ServerConfig Cfg;
  Cfg.MaxPayloadBytes = 1024;
  Server Front(Cfg, Service);
  std::string Error;
  ASSERT_TRUE(Front.start(Error)) << Error;

  TestClient Client;
  ASSERT_TRUE(Client.connectTo(Front.port()));
  ASSERT_TRUE(Client.hello("t"));
  Frame Up;
  Up.Type = FrameType::Upload;
  Up.Artifact.assign(4096, 0xaa);
  ASSERT_TRUE(Client.sendFrame(Up));
  Frame Reply;
  ASSERT_EQ(Client.readFrame(Reply), WireStatus::Ok);
  EXPECT_EQ(Reply.Type, FrameType::Reject);
  EXPECT_EQ(Reply.Wire, WireStatus::FrameTooLarge);
  EXPECT_TRUE(Client.readEof());
  EXPECT_EQ(Service.stats().Submitted, 0u);
}

TEST(ServerProtocolTest, CorruptUploadRejectsTypedAndSessionSurvives) {
  IngestService Service(manualConfig());
  Server Front({}, Service);
  std::string Error;
  ASSERT_TRUE(Front.start(Error)) << Error;

  TestClient Client;
  ASSERT_TRUE(Client.connectTo(Front.port()));
  ASSERT_TRUE(Client.hello("t"));

  // Corrupt *artifact* inside a well-formed frame: the wire CRC passes,
  // the artifact decoder refuses, the session lives on.
  Frame Bad;
  Bad.Type = FrameType::Upload;
  Bad.Serial = 1;
  Bad.Window = 0;
  Bad.Artifact = encodedArtifact("wire;bad");
  Bad.Artifact[Bad.Artifact.size() / 2] ^= 0x10;
  ASSERT_TRUE(Client.sendFrame(Bad));
  Frame Reply;
  ASSERT_EQ(Client.readFrame(Reply), WireStatus::Ok);
  EXPECT_EQ(Reply.Type, FrameType::Reject);
  EXPECT_EQ(Reply.Serial, 1u);
  EXPECT_EQ(Reply.Reason, RejectReason::Corrupt);
  EXPECT_EQ(Reply.Decode, profdb::DecodeStatus::BadChecksum);

  Frame Good;
  Good.Type = FrameType::Upload;
  Good.Serial = 2;
  Good.Window = 0;
  Good.Artifact = encodedArtifact("wire;good");
  ASSERT_TRUE(Client.sendFrame(Good));
  ASSERT_EQ(Client.readFrame(Reply), WireStatus::Ok);
  EXPECT_EQ(Reply.Type, FrameType::Ack);
  EXPECT_EQ(Reply.Serial, 2u);
  EXPECT_EQ(Service.stats().Accepted, 1u);
}

TEST(ServerProtocolTest, QueriesAnswerOverTheWire) {
  IngestService Service(manualConfig());
  Server Front({}, Service);
  std::string Error;
  ASSERT_TRUE(Front.start(Error)) << Error;

  TestClient Client;
  ASSERT_TRUE(Client.connectTo(Front.port()));
  ASSERT_TRUE(Client.hello("t"));
  Frame Up;
  Up.Type = FrameType::Upload;
  Up.Serial = 1;
  Up.Window = 4;
  Up.Artifact = encodedArtifact("wire;q");
  ASSERT_TRUE(Client.sendFrame(Up));
  Frame Reply;
  ASSERT_EQ(Client.readFrame(Reply), WireStatus::Ok);
  ASSERT_EQ(Reply.Type, FrameType::Ack);

  // The wire answer is the same text the service renders in process.
  Frame Query;
  Query.Type = FrameType::Query;
  Query.Serial = 2;
  Query.Kind = QueryKind::CctStats;
  Query.Window = 4;
  ASSERT_TRUE(Client.sendFrame(Query));
  ASSERT_EQ(Client.readFrame(Reply), WireStatus::Ok);
  EXPECT_EQ(Reply.Type, FrameType::Ack);
  EXPECT_EQ(Reply.Text, Service.queryCctStats(4, Error));
  EXPECT_TRUE(Error.empty());

  // A query for an absent window rejects this request, not the session.
  Query.Serial = 3;
  Query.Window = 99;
  ASSERT_TRUE(Client.sendFrame(Query));
  ASSERT_EQ(Client.readFrame(Reply), WireStatus::Ok);
  EXPECT_EQ(Reply.Type, FrameType::Reject);
  EXPECT_EQ(Reply.Serial, 3u);
  Query.Serial = 4;
  Query.Window = 4;
  ASSERT_TRUE(Client.sendFrame(Query));
  ASSERT_EQ(Client.readFrame(Reply), WireStatus::Ok);
  EXPECT_EQ(Reply.Type, FrameType::Ack);
}

//===----------------------------------------------------------------------===//
// Resource limits
//===----------------------------------------------------------------------===//

TEST(ServerLimitTest, IdleConnectionsAreSweptAndCounted) {
  IngestService Service(manualConfig());
  ServerConfig Cfg;
  Cfg.IdleTimeoutMs = 100;
  Server Front(Cfg, Service);
  std::string Error;
  ASSERT_TRUE(Front.start(Error)) << Error;

  TestClient Client;
  ASSERT_TRUE(Client.connectTo(Front.port()));
  ASSERT_TRUE(Client.hello("t"));
  // Say nothing; the sweep must close us.
  EXPECT_TRUE(Client.readEof());
  ServerStats Stats = Front.stats();
  EXPECT_GE(Stats.IdleClosed, 1u);
  EXPECT_EQ(Stats.OpenConnections, 0u);
}

TEST(ServerLimitTest, WriteBackpressurePausesReading) {
  IngestService Service(manualConfig());
  ServerConfig Cfg;
  Cfg.WriteBufferLimit = 4096;
  // Shrink the kernel's slack on both ends so replies the client is not
  // reading land in the server's own buffer — the state under test —
  // rather than in socket buffers.
  Cfg.SendBufferBytes = 4096;
  Server Front(Cfg, Service);
  std::string Error;
  ASSERT_TRUE(Front.start(Error)) << Error;

  TestClient Client;
  // A tiny client receive buffer makes the kernel push back on the
  // server quickly once we stop reading.
  ASSERT_TRUE(Client.connectTo(Front.port(), /*RcvBufBytes=*/4096));
  ASSERT_TRUE(Client.hello("t"));
  Frame Up;
  Up.Type = FrameType::Upload;
  Up.Serial = 1;
  Up.Window = 0;
  Up.Artifact = encodedArtifact("wire;bp");
  ASSERT_TRUE(Client.sendFrame(Up));
  Frame Reply;
  ASSERT_EQ(Client.readFrame(Reply), WireStatus::Ok);
  ASSERT_EQ(Reply.Type, FrameType::Ack);

  // Pipeline many queries without reading a single reply: the server
  // must park the replies it cannot write, hit the buffer limit, and
  // pause reading us rather than buffer without bound.
  const unsigned Queries = 512;
  std::vector<uint8_t> Burst;
  for (unsigned Index = 0; Index != Queries; ++Index) {
    Frame Query;
    Query.Type = FrameType::Query;
    Query.Serial = 10 + Index;
    Query.Kind = QueryKind::TopPaths;
    Query.Window = 0;
    Query.Limit = 50;
    std::vector<uint8_t> Bytes = encodeFrame(Query);
    Burst.insert(Burst.end(), Bytes.begin(), Bytes.end());
  }
  ASSERT_TRUE(Client.sendBytes(Burst));

  // Hold off draining until the server has actually parked replies and
  // paused us — otherwise (e.g. under a sanitizer's slowdown) this
  // thread can race ahead and absorb replies as fast as the server
  // renders them, and the buffer under test never fills.
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (Front.stats().ReadPauses == 0 &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // Now drain: every reply must still arrive, in order.
  for (unsigned Index = 0; Index != Queries; ++Index) {
    ASSERT_EQ(Client.readFrame(Reply), WireStatus::Ok) << "query " << Index;
    EXPECT_EQ(Reply.Serial, 10u + Index);
    EXPECT_EQ(Reply.Type, FrameType::Ack);
  }
  EXPECT_GE(Front.stats().ReadPauses, 1u);
  EXPECT_EQ(Front.stats().Queries, uint64_t(Queries));
}

TEST(ServerLimitTest, TokenBucketRefusesOverTheWire) {
  // A frozen injected clock: the bucket never refills, so verdicts are
  // exact — burst-many accepts, then rate-limited rejects.
  IngestConfig Config = manualConfig();
  Config.TenantRatePerSec = 1;
  Config.TenantRateBurst = 2;
  Config.RateClockNs = [] { return uint64_t(1000000000); };
  IngestService Service(Config);
  Server Front({}, Service);
  std::string Error;
  ASSERT_TRUE(Front.start(Error)) << Error;

  TestClient Client;
  ASSERT_TRUE(Client.connectTo(Front.port()));
  ASSERT_TRUE(Client.hello("t"));
  unsigned Accepted = 0, RateLimited = 0;
  for (unsigned Index = 0; Index != 5; ++Index) {
    Frame Up;
    Up.Type = FrameType::Upload;
    Up.Serial = Index;
    Up.Window = 0;
    Up.Artifact = encodedArtifact("wire;rate" + std::to_string(Index));
    ASSERT_TRUE(Client.sendFrame(Up));
    Frame Reply;
    ASSERT_EQ(Client.readFrame(Reply), WireStatus::Ok);
    if (Reply.Type == FrameType::Ack) {
      ++Accepted;
    } else {
      EXPECT_EQ(Reply.Reason, RejectReason::RateLimited);
      ++RateLimited;
    }
  }
  EXPECT_EQ(Accepted, 2u);
  EXPECT_EQ(RateLimited, 3u);
  IngestStats Stats = Service.stats();
  EXPECT_EQ(Stats.RejectedBy[static_cast<size_t>(RejectReason::RateLimited)],
            3u);
}
