//===- tests/ProfDbTest.cpp - profile repository properties ---------------------===//
//
// The profile repository's contracts, proven on random programs:
//
//  * Round-trip fidelity — encode(decode(encode(A))) is bit-identical and
//    every measurement (totals, path tables, CCT context sums) survives
//    the trip exactly.
//  * Merge correctness — merged metrics equal the integer sums of the
//    inputs' metrics, per path and per calling context, bit for bit.
//  * Merge determinism — any shard order, any thread count, any
//    association of pairwise merges yields bit-identical artifact bytes
//    (the canonical re-emission through the real CCT allocator).
//  * Schema safety — artifacts with different modes or PIC routings are
//    rejected with a descriptive error, never silently summed.
//
// PP_CROSSMODE_SEEDS scales the fuzz seed count (default 64), the same
// knob the cross-mode suite uses.
//
//===----------------------------------------------------------------------===//

#include "prof/Session.h"
#include "profdb/Artifact.h"
#include "profdb/Diff.h"
#include "profdb/Merge.h"
#include "profdb/Store.h"

#include "RandomProgram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <numeric>
#include <random>
#include <unistd.h>

using namespace pp;
using prof::Mode;

namespace {

/// A run of the random program for \p Seed under shard variant \p Shard:
/// shards differ in D-cache geometry (different metrics, same control
/// flow) and, for odd shards, in asynchronous signal delivery (different
/// control flow — the merge must union the extra contexts).
profdb::Artifact makeShard(uint64_t Seed, unsigned Shard, Mode M,
                           const ir::Module &Program) {
  prof::SessionOptions Options;
  Options.Config.M = M;
  static const uint64_t Sizes[] = {16 * 1024, 8 * 1024, 4 * 1024, 32 * 1024};
  Options.MachineCfg.DCache.SizeBytes = Sizes[Shard % 4];
  if (Shard % 2 == 1) {
    Options.SignalHandler = "sighandler";
    Options.SignalInterval = 401 + 97 * Shard;
  }
  prof::RunOutcome Outcome = prof::runProfile(Program, Options);
  EXPECT_TRUE(Outcome.Result.Ok) << Outcome.Result.Error;
  std::string Fingerprint =
      "fuzz;seed=" + std::to_string(Seed) + ";shard=" + std::to_string(Shard);
  return profdb::artifactFromOutcome(Outcome, Program, Fingerprint,
                                     "fuzz" + std::to_string(Seed), 1,
                                     Options.Config);
}

std::unique_ptr<ir::Module> makeProgram(uint64_t Seed) {
  testutil::RandomProgramOptions Opts;
  Opts.WithSignalHandler = true;
  return testutil::makeRandomProgram(Seed, Opts);
}

/// Flattened, structure-independent view of everything an artifact
/// measures: path profiles keyed (function, path sum) and CCT records
/// keyed by their root-to-record procedure chain (metrics and path cells
/// summed over records sharing a chain). Merged artifacts must equal the
/// elementwise integer sum of their inputs under this view.
using MetricMap = std::map<std::string, std::vector<uint64_t>>;

void addInto(MetricMap &Into, const std::string &Key,
             const std::vector<uint64_t> &Values) {
  std::vector<uint64_t> &Slot = Into[Key];
  if (Slot.size() < Values.size())
    Slot.resize(Values.size(), 0);
  for (size_t I = 0; I != Values.size(); ++I)
    Slot[I] += Values[I];
}

MetricMap metricMap(const profdb::Artifact &A) {
  MetricMap Out;
  addInto(Out, "#insts", {A.ExecutedInsts});
  addInto(Out, "#totals",
          std::vector<uint64_t>(A.Totals.begin(), A.Totals.end()));
  for (const prof::FunctionPathProfile &Profile : A.PathProfiles) {
    if (!Profile.HasProfile)
      continue;
    for (const prof::PathEntry &Entry : Profile.Paths)
      addInto(Out,
              "path:" + std::to_string(Profile.FuncId) + ":" +
                  std::to_string(Entry.PathSum),
              {Entry.Freq, Entry.Metric0, Entry.Metric1});
  }
  if (A.Tree) {
    for (const auto &R : A.Tree->records()) {
      if (R->procId() == cct::RootProcId)
        continue;
      std::string Chain;
      for (const cct::CallRecord *Walk = R.get();
           Walk && Walk->procId() != cct::RootProcId; Walk = Walk->parent())
        Chain = std::to_string(Walk->procId()) + "/" + Chain;
      addInto(Out, "ctx:" + Chain, R->Metrics);
      for (const auto &[Sum, Cell] : R->PathTable)
        addInto(Out, "ctx:" + Chain + "#" + std::to_string(Sum),
                {Cell.Freq, Cell.Metric0, Cell.Metric1});
    }
  }
  return Out;
}

MetricMap sumMaps(const MetricMap &A, const MetricMap &B) {
  MetricMap Out = A;
  for (const auto &[Key, Values] : B)
    addInto(Out, Key, Values);
  return Out;
}

uint64_t seedCount() {
  return testutil::seedCountFromEnv("PP_CROSSMODE_SEEDS", 64);
}

class ProfDbRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

//===----------------------------------------------------------------------===//
// Round-trip fuzz
//===----------------------------------------------------------------------===//

TEST_P(ProfDbRoundTripTest, EncodeDecodeIsExact) {
  uint64_t Seed = GetParam();
  auto Program = makeProgram(Seed);
  // Alternate modes so both representations (flat path tables, CCT with
  // per-context cells) go through the fuzz.
  Mode M = (Seed % 2) ? Mode::ContextFlowHw : Mode::FlowHw;
  profdb::Artifact A = makeShard(Seed, unsigned(Seed % 4), M, *Program);

  std::vector<uint8_t> Bytes = profdb::encodeArtifact(A);
  profdb::Artifact Back;
  ASSERT_EQ(profdb::decodeArtifact(Bytes, Back), profdb::DecodeStatus::Ok)
      << "seed " << Seed;

  // Field-exact and re-encode bit-exact.
  EXPECT_EQ(Back.Fingerprint, A.Fingerprint);
  EXPECT_EQ(Back.SourceHash, A.SourceHash);
  EXPECT_EQ(Back.RunCount, A.RunCount);
  EXPECT_EQ(Back.Workload, A.Workload);
  EXPECT_EQ(Back.Scale, A.Scale);
  EXPECT_TRUE(Back.Schema == A.Schema);
  EXPECT_EQ(Back.Functions, A.Functions);
  EXPECT_EQ(Back.Totals, A.Totals);
  EXPECT_EQ(metricMap(Back), metricMap(A)) << "seed " << Seed;
  EXPECT_EQ(profdb::encodeArtifact(Back), Bytes) << "seed " << Seed;
}

TEST_P(ProfDbRoundTripTest, MergedMetricsAreExactSums) {
  uint64_t Seed = GetParam();
  auto Program = makeProgram(Seed);
  Mode M = (Seed % 2) ? Mode::ContextFlowHw : Mode::FlowHw;
  profdb::Artifact A = makeShard(Seed, 0, M, *Program);
  profdb::Artifact B = makeShard(Seed, 1, M, *Program);
  profdb::Artifact C = makeShard(Seed, 2, M, *Program);

  profdb::Artifact AB;
  std::string Error;
  ASSERT_TRUE(profdb::mergeArtifacts(A, B, AB, Error)) << Error;
  EXPECT_EQ(metricMap(AB), sumMaps(metricMap(A), metricMap(B)))
      << "seed " << Seed;
  EXPECT_EQ(AB.RunCount, 2u);

  // Commutativity and associativity, at the byte level.
  profdb::Artifact BA;
  ASSERT_TRUE(profdb::mergeArtifacts(B, A, BA, Error)) << Error;
  EXPECT_EQ(profdb::encodeArtifact(AB), profdb::encodeArtifact(BA))
      << "seed " << Seed;

  profdb::Artifact AB_C, BC, A_BC;
  ASSERT_TRUE(profdb::mergeArtifacts(AB, C, AB_C, Error)) << Error;
  ASSERT_TRUE(profdb::mergeArtifacts(B, C, BC, Error)) << Error;
  ASSERT_TRUE(profdb::mergeArtifacts(A, BC, A_BC, Error)) << Error;
  EXPECT_EQ(profdb::encodeArtifact(AB_C), profdb::encodeArtifact(A_BC))
      << "seed " << Seed;
  EXPECT_EQ(metricMap(AB_C),
            sumMaps(metricMap(C), sumMaps(metricMap(A), metricMap(B))))
      << "seed " << Seed;
}

INSTANTIATE_TEST_SUITE_P(Fuzz, ProfDbRoundTripTest,
                         ::testing::Range<uint64_t>(0, seedCount()));

//===----------------------------------------------------------------------===//
// Merge determinism at scale
//===----------------------------------------------------------------------===//

TEST(ProfDbMergeDeterminismTest, AnyOrderAnyThreadCountSameBytes) {
  const uint64_t Seed = 2027;
  auto Program = makeProgram(Seed);
  constexpr unsigned NumShards = 9;
  std::vector<profdb::Artifact> Shards;
  for (unsigned I = 0; I != NumShards; ++I)
    Shards.push_back(makeShard(Seed, I, Mode::ContextFlowHw, *Program));

  auto MergeOrder = [&Shards](const std::vector<size_t> &Order,
                              unsigned Threads) {
    std::vector<profdb::Artifact> Copy;
    for (size_t Index : Order)
      Copy.push_back(profdb::cloneArtifact(Shards[Index]));
    profdb::Artifact Out;
    std::string Error;
    EXPECT_TRUE(profdb::mergeAll(std::move(Copy), Out, Error, Threads))
        << Error;
    return profdb::encodeArtifact(Out);
  };

  std::vector<size_t> Order(NumShards);
  std::iota(Order.begin(), Order.end(), 0);
  std::vector<uint8_t> Reference = MergeOrder(Order, 1);
  EXPECT_FALSE(Reference.empty());

  std::mt19937_64 Rng(7);
  for (unsigned Trial = 0; Trial != 5; ++Trial) {
    std::shuffle(Order.begin(), Order.end(), Rng);
    for (unsigned Threads : {1u, 2u, 5u})
      EXPECT_EQ(MergeOrder(Order, Threads), Reference)
          << "trial " << Trial << " threads " << Threads;
  }
}

//===----------------------------------------------------------------------===//
// Schema and shape safety
//===----------------------------------------------------------------------===//

TEST(ProfDbMergeRejectTest, IncompatibleInputsAreRefused) {
  const uint64_t Seed = 11;
  auto Program = makeProgram(Seed);
  profdb::Artifact Base = makeShard(Seed, 0, Mode::ContextFlowHw, *Program);

  // Different mode.
  profdb::Artifact OtherMode = makeShard(Seed, 0, Mode::FlowHw, *Program);
  profdb::Artifact Out;
  std::string Error;
  EXPECT_FALSE(profdb::mergeArtifacts(Base, OtherMode, Out, Error));
  EXPECT_NE(Error.find("schema"), std::string::npos) << Error;

  // Different PIC routing.
  profdb::Artifact OtherPic = profdb::cloneArtifact(Base);
  OtherPic.Schema.Pic1 = "IC Miss";
  Error.clear();
  EXPECT_FALSE(profdb::mergeArtifacts(Base, OtherPic, Out, Error));
  EXPECT_NE(Error.find("schema"), std::string::npos) << Error;

  // Different acquisition: exact counts and sampled estimates must never
  // sum into one table.
  profdb::Artifact OtherAcq = profdb::cloneArtifact(Base);
  OtherAcq.Schema.Acquisition = "overflow";
  Error.clear();
  EXPECT_FALSE(profdb::mergeArtifacts(Base, OtherAcq, Out, Error));
  EXPECT_NE(Error.find("acq"), std::string::npos) << Error;

  // Different workload identity.
  profdb::Artifact OtherLoad = profdb::cloneArtifact(Base);
  OtherLoad.Workload = "someone-else";
  Error.clear();
  EXPECT_FALSE(profdb::mergeArtifacts(Base, OtherLoad, Out, Error));
  EXPECT_FALSE(Error.empty());

  // Different program shape (function table).
  auto Program2 = makeProgram(Seed + 1);
  profdb::Artifact OtherShape =
      makeShard(Seed + 1, 0, Mode::ContextFlowHw, *Program2);
  OtherShape.Workload = Base.Workload;
  Error.clear();
  EXPECT_FALSE(profdb::mergeArtifacts(Base, OtherShape, Out, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(ProfDbCrossKTest, CrossKMergeAndDiffAreRefused) {
  // A k = 2 window sum and a k = 1 path sum occupy different id spaces:
  // identical (function, sum) keys name unrelated paths, so cross-k
  // merges and diffs must refuse with a typed reason, not silently sum
  // or subtract unrelated counters.
  const uint64_t Seed = 13;
  auto Program = makeProgram(Seed);
  profdb::Artifact Base = makeShard(Seed, 0, Mode::FlowHw, *Program);
  ASSERT_EQ(Base.Schema.K, 1u);

  profdb::Artifact OtherK = profdb::cloneArtifact(Base);
  OtherK.Schema.K = 2;
  profdb::Artifact Out;
  std::string Error;
  EXPECT_FALSE(profdb::mergeArtifacts(Base, OtherK, Out, Error));
  EXPECT_NE(Error.find("across k"), std::string::npos) << Error;

  profdb::ArtifactDiff Diff;
  Error.clear();
  EXPECT_FALSE(profdb::diffArtifacts(Base, OtherK, Diff, Error));
  EXPECT_NE(Error.find("across k"), std::string::npos) << Error;

  // Per-function fallback levels are part of the identity too: two k = 2
  // runs can ladder differently, and a laddered (k = 1) table must not
  // mix with a true k = 2 table for the same function.
  profdb::Artifact Laddered = profdb::cloneArtifact(Base);
  bool Flipped = false;
  for (prof::FunctionPathProfile &Profile : Laddered.PathProfiles)
    if (Profile.HasProfile && !Flipped) {
      Profile.KIters = 2;
      Flipped = true;
    }
  ASSERT_TRUE(Flipped);
  Error.clear();
  EXPECT_FALSE(profdb::mergeArtifacts(Base, Laddered, Out, Error));
  EXPECT_NE(Error.find("across k"), std::string::npos) << Error;
  Error.clear();
  EXPECT_FALSE(profdb::diffArtifacts(Base, Laddered, Diff, Error));
  EXPECT_NE(Error.find("across k"), std::string::npos) << Error;
}

TEST(ProfDbCrossKTest, KSurvivesTheEncodeDecodeTrip) {
  const uint64_t Seed = 13;
  auto Program = makeProgram(Seed);
  profdb::Artifact A = makeShard(Seed, 0, Mode::FlowHw, *Program);
  A.Schema.K = 3;
  for (prof::FunctionPathProfile &Profile : A.PathProfiles)
    if (Profile.HasProfile)
      Profile.KIters = 2;

  std::vector<uint8_t> Bytes = profdb::encodeArtifact(A);
  profdb::Artifact Back;
  ASSERT_EQ(profdb::decodeArtifact(Bytes, Back), profdb::DecodeStatus::Ok);
  EXPECT_EQ(Back.Schema.K, 3u);
  for (const prof::FunctionPathProfile &Profile : Back.PathProfiles)
    if (Profile.HasProfile)
      EXPECT_EQ(Profile.KIters, 2u);
  EXPECT_EQ(profdb::encodeArtifact(Back), Bytes);
}

TEST(ProfDbDiffTest, SelfDiffIsEmptyAndShardDiffIsNot) {
  const uint64_t Seed = 5;
  auto Program = makeProgram(Seed);
  profdb::Artifact A = makeShard(Seed, 0, Mode::ContextFlowHw, *Program);
  profdb::Artifact B = makeShard(Seed, 2, Mode::ContextFlowHw, *Program);

  profdb::ArtifactDiff SelfDiff;
  std::string Error;
  ASSERT_TRUE(profdb::diffArtifacts(A, A, SelfDiff, Error)) << Error;
  EXPECT_TRUE(SelfDiff.Paths.empty());
  EXPECT_TRUE(SelfDiff.Contexts.empty());

  // Shards 0 and 2 differ only in D-cache size: same contexts, different
  // miss metrics — the diff must surface deltas.
  profdb::ArtifactDiff ShardDiff;
  ASSERT_TRUE(profdb::diffArtifacts(A, B, ShardDiff, Error)) << Error;
  EXPECT_FALSE(ShardDiff.Contexts.empty());
}

//===----------------------------------------------------------------------===//
// Disk store
//===----------------------------------------------------------------------===//

TEST(ProfDbStoreTest, WriteReadListRoundTrip) {
  char Template[] = "/tmp/pp-profdb-test-XXXXXX";
  const char *Dir = mkdtemp(Template);
  ASSERT_NE(Dir, nullptr);

  const uint64_t Seed = 3;
  auto Program = makeProgram(Seed);
  profdb::Artifact A = makeShard(Seed, 0, Mode::ContextFlowHw, *Program);
  profdb::Artifact B = makeShard(Seed, 1, Mode::ContextFlowHw, *Program);

  std::string PathA =
      std::string(Dir) + "/" + profdb::artifactFileName(A.Fingerprint);
  std::string PathB =
      std::string(Dir) + "/" + profdb::artifactFileName(B.Fingerprint);
  std::string Error;
  ASSERT_TRUE(profdb::writeArtifactFile(PathA, A, Error)) << Error;
  ASSERT_TRUE(profdb::writeArtifactFile(PathB, B, Error)) << Error;

  std::vector<std::string> Files = profdb::listArtifactFiles(Dir);
  ASSERT_EQ(Files.size(), 2u);
  EXPECT_TRUE(std::is_sorted(Files.begin(), Files.end()));

  profdb::Artifact Back;
  ASSERT_EQ(profdb::readArtifactFile(PathA, Back), profdb::DecodeStatus::Ok);
  EXPECT_EQ(profdb::encodeArtifact(Back), profdb::encodeArtifact(A));

  EXPECT_EQ(profdb::readArtifactFile(std::string(Dir) + "/absent.ppa", Back),
            profdb::DecodeStatus::Unreadable);

  std::string Cmd = std::string("rm -rf ") + Dir;
  (void)std::system(Cmd.c_str());
}

TEST(ProfDbStoreTest, WriteCreatesNestedParentDirectories) {
  char Template[] = "/tmp/pp-profdb-test-XXXXXX";
  const char *Dir = mkdtemp(Template);
  ASSERT_NE(Dir, nullptr);

  const uint64_t Seed = 3;
  auto Program = makeProgram(Seed);
  profdb::Artifact A = makeShard(Seed, 0, Mode::ContextFlowHw, *Program);

  // Three missing levels below the temp root; writeArtifactFile used to
  // create only the last one and fail with ENOENT on the mkstemp.
  std::string Nested = std::string(Dir) + "/tenant-7/2026-08/w042";
  std::string Path = Nested + "/" + profdb::artifactFileName(A.Fingerprint);
  std::string Error;
  ASSERT_TRUE(profdb::writeArtifactFile(Path, A, Error)) << Error;

  profdb::Artifact Back;
  ASSERT_EQ(profdb::readArtifactFile(Path, Back), profdb::DecodeStatus::Ok);
  EXPECT_EQ(profdb::encodeArtifact(Back), profdb::encodeArtifact(A));

  std::vector<std::string> Files = profdb::listArtifactFiles(Nested);
  ASSERT_EQ(Files.size(), 1u);

  // An unwritable parent still reports a typed error, not success.
  Error.clear();
  EXPECT_FALSE(profdb::writeArtifactFile(
      "/proc/no-such-root/a/b/" + profdb::artifactFileName(A.Fingerprint), A,
      Error));
  EXPECT_NE(Error.find("cannot create directory"), std::string::npos) << Error;

  std::string Cmd = std::string("rm -rf ") + Dir;
  (void)std::system(Cmd.c_str());
}
