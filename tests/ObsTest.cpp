//===- tests/ObsTest.cpp - the pipeline's self-observability layer -------------===//
//
// The contract under test is the determinism split: the JSON run report
// must be byte-identical for identical RunPlans whatever the worker-pool
// size (counters are schedule-independent sums, spans aggregate by
// identity, timestamps are virtual), while the Chrome trace carries the
// host-time, per-thread data the report deliberately excludes.
//
//===----------------------------------------------------------------------===//

#include "driver/RunCache.h"
#include "driver/RunScheduler.h"
#include "obs/Obs.h"
#include "obs/ObsReport.h"

#include <gtest/gtest.h>

using namespace pp;

namespace {

driver::RunPlan makePlan(const char *Workload, prof::Mode M) {
  driver::RunPlan Plan;
  Plan.Workload = Workload;
  Plan.Scale = 1;
  Plan.Options.Config.M = M;
  // Pin the engine: the report records per-engine instruction totals, and
  // the test must not depend on an inherited PP_VM_ENGINE.
  Plan.Options.Engine = vm::Engine::Threaded;
  return Plan;
}

/// Executes a fixed plan set (three workloads, three modes each, plus one
/// duplicate submission) on a fresh cache and a pool of \p Threads
/// workers, and returns the JSON report of exactly that work.
std::string runSuiteReport(unsigned Threads) {
  obs::resetForTesting();
  {
    driver::RunCache Cache("");
    driver::RunScheduler Sched(&Cache, Threads);
    std::vector<size_t> Tickets;
    for (const char *Workload : {"130.li", "129.compress", "102.swim"})
      for (prof::Mode M :
           {prof::Mode::None, prof::Mode::FlowHw, prof::Mode::ContextFlow})
        Tickets.push_back(Sched.submit(makePlan(Workload, M)));
    Tickets.push_back(Sched.submit(makePlan("130.li", prof::Mode::FlowHw)));
    for (size_t Ticket : Tickets) {
      driver::OutcomePtr Outcome = Sched.get(Ticket);
      EXPECT_TRUE(Outcome && Outcome->Result.Ok);
    }
  }
  return obs::renderJsonReport();
}

} // namespace

TEST(Obs, ReportByteIdenticalAcrossThreadCounts) {
  std::string Serial = runSuiteReport(0);
  EXPECT_EQ(Serial, runSuiteReport(1));
  EXPECT_EQ(Serial, runSuiteReport(4));
  EXPECT_EQ(Serial, runSuiteReport(13));
  // And across repeated runs of the same plan at the same pool size.
  EXPECT_EQ(Serial, runSuiteReport(4));
}

TEST(Obs, CountersAreExactForAKnownPlanSet) {
  obs::resetForTesting();
  driver::RunCache Cache("");
  {
    driver::RunScheduler Sched(&Cache, 0);
    size_t A = Sched.submit(makePlan("130.li", prof::Mode::FlowHw));
    size_t B = Sched.submit(makePlan("130.li", prof::Mode::FlowHw));
    size_t C = Sched.submit(makePlan("129.compress", prof::Mode::None));
    for (size_t Ticket : {A, B, C}) {
      driver::OutcomePtr Outcome = Sched.get(Ticket);
      ASSERT_TRUE(Outcome && Outcome->Result.Ok);
    }
    using obs::Counter;
    EXPECT_EQ(obs::counterValue(Counter::SchedulerSubmitted), 3u);
    EXPECT_EQ(obs::counterValue(Counter::SchedulerFolded), 1u);
    EXPECT_EQ(obs::counterValue(Counter::SchedulerExecuted), 2u);
    EXPECT_EQ(obs::counterValue(Counter::SchedulerFailed), 0u);
    EXPECT_EQ(obs::counterValue(Counter::CacheMisses), 2u);
    EXPECT_EQ(obs::counterValue(Counter::CacheStores), 2u);
    EXPECT_EQ(obs::counterValue(Counter::CacheMemoryHits), 0u);
  }
  // A second scheduler sharing the cache resolves the same plan from
  // memory: one hit, nothing new executed.
  {
    driver::RunScheduler Sched(&Cache, 0);
    driver::OutcomePtr Outcome =
        Sched.get(Sched.submit(makePlan("130.li", prof::Mode::FlowHw)));
    ASSERT_TRUE(Outcome && Outcome->Result.Ok);
  }
  EXPECT_EQ(obs::counterValue(obs::Counter::CacheMemoryHits), 1u);
  EXPECT_EQ(obs::counterValue(obs::Counter::SchedulerExecuted), 2u);
}

TEST(Obs, VmCounterMatchesExecutedInstructions) {
  obs::resetForTesting();
  driver::RunCache Cache("");
  driver::RunScheduler Sched(&Cache, 0);
  driver::OutcomePtr Outcome =
      Sched.get(Sched.submit(makePlan("129.compress", prof::Mode::FlowHw)));
  ASSERT_TRUE(Outcome && Outcome->Result.Ok);
  EXPECT_EQ(obs::counterValue(obs::Counter::VmInstsThreaded),
            Outcome->Result.ExecutedInsts);
  EXPECT_EQ(obs::counterValue(obs::Counter::VmInstsReference), 0u);
}

TEST(Obs, FailedRunsAreCounted) {
  obs::resetForTesting();
  driver::RunScheduler Sched(nullptr, 0);
  driver::OutcomePtr Outcome =
      Sched.get(Sched.submit(makePlan("no-such-workload", prof::Mode::None)));
  ASSERT_TRUE(Outcome);
  EXPECT_FALSE(Outcome->Result.Ok);
  EXPECT_EQ(obs::counterValue(obs::Counter::SchedulerFailed), 1u);
  EXPECT_EQ(obs::counterValue(obs::Counter::SchedulerExecuted), 0u);
}

TEST(Obs, DisabledCollectorRecordsNothing) {
  obs::resetForTesting();
  obs::setEnabled(false);
  {
    driver::RunCache Cache("");
    driver::RunScheduler Sched(&Cache, 0);
    driver::OutcomePtr Outcome =
        Sched.get(Sched.submit(makePlan("129.compress", prof::Mode::None)));
    ASSERT_TRUE(Outcome && Outcome->Result.Ok);
  }
  obs::setEnabled(true);
  for (unsigned Index = 0;
       Index != static_cast<unsigned>(obs::Counter::NumCounters); ++Index)
    EXPECT_EQ(obs::counterValue(static_cast<obs::Counter>(Index)), 0u)
        << obs::counterName(static_cast<obs::Counter>(Index));
  obs::ObsReport R;
  std::string Error;
  ASSERT_TRUE(obs::parseObsReport(obs::renderJsonReport(), R, Error))
      << Error;
  EXPECT_TRUE(R.Spans.empty());
}

TEST(Obs, ReportParsesAndVirtualTimeIsContiguous) {
  std::string Json = runSuiteReport(4);
  obs::ObsReport R;
  std::string Error;
  ASSERT_TRUE(obs::parseObsReport(Json, R, Error)) << Error;
  EXPECT_EQ(R.Version, 1u);
  EXPECT_EQ(R.DroppedRecords, 0u);
  EXPECT_EQ(R.Counters.size(),
            static_cast<size_t>(obs::Counter::NumCounters));
  ASSERT_FALSE(R.Spans.empty());

  // Gauges are host-time data; they must never leak into the report.
  EXPECT_EQ(Json.find("queue_depth"), std::string::npos);

  // Virtual time lays the aggregated spans end to end: each interval is
  // exactly the span's work, and the timeline has no gaps.
  uint64_t Cursor = 0;
  for (const obs::ObsReport::Span &S : R.Spans) {
    EXPECT_EQ(S.Vt0, Cursor);
    EXPECT_EQ(S.Vt1, S.Vt0 + S.Work);
    Cursor = S.Vt1;
  }

  EXPECT_EQ(obs::diffObsReports(R, R), "no differences\n");
  std::string Rendered = obs::renderObsReport(R);
  EXPECT_NE(Rendered.find("scheduler.submitted"), std::string::npos);
  EXPECT_NE(Rendered.find("driver/execute"), std::string::npos);
}

TEST(Obs, ChromeTraceCarriesGaugesAndSpans) {
  runSuiteReport(2);
  std::string Trace = obs::renderChromeTrace();
  EXPECT_NE(Trace.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(Trace.find("scheduler.queue_depth"), std::string::npos);
  EXPECT_NE(Trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(Trace.find("driver"), std::string::npos);
}
