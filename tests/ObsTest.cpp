//===- tests/ObsTest.cpp - the pipeline's self-observability layer -------------===//
//
// The contract under test is the determinism split: the JSON run report
// must be byte-identical for identical RunPlans whatever the worker-pool
// size (counters are schedule-independent sums, spans aggregate by
// identity, timestamps are virtual), while the Chrome trace carries the
// host-time, per-thread data the report deliberately excludes.
//
//===----------------------------------------------------------------------===//

#include "driver/RunCache.h"
#include "driver/RunScheduler.h"
#include "obs/Obs.h"
#include "obs/ObsReport.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

using namespace pp;

namespace {

driver::RunPlan makePlan(const char *Workload, prof::Mode M) {
  driver::RunPlan Plan;
  Plan.Workload = Workload;
  Plan.Scale = 1;
  Plan.Options.Config.M = M;
  // Pin the engine: the report records per-engine instruction totals, and
  // the test must not depend on an inherited PP_VM_ENGINE.
  Plan.Options.Engine = vm::Engine::Threaded;
  return Plan;
}

/// Executes a fixed plan set (three workloads, three modes each, plus one
/// duplicate submission) on a fresh cache and a pool of \p Threads
/// workers, and returns the JSON report of exactly that work.
std::string runSuiteReport(unsigned Threads) {
  obs::resetForTesting();
  {
    driver::RunCache Cache("");
    driver::RunScheduler Sched(&Cache, Threads);
    std::vector<size_t> Tickets;
    for (const char *Workload : {"130.li", "129.compress", "102.swim"})
      for (prof::Mode M :
           {prof::Mode::None, prof::Mode::FlowHw, prof::Mode::ContextFlow})
        Tickets.push_back(Sched.submit(makePlan(Workload, M)));
    Tickets.push_back(Sched.submit(makePlan("130.li", prof::Mode::FlowHw)));
    for (size_t Ticket : Tickets) {
      driver::OutcomePtr Outcome = Sched.get(Ticket);
      EXPECT_TRUE(Outcome && Outcome->Result.Ok);
    }
  }
  return obs::renderJsonReport();
}

} // namespace

TEST(Obs, ReportByteIdenticalAcrossThreadCounts) {
  std::string Serial = runSuiteReport(0);
  EXPECT_EQ(Serial, runSuiteReport(1));
  EXPECT_EQ(Serial, runSuiteReport(4));
  EXPECT_EQ(Serial, runSuiteReport(13));
  // And across repeated runs of the same plan at the same pool size.
  EXPECT_EQ(Serial, runSuiteReport(4));
}

TEST(Obs, CountersAreExactForAKnownPlanSet) {
  obs::resetForTesting();
  driver::RunCache Cache("");
  {
    driver::RunScheduler Sched(&Cache, 0);
    size_t A = Sched.submit(makePlan("130.li", prof::Mode::FlowHw));
    size_t B = Sched.submit(makePlan("130.li", prof::Mode::FlowHw));
    size_t C = Sched.submit(makePlan("129.compress", prof::Mode::None));
    for (size_t Ticket : {A, B, C}) {
      driver::OutcomePtr Outcome = Sched.get(Ticket);
      ASSERT_TRUE(Outcome && Outcome->Result.Ok);
    }
    using obs::Counter;
    EXPECT_EQ(obs::counterValue(Counter::SchedulerSubmitted), 3u);
    EXPECT_EQ(obs::counterValue(Counter::SchedulerFolded), 1u);
    EXPECT_EQ(obs::counterValue(Counter::SchedulerExecuted), 2u);
    EXPECT_EQ(obs::counterValue(Counter::SchedulerFailed), 0u);
    EXPECT_EQ(obs::counterValue(Counter::CacheMisses), 2u);
    EXPECT_EQ(obs::counterValue(Counter::CacheStores), 2u);
    EXPECT_EQ(obs::counterValue(Counter::CacheMemoryHits), 0u);
  }
  // A second scheduler sharing the cache resolves the same plan from
  // memory: one hit, nothing new executed.
  {
    driver::RunScheduler Sched(&Cache, 0);
    driver::OutcomePtr Outcome =
        Sched.get(Sched.submit(makePlan("130.li", prof::Mode::FlowHw)));
    ASSERT_TRUE(Outcome && Outcome->Result.Ok);
  }
  EXPECT_EQ(obs::counterValue(obs::Counter::CacheMemoryHits), 1u);
  EXPECT_EQ(obs::counterValue(obs::Counter::SchedulerExecuted), 2u);
}

TEST(Obs, VmCounterMatchesExecutedInstructions) {
  obs::resetForTesting();
  driver::RunCache Cache("");
  driver::RunScheduler Sched(&Cache, 0);
  driver::OutcomePtr Outcome =
      Sched.get(Sched.submit(makePlan("129.compress", prof::Mode::FlowHw)));
  ASSERT_TRUE(Outcome && Outcome->Result.Ok);
  EXPECT_EQ(obs::counterValue(obs::Counter::VmInstsThreaded),
            Outcome->Result.ExecutedInsts);
  EXPECT_EQ(obs::counterValue(obs::Counter::VmInstsReference), 0u);
}

TEST(Obs, FailedRunsAreCounted) {
  obs::resetForTesting();
  driver::RunScheduler Sched(nullptr, 0);
  driver::OutcomePtr Outcome =
      Sched.get(Sched.submit(makePlan("no-such-workload", prof::Mode::None)));
  ASSERT_TRUE(Outcome);
  EXPECT_FALSE(Outcome->Result.Ok);
  EXPECT_EQ(obs::counterValue(obs::Counter::SchedulerFailed), 1u);
  EXPECT_EQ(obs::counterValue(obs::Counter::SchedulerExecuted), 0u);
}

TEST(Obs, DisabledCollectorRecordsNothing) {
  obs::resetForTesting();
  obs::setEnabled(false);
  {
    driver::RunCache Cache("");
    driver::RunScheduler Sched(&Cache, 0);
    driver::OutcomePtr Outcome =
        Sched.get(Sched.submit(makePlan("129.compress", prof::Mode::None)));
    ASSERT_TRUE(Outcome && Outcome->Result.Ok);
  }
  obs::setEnabled(true);
  for (unsigned Index = 0;
       Index != static_cast<unsigned>(obs::Counter::NumCounters); ++Index)
    EXPECT_EQ(obs::counterValue(static_cast<obs::Counter>(Index)), 0u)
        << obs::counterName(static_cast<obs::Counter>(Index));
  obs::ObsReport R;
  std::string Error;
  ASSERT_TRUE(obs::parseObsReport(obs::renderJsonReport(), R, Error))
      << Error;
  EXPECT_TRUE(R.Spans.empty());
}

TEST(Obs, ReportParsesAndVirtualTimeIsContiguous) {
  std::string Json = runSuiteReport(4);
  obs::ObsReport R;
  std::string Error;
  ASSERT_TRUE(obs::parseObsReport(Json, R, Error)) << Error;
  EXPECT_EQ(R.Version, 1u);
  EXPECT_EQ(R.DroppedRecords, 0u);
  EXPECT_EQ(R.Counters.size(),
            static_cast<size_t>(obs::Counter::NumCounters));
  ASSERT_FALSE(R.Spans.empty());

  // Gauges are host-time data; they must never leak into the report.
  EXPECT_EQ(Json.find("queue_depth"), std::string::npos);

  // Virtual time lays the aggregated spans end to end: each interval is
  // exactly the span's work, and the timeline has no gaps.
  uint64_t Cursor = 0;
  for (const obs::ObsReport::Span &S : R.Spans) {
    EXPECT_EQ(S.Vt0, Cursor);
    EXPECT_EQ(S.Vt1, S.Vt0 + S.Work);
    Cursor = S.Vt1;
  }

  EXPECT_EQ(obs::diffObsReports(R, R), "no differences\n");
  std::string Rendered = obs::renderObsReport(R);
  EXPECT_NE(Rendered.find("scheduler.submitted"), std::string::npos);
  EXPECT_NE(Rendered.find("driver/execute"), std::string::npos);
}

TEST(Obs, ReportReaderDecodesUnicodeEscapes) {
  // \uXXXX escapes decode to UTF-8 bytes — the reader used to truncate
  // each code point to 7 bits, mangling any non-ASCII label.
  obs::ObsReport R;
  std::string Error;
  ASSERT_TRUE(obs::parseObsReport(
      "{\"pp_obs_version\": 1, \"dropped_records\": 0,"
      " \"counters\": {\"caf\\u00e9 \\u2603 \\ud83d\\ude00\": 7},"
      " \"spans\": []}",
      R, Error))
      << Error;
  ASSERT_EQ(R.Counters.size(), 1u);
  // U+00E9 (2-byte), U+2603 (3-byte), U+1F600 via surrogate pair (4-byte).
  EXPECT_EQ(R.Counters[0].first,
            "caf\xc3\xa9 \xe2\x98\x83 \xf0\x9f\x98\x80");
  EXPECT_EQ(R.Counters[0].second, 7u);

  // Escaped and raw UTF-8 spellings of the same label parse identically.
  obs::ObsReport Raw;
  ASSERT_TRUE(obs::parseObsReport(
      "{\"pp_obs_version\": 1, \"dropped_records\": 0,"
      " \"counters\": {\"caf\xc3\xa9 \xe2\x98\x83 \xf0\x9f\x98\x80\": 7},"
      " \"spans\": []}",
      Raw, Error))
      << Error;
  EXPECT_EQ(Raw.Counters[0].first, R.Counters[0].first);
}

TEST(Obs, ReportReaderRejectsBadUnicodeEscapes) {
  const char *Bad[] = {
      // Lone high surrogate at end of string.
      "{\"pp_obs_version\": 1, \"counters\": {\"\\ud83d\": 1}, \"spans\": []}",
      // High surrogate followed by a non-escape.
      "{\"pp_obs_version\": 1, \"counters\": {\"\\ud83dxy\": 1}, \"spans\": []}",
      // High surrogate followed by a non-surrogate escape.
      "{\"pp_obs_version\": 1, \"counters\": {\"\\ud83d\\u0041\": 1}, \"spans\": []}",
      // Lone low surrogate.
      "{\"pp_obs_version\": 1, \"counters\": {\"\\udc00\": 1}, \"spans\": []}",
      // Truncated and non-hex escapes.
      "{\"pp_obs_version\": 1, \"counters\": {\"\\u12",
      "{\"pp_obs_version\": 1, \"counters\": {\"\\u12zq\": 1}, \"spans\": []}",
  };
  for (const char *Json : Bad) {
    obs::ObsReport R;
    std::string Error;
    EXPECT_FALSE(obs::parseObsReport(Json, R, Error)) << Json;
    EXPECT_FALSE(Error.empty()) << Json;
  }
}

TEST(Obs, AggregateSumsReportsByIdentity) {
  auto Parse = [](const char *Json) {
    obs::ObsReport R;
    std::string Error;
    EXPECT_TRUE(obs::parseObsReport(Json, R, Error)) << Error;
    return R;
  };
  // Two reports from different binary builds: B knows a counter A lacks,
  // and their span sets overlap on one identity.
  obs::ObsReport A = Parse(
      "{\"pp_obs_version\": 1, \"dropped_records\": 1,"
      " \"counters\": {\"runs.total\": 3, \"runs.failed\": 1},"
      " \"spans\": [{\"cat\": \"driver\", \"name\": \"execute\","
      " \"label\": \"130.li\", \"count\": 2, \"items\": 4, \"work\": 10,"
      " \"vt0\": 0, \"vt1\": 10}]}");
  obs::ObsReport B = Parse(
      "{\"pp_obs_version\": 1, \"dropped_records\": 2,"
      " \"counters\": {\"runs.total\": 5, \"collectd.accepted\": 7},"
      " \"spans\": [{\"cat\": \"driver\", \"name\": \"execute\","
      " \"label\": \"130.li\", \"count\": 1, \"items\": 1, \"work\": 4,"
      " \"vt0\": 10, \"vt1\": 14},"
      " {\"cat\": \"collectd\", \"name\": \"ingest\", \"label\": \"\","
      " \"count\": 9, \"items\": 9, \"work\": 9, \"vt0\": 0,"
      " \"vt1\": 9}]}");

  obs::ObsReport Sum;
  std::string Error;
  ASSERT_TRUE(obs::aggregateObsReports({A, B}, Sum, Error)) << Error;
  EXPECT_EQ(Sum.Version, 1u);
  EXPECT_EQ(Sum.DroppedRecords, 3u);

  // Counters sum by name in first-seen order; B's new counter appends.
  ASSERT_EQ(Sum.Counters.size(), 3u);
  EXPECT_EQ(Sum.Counters[0].first, "runs.total");
  EXPECT_EQ(Sum.Counters[0].second, 8u);
  EXPECT_EQ(Sum.Counters[1].first, "runs.failed");
  EXPECT_EQ(Sum.Counters[1].second, 1u);
  EXPECT_EQ(Sum.Counters[2].first, "collectd.accepted");
  EXPECT_EQ(Sum.Counters[2].second, 7u);

  // The shared span identity folds; the virtual-time envelope widens to
  // cover both contributors.
  ASSERT_EQ(Sum.Spans.size(), 2u);
  EXPECT_EQ(Sum.Spans[0].Count, 3u);
  EXPECT_EQ(Sum.Spans[0].Items, 5u);
  EXPECT_EQ(Sum.Spans[0].Work, 14u);
  EXPECT_EQ(Sum.Spans[0].Vt0, 0u);
  EXPECT_EQ(Sum.Spans[0].Vt1, 14u);
  EXPECT_EQ(Sum.Spans[1].Cat, "collectd");
  EXPECT_EQ(Sum.Spans[1].Count, 9u);

  EXPECT_FALSE(obs::aggregateObsReports({}, Sum, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(Obs, RepoListingAndAggregationRoundTrip) {
  // A repository of stored reports — two copies of the same real run plus
  // a non-JSON bystander — aggregates to exactly double every counter.
  std::string Json = runSuiteReport(0);
  char Template[] = "/tmp/pp-obs-test-XXXXXX";
  const char *Dir = mkdtemp(Template);
  ASSERT_NE(Dir, nullptr);
  for (const char *Name : {"/b.json", "/a.json"})
    std::ofstream(std::string(Dir) + Name) << Json;
  std::ofstream(std::string(Dir) + "/notes.txt") << "not a report";

  std::vector<std::string> Files = obs::listObsReportFiles(Dir);
  ASSERT_EQ(Files.size(), 2u);
  EXPECT_EQ(Files[0], std::string(Dir) + "/a.json");
  EXPECT_EQ(Files[1], std::string(Dir) + "/b.json");

  obs::ObsReport One, Sum;
  std::string Error;
  ASSERT_TRUE(obs::parseObsReport(Json, One, Error)) << Error;
  std::vector<obs::ObsReport> Reports;
  for (const std::string &Path : Files) {
    obs::ObsReport R;
    ASSERT_TRUE(obs::readObsReportFile(Path, R, Error)) << Error;
    Reports.push_back(std::move(R));
  }
  ASSERT_TRUE(obs::aggregateObsReports(Reports, Sum, Error)) << Error;
  ASSERT_EQ(Sum.Counters.size(), One.Counters.size());
  for (size_t Index = 0; Index != Sum.Counters.size(); ++Index) {
    EXPECT_EQ(Sum.Counters[Index].first, One.Counters[Index].first);
    EXPECT_EQ(Sum.Counters[Index].second, 2 * One.Counters[Index].second);
  }
  ASSERT_EQ(Sum.Spans.size(), One.Spans.size());
  for (size_t Index = 0; Index != Sum.Spans.size(); ++Index)
    EXPECT_EQ(Sum.Spans[Index].Work, 2 * One.Spans[Index].Work);

  // Missing directories are an empty listing, not an error.
  EXPECT_TRUE(obs::listObsReportFiles("/proc/no-such-dir").empty());

  std::string Cmd = std::string("rm -rf ") + Dir;
  (void)std::system(Cmd.c_str());
}

TEST(Obs, ChromeTraceCarriesGaugesAndSpans) {
  runSuiteReport(2);
  std::string Trace = obs::renderChromeTrace();
  EXPECT_NE(Trace.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(Trace.find("scheduler.queue_depth"), std::string::npos);
  EXPECT_NE(Trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(Trace.find("driver"), std::string::npos);
}
