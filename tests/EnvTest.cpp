//===- tests/EnvTest.cpp - strict environment-knob parsing ---------------------===//
//
// Every numeric knob goes through support/Env.h's strict parser: a typo
// like PP_DRIVER_THREADS=max must warn and fall back to the knob's
// default, never silently parse as 0 (which would mean "serial" for
// thread counts and "disarmed" for fault seams). These tests drive the
// shared helpers and then each knob's consumer.
//
//===----------------------------------------------------------------------===//

#include "driver/FaultInjector.h"
#include "obs/Obs.h"
#include "driver/RunScheduler.h"
#include "collectd/Ingest.h"
#include "opt/Pass.h"
#include "prof/Mode.h"
#include "profdb/Merge.h"
#include "profdb/Store.h"
#include "support/Env.h"

#include "RandomProgram.h"

#include <cstdlib>
#include <gtest/gtest.h>

using namespace pp;

namespace {

/// Sets (or unsets, for nullptr) an environment variable for one test and
/// restores the previous state on destruction.
class EnvGuard {
public:
  EnvGuard(const char *Name, const char *Value) : Name(Name) {
    const char *Previous = std::getenv(Name);
    Had = Previous != nullptr;
    if (Previous)
      Old = Previous;
    if (Value)
      ::setenv(Name, Value, 1);
    else
      ::unsetenv(Name);
  }
  ~EnvGuard() {
    if (Had)
      ::setenv(Name.c_str(), Old.c_str(), 1);
    else
      ::unsetenv(Name.c_str());
  }

private:
  std::string Name;
  std::string Old;
  bool Had;
};

} // namespace

TEST(Env, StrictUint64Parsing) {
  struct Case {
    const char *Text; // nullptr = unset
    EnvParse Want;
    uint64_t Value;
  };
  const Case Cases[] = {
      {nullptr, EnvParse::Unset, 0},
      {"", EnvParse::Unset, 0},
      {"0", EnvParse::Ok, 0},
      {"123", EnvParse::Ok, 123},
      {"18446744073709551615", EnvParse::Ok, UINT64_MAX},
      {"banana", EnvParse::Malformed, 0},
      {"12x", EnvParse::Malformed, 0},
      {"x12", EnvParse::Malformed, 0},
      {" 5", EnvParse::Malformed, 0},
      {"-1", EnvParse::Malformed, 0},
      {"99999999999999999999", EnvParse::Malformed, 0}, // overflow
  };
  for (const Case &C : Cases) {
    EnvGuard Guard("PP_ENV_TEST_KNOB", C.Text);
    uint64_t Out = 777; // sentinel: must survive non-Ok outcomes
    EXPECT_EQ(envUint64("PP_ENV_TEST_KNOB", "pp-tests", Out), C.Want)
        << (C.Text ? C.Text : "<unset>");
    EXPECT_EQ(Out, C.Want == EnvParse::Ok ? C.Value : 777u)
        << (C.Text ? C.Text : "<unset>");
  }
}

TEST(Env, Uint64OrKeepsTheDefaultOnBadInput) {
  {
    EnvGuard Guard("PP_ENV_TEST_KNOB", "42");
    EXPECT_EQ(envUint64Or("PP_ENV_TEST_KNOB", "pp-tests", 7), 42u);
  }
  {
    EnvGuard Guard("PP_ENV_TEST_KNOB", "banana");
    EXPECT_EQ(envUint64Or("PP_ENV_TEST_KNOB", "pp-tests", 7), 7u);
  }
  {
    EnvGuard Guard("PP_ENV_TEST_KNOB", nullptr);
    EXPECT_EQ(envUint64Or("PP_ENV_TEST_KNOB", "pp-tests", 7), 7u);
  }
}

TEST(Env, FlagAcceptsOnlyZeroAndOne) {
  struct Case {
    const char *Text; // nullptr = unset
    bool Want;
  };
  const Case Cases[] = {
      {nullptr, false},
      {"", false},
      {"0", false},
      {"1", true},
      // The original bug: only the first character was inspected, so
      // "10" read as true and "01" as false. Anything that is not
      // exactly "0" or "1" now warns and keeps the default.
      {"10", false},
      {"01", false},
      {"true", false},
      {"yes", false},
      {"2", false},
  };
  for (const Case &C : Cases) {
    EnvGuard Guard("PP_ENV_TEST_FLAG", C.Text);
    EXPECT_EQ(envFlag("PP_ENV_TEST_FLAG"), C.Want)
        << (C.Text ? C.Text : "<unset>");
  }
}

TEST(Env, BoolOrKeepsTheDefaultOnBadInput) {
  // envBoolOr carries the caller's default through unset AND malformed —
  // PP_OBS defaults on, so PP_OBS=true must not silently disable it.
  {
    EnvGuard Guard("PP_ENV_TEST_FLAG", nullptr);
    EXPECT_TRUE(envBoolOr("PP_ENV_TEST_FLAG", "pp-tests", true));
    EXPECT_FALSE(envBoolOr("PP_ENV_TEST_FLAG", "pp-tests", false));
  }
  {
    EnvGuard Guard("PP_ENV_TEST_FLAG", "true");
    EXPECT_TRUE(envBoolOr("PP_ENV_TEST_FLAG", "pp-tests", true));
  }
  {
    EnvGuard Guard("PP_ENV_TEST_FLAG", "0");
    EXPECT_FALSE(envBoolOr("PP_ENV_TEST_FLAG", "pp-tests", true));
  }
  {
    EnvGuard Guard("PP_ENV_TEST_FLAG", "1");
    EXPECT_TRUE(envBoolOr("PP_ENV_TEST_FLAG", "pp-tests", false));
  }
}

TEST(Env, BlKKnobParsesStrictlyAndClampsToRange) {
  struct Case {
    const char *Text; // nullptr = unset
    unsigned Want;
  };
  const Case Cases[] = {
      {nullptr, 1}, // unset: classic Ball-Larus
      {"1", 1},
      {"2", 2},
      {"16", 16},
      {"0", 1},      // k = 0 is meaningless: warn, stay classic
      {"17", 1},     // out of range
      {"banana", 1}, // malformed must not parse as 0 (or anything)
      {"2x", 1},
      {"-1", 1},
      {" 2", 1},
  };
  for (const Case &C : Cases) {
    EnvGuard Guard("PP_BL_K", C.Text);
    EXPECT_EQ(prof::defaultKFromEnv("pp-tests"), C.Want)
        << (C.Text ? C.Text : "<unset>");
  }
}

TEST(Env, DriverThreadsKnobRejectsNonNumeric) {
  EnvGuard Serial("PP_DRIVER_SERIAL", nullptr);
  {
    EnvGuard Guard("PP_DRIVER_THREADS", "3");
    EXPECT_EQ(driver::RunScheduler::defaultWorkerThreads(), 3u);
  }
  {
    // The original bug: atol("max") == 0 silently dropped the whole suite
    // into serial mode. Now: warn, keep the hardware default.
    EnvGuard Guard("PP_DRIVER_THREADS", "max");
    unsigned Threads = driver::RunScheduler::defaultWorkerThreads();
    EXPECT_GE(Threads, 4u);
    EXPECT_LE(Threads, 16u);
  }
  {
    EnvGuard Guard("PP_DRIVER_THREADS", nullptr);
    EnvGuard SerialOn("PP_DRIVER_SERIAL", "1");
    EXPECT_EQ(driver::RunScheduler::defaultWorkerThreads(), 0u);
  }
}

TEST(Env, ProfDbThreadsKnobRejectsNonNumeric) {
  EnvGuard DriverThreads("PP_DRIVER_THREADS", nullptr);
  {
    EnvGuard Guard("PP_PROFDB_THREADS", "5");
    EXPECT_EQ(profdb::mergeThreadsFromEnv(), 5u);
  }
  {
    // Malformed merge-pool knob falls through to the next default, here
    // PP_DRIVER_SERIAL=1 -> one merge thread.
    EnvGuard Guard("PP_PROFDB_THREADS", "banana");
    EnvGuard SerialOn("PP_DRIVER_SERIAL", "1");
    EXPECT_EQ(profdb::mergeThreadsFromEnv(), 1u);
  }
  {
    // And the driver-threads fallback is parsed just as strictly.
    EnvGuard Guard("PP_PROFDB_THREADS", nullptr);
    EnvGuard SerialOff("PP_DRIVER_SERIAL", nullptr);
    EnvGuard Bad("PP_DRIVER_THREADS", "many");
    unsigned Threads = profdb::mergeThreadsFromEnv();
    EXPECT_GE(Threads, 4u);
    EXPECT_LE(Threads, 16u);
  }
}

TEST(Env, FaultKnobsRejectNonNumeric) {
  EnvGuard Seed("PP_FAULT_SEED", nullptr);
  {
    EnvGuard Guard("PP_FAULT_READ_FLIP", "7");
    EXPECT_EQ(driver::FaultInjector::configFromEnv().FlipEveryNthRead, 7u);
  }
  {
    // A typo'd seam must stay disarmed (0 = never), with a warning,
    // instead of arming at some accidental period.
    EnvGuard Guard("PP_FAULT_READ_FLIP", "banana");
    EXPECT_EQ(driver::FaultInjector::configFromEnv().FlipEveryNthRead, 0u);
  }
  {
    EnvGuard Guard("PP_FAULT_SEED", "42");
    EXPECT_EQ(driver::FaultInjector::configFromEnv().Seed, 42u);
  }
  {
    EnvGuard Guard("PP_FAULT_SEED", "banana");
    EXPECT_EQ(driver::FaultInjector::configFromEnv().Seed,
              driver::FaultInjector::Config().Seed);
  }
}

TEST(Env, CrossModeSeedsKnobRejectsNonNumeric) {
  {
    EnvGuard Guard("PP_CROSSMODE_SEEDS", "4");
    EXPECT_EQ(testutil::seedCountFromEnv("PP_CROSSMODE_SEEDS", 6), 4u);
  }
  {
    EnvGuard Guard("PP_CROSSMODE_SEEDS", "banana");
    EXPECT_EQ(testutil::seedCountFromEnv("PP_CROSSMODE_SEEDS", 6), 6u);
  }
  {
    // Zero seeds would run nothing; it reads as "use the default".
    EnvGuard Guard("PP_CROSSMODE_SEEDS", "0");
    EXPECT_EQ(testutil::seedCountFromEnv("PP_CROSSMODE_SEEDS", 6), 6u);
  }
}

TEST(Env, ObsRingCapacityKnobIsStrictAndClamped) {
  {
    EnvGuard Guard("PP_OBS_RING_CAPACITY", "4096");
    EXPECT_EQ(obs::configuredRingCapacity(), 4096u);
  }
  {
    // A typo'd capacity keeps the default, never parses as 0 (which
    // would make the ring unable to hold anything).
    EnvGuard Guard("PP_OBS_RING_CAPACITY", "banana");
    EXPECT_EQ(obs::configuredRingCapacity(), size_t(1) << 14);
  }
  {
    EnvGuard Guard("PP_OBS_RING_CAPACITY", nullptr);
    EXPECT_EQ(obs::configuredRingCapacity(), size_t(1) << 14);
  }
  {
    // Degenerate values clamp instead of breaking the ring: too small
    // rounds up to 64 slots, absurdly large rounds down to 2^20.
    EnvGuard Small("PP_OBS_RING_CAPACITY", "1");
    EXPECT_EQ(obs::configuredRingCapacity(), 64u);
  }
  {
    EnvGuard Large("PP_OBS_RING_CAPACITY", "99999999");
    EXPECT_EQ(obs::configuredRingCapacity(), size_t(1) << 20);
  }
}

TEST(Env, StaleTempSweepKnobsAreStrictAndOrdered) {
  {
    EnvGuard Grace("PP_COLLECTD_TEMP_GRACE_SECS", nullptr);
    EnvGuard Hard("PP_COLLECTD_TEMP_HARD_SECS", nullptr);
    EXPECT_EQ(profdb::staleTempGraceSeconds(), profdb::StaleTempGraceSeconds);
    EXPECT_EQ(profdb::staleTempHardSeconds(), profdb::StaleTempHardSeconds);
  }
  {
    EnvGuard Grace("PP_COLLECTD_TEMP_GRACE_SECS", "60");
    EnvGuard Hard("PP_COLLECTD_TEMP_HARD_SECS", "3600");
    EXPECT_EQ(profdb::staleTempGraceSeconds(), 60);
    EXPECT_EQ(profdb::staleTempHardSeconds(), 3600);
  }
  {
    // Typos warn and keep the defaults: "soon" must not parse as 0,
    // which would let the sweeper delete a temp file mid-write.
    EnvGuard Grace("PP_COLLECTD_TEMP_GRACE_SECS", "soon");
    EnvGuard Hard("PP_COLLECTD_TEMP_HARD_SECS", "later");
    EXPECT_EQ(profdb::staleTempGraceSeconds(), profdb::StaleTempGraceSeconds);
    EXPECT_EQ(profdb::staleTempHardSeconds(), profdb::StaleTempHardSeconds);
  }
  {
    // The hard deadline clamps to at least the grace period, so an
    // operator raising only the grace can never make the hard sweep
    // delete files the grace pass still protects.
    EnvGuard Grace("PP_COLLECTD_TEMP_GRACE_SECS", "7200");
    EnvGuard Hard("PP_COLLECTD_TEMP_HARD_SECS", "60");
    EXPECT_EQ(profdb::staleTempGraceSeconds(), 7200);
    EXPECT_EQ(profdb::staleTempHardSeconds(), 7200);
  }
}

TEST(Env, OptBudgetKnobsAreStrict) {
  {
    EnvGuard Inline("PP_OPT_INLINE_BUDGET", "64");
    EnvGuard Dup("PP_OPT_DUP_BUDGET", "32");
    opt::PassOptions Opts = opt::PassOptions::fromEnv("pp-tests");
    EXPECT_EQ(Opts.InlineBudget, 64u);
    EXPECT_EQ(Opts.DupBudget, 32u);
  }
  {
    // Typos keep the defaults: "big" must not parse as 0, which would
    // silently disable inlining and tail duplication everywhere.
    EnvGuard Inline("PP_OPT_INLINE_BUDGET", "big");
    EnvGuard Dup("PP_OPT_DUP_BUDGET", "lots");
    opt::PassOptions Opts = opt::PassOptions::fromEnv("pp-tests");
    EXPECT_EQ(Opts.InlineBudget, opt::PassOptions().InlineBudget);
    EXPECT_EQ(Opts.DupBudget, opt::PassOptions().DupBudget);
  }
  {
    EnvGuard Inline("PP_OPT_INLINE_BUDGET", nullptr);
    EnvGuard Dup("PP_OPT_DUP_BUDGET", nullptr);
    opt::PassOptions Opts = opt::PassOptions::fromEnv("pp-tests");
    EXPECT_EQ(Opts.InlineBudget, opt::PassOptions().InlineBudget);
    EXPECT_EQ(Opts.DupBudget, opt::PassOptions().DupBudget);
  }
}

TEST(Env, OptPassListKnobIsStrict) {
  const std::vector<opt::PassKind> Default = {opt::PassKind::Layout,
                                              opt::PassKind::Superblock};
  {
    EnvGuard Guard("PP_OPT_PASSES", "inline,layout");
    std::vector<opt::PassKind> Passes =
        opt::passesFromEnv("pp-tests", Default);
    ASSERT_EQ(Passes.size(), 2u);
    EXPECT_EQ(Passes[0], opt::PassKind::Inline);
    EXPECT_EQ(Passes[1], opt::PassKind::Layout);
  }
  {
    // An unknown pass name warns and keeps the caller's default order —
    // a typo must not silently run an empty (or partial) pipeline.
    EnvGuard Guard("PP_OPT_PASSES", "layout,unroll");
    EXPECT_EQ(opt::passesFromEnv("pp-tests", Default), Default);
  }
  {
    EnvGuard Guard("PP_OPT_PASSES", nullptr);
    EXPECT_EQ(opt::passesFromEnv("pp-tests", Default), Default);
  }
  {
    EnvGuard Guard("PP_OPT_PASSES", "");
    EXPECT_EQ(opt::passesFromEnv("pp-tests", Default), Default);
  }
}

TEST(Env, RetainWindowsKnobIsStrict) {
  {
    EnvGuard Guard("PP_COLLECTD_RETAIN_WINDOWS", nullptr);
    EXPECT_EQ(collectd::retainWindowsFromEnv(), 0u);
  }
  {
    EnvGuard Guard("PP_COLLECTD_RETAIN_WINDOWS", "8");
    EXPECT_EQ(collectd::retainWindowsFromEnv(), 8u);
  }
  {
    // "lots" keeps the default 0 (retention disabled), never a random
    // cap that would start expiring live windows.
    EnvGuard Guard("PP_COLLECTD_RETAIN_WINDOWS", "lots");
    EXPECT_EQ(collectd::retainWindowsFromEnv(), 0u);
  }
}
