//===- tests/HwTest.cpp - caches, predictor, counters, machine ----------------===//

#include "hw/BranchPredictor.h"
#include "hw/CacheSim.h"
#include "hw/Machine.h"
#include "hw/MemoryImage.h"
#include "hw/PerfCounters.h"

#include <gtest/gtest.h>

using namespace pp;
using namespace pp::hw;

TEST(CacheSim, DirectMappedConflicts) {
  CacheSim Cache(dcacheDefault()); // 16 KB direct-mapped, 32 B lines
  // Two addresses 16 KB apart map to the same set and evict each other.
  EXPECT_TRUE(Cache.access(0x1000, 8));  // cold miss
  EXPECT_FALSE(Cache.access(0x1000, 8)); // hit
  EXPECT_TRUE(Cache.access(0x1000 + 16 * 1024, 8));
  EXPECT_TRUE(Cache.access(0x1000, 8)) << "conflict must evict";
}

TEST(CacheSim, TwoWayAvoidsPingPong) {
  CacheSim Cache(icacheDefault()); // 2-way
  EXPECT_TRUE(Cache.access(0x1000, 4));
  EXPECT_TRUE(Cache.access(0x1000 + 8 * 1024, 4)); // same set, other way
  EXPECT_FALSE(Cache.access(0x1000, 4));
  EXPECT_FALSE(Cache.access(0x1000 + 8 * 1024, 4));
  // A third conflicting line evicts the LRU way (0x1000 was used more
  // recently than its neighbour? both touched; LRU is the +8K line).
  EXPECT_TRUE(Cache.access(0x1000 + 16 * 1024, 4));
}

TEST(CacheSim, SpatialLocalityWithinLine) {
  CacheSim Cache(dcacheDefault());
  EXPECT_TRUE(Cache.access(0x2000, 8));
  EXPECT_FALSE(Cache.access(0x2008, 8));
  EXPECT_FALSE(Cache.access(0x201f, 1));
  EXPECT_TRUE(Cache.access(0x2020, 1)) << "next line is cold";
}

TEST(CacheSim, StraddlingAccessTouchesBothLines) {
  CacheSim Cache(dcacheDefault());
  EXPECT_TRUE(Cache.access(0x2000 + 30, 8)); // spans 0x2000 and 0x2020 lines
  EXPECT_FALSE(Cache.access(0x2000, 1));
  EXPECT_FALSE(Cache.access(0x2020, 1));
}

TEST(CacheSim, StraddlingAccessCountsEachMissedLine) {
  // Regression: a line-straddling access with both lines cold used to be
  // charged as one miss; the hardware's miss counter sees two line fills.
  CacheSim Cache(dcacheDefault());
  EXPECT_EQ(Cache.access(0x2000 + 30, 8), 2u);
  EXPECT_EQ(Cache.misses(), 2u);
  EXPECT_EQ(Cache.accesses(), 1u);
  // Now one line is warm, one cold: exactly one miss is charged.
  EXPECT_TRUE(Cache.access(0x203e, 4)); // spans 0x2020 (warm) and 0x2040
  EXPECT_EQ(Cache.access(0x205e, 4), 1u) << "0x2040 warm, 0x2060 cold";
  EXPECT_EQ(Cache.misses(), 4u);
  // Fully warm straddle: no misses.
  EXPECT_EQ(Cache.access(0x201e, 4), 0u);
}

TEST(CacheSim, CountersTrackAccessesAndMisses) {
  CacheSim Cache(dcacheDefault());
  Cache.access(0, 8);
  Cache.access(0, 8);
  Cache.access(64, 8);
  EXPECT_EQ(Cache.accesses(), 3u);
  EXPECT_EQ(Cache.misses(), 2u);
  Cache.reset();
  EXPECT_EQ(Cache.accesses(), 0u);
  EXPECT_TRUE(Cache.access(0, 8));
}

TEST(BranchPredictor, LearnsABias) {
  BranchPredictor Predictor;
  // Initially weakly not-taken: an always-taken branch mispredicts at most
  // twice, then stays correct.
  int Wrong = 0;
  for (int Round = 0; Round != 100; ++Round)
    if (!Predictor.predictConditional(0x4000, true))
      ++Wrong;
  EXPECT_LE(Wrong, 2);
  // Alternating branches are hard.
  int AltWrong = 0;
  for (int Round = 0; Round != 100; ++Round)
    if (!Predictor.predictConditional(0x5000, Round % 2 == 0))
      ++AltWrong;
  EXPECT_GE(AltWrong, 40);
}

TEST(BranchPredictor, IndirectTargetCache) {
  BranchPredictor Predictor;
  EXPECT_FALSE(Predictor.predictIndirect(0x6000, 0x100));
  EXPECT_TRUE(Predictor.predictIndirect(0x6000, 0x100));
  EXPECT_FALSE(Predictor.predictIndirect(0x6000, 0x200));
  EXPECT_TRUE(Predictor.predictIndirect(0x6000, 0x200));
}

TEST(PerfCounters, PicsWrapAt32Bits) {
  PerfCounters Counters;
  Counters.selectPicEvents(Event::Insts, Event::Cycles);
  Counters.count(Event::Insts, 0xffffffffULL);
  Counters.count(Event::Insts, 3);
  // PIC0 wrapped; the 64-bit total did not.
  EXPECT_EQ(Counters.readPics() & 0xffffffff, 2u);
  EXPECT_EQ(Counters.total(Event::Insts), 0x100000002ULL);
}

TEST(PerfCounters, WriteSetsBothPics) {
  PerfCounters Counters;
  Counters.selectPicEvents(Event::Insts, Event::Cycles);
  Counters.writePics((uint64_t(7) << 32) | 9);
  EXPECT_EQ(Counters.readPics(), (uint64_t(7) << 32) | 9);
  Counters.writePics(0);
  EXPECT_EQ(Counters.readPics(), 0u);
}

TEST(PerfCounters, ArmOverflowTrapProgramsTheWrap) {
  // Arming writes 2^32 - Period into the chosen PIC, so the trap fires
  // exactly when the 32-bit counter wraps — the UltraSPARC idiom.
  PerfCounters Counters;
  Counters.selectPicEvents(Event::Insts, Event::Cycles);
  Counters.armOverflowTrap(0, 1000);
  EXPECT_TRUE(Counters.overflowArmed());
  EXPECT_EQ(Counters.overflowPic(), 0u);
  EXPECT_EQ(Counters.overflowEvent(), Event::Insts);
  EXPECT_EQ(Counters.readPics() & 0xffffffff, 0x100000000ULL - 1000);
  EXPECT_FALSE(Counters.overflowPending());

  Counters.count(Event::Insts, 999);
  EXPECT_FALSE(Counters.overflowPending()) << "one event short of the wrap";
  Counters.count(Event::Insts, 1);
  EXPECT_TRUE(Counters.overflowPending()) << "the wrap crossed";

  Counters.disarmOverflowTrap();
  EXPECT_FALSE(Counters.overflowArmed());
  EXPECT_FALSE(Counters.overflowPending());
  Counters.count(Event::Insts, 1 << 20);
  EXPECT_FALSE(Counters.overflowPending()) << "disarmed traps never fire";
}

TEST(PerfCounters, ZeroPeriodArmsTheNextEventNotTheWrap) {
  // armOverflowTrap(pic, 0) used to write 2^32 - 0 = 0 into the PIC,
  // silently arming a trap 2^32 events away. A zero period clamps to 1:
  // the very next event fires the trap.
  PerfCounters Counters;
  Counters.selectPicEvents(Event::Insts, Event::Cycles);
  Counters.armOverflowTrap(0, 0);
  EXPECT_TRUE(Counters.overflowArmed());
  EXPECT_EQ(Counters.readPics() & 0xffffffff, 0xffffffffULL);
  EXPECT_FALSE(Counters.overflowPending());
  Counters.count(Event::Insts, 1);
  EXPECT_TRUE(Counters.overflowPending()) << "zero period must mean 1, not 2^32";
}

TEST(PerfCounters, OverflowTrapTracksUnarmedEventsNever) {
  // Events not routed to the armed PIC must not advance it toward the
  // trap.
  PerfCounters Counters;
  Counters.selectPicEvents(Event::Insts, Event::DCacheReadMiss);
  Counters.armOverflowTrap(1, 10);
  Counters.count(Event::Insts, 1 << 16);
  EXPECT_FALSE(Counters.overflowPending());
  Counters.count(Event::DCacheReadMiss, 10);
  EXPECT_TRUE(Counters.overflowPending());
}

TEST(PerfCounters, WritePicsAndResetRederiveTheTrapThreshold) {
  // wrpic and a totals reset both move the armed PIC out from under the
  // cached trap threshold; the threshold must follow the new distance to
  // the wrap rather than fire early or never.
  PerfCounters Counters;
  Counters.selectPicEvents(Event::Insts, Event::Cycles);
  Counters.armOverflowTrap(0, 1000);
  Counters.count(Event::Insts, 400);

  // Software rewinds the PIC: now 100 events from the wrap.
  Counters.writePics((Counters.readPics() & ~0xffffffffULL) |
                     (0x100000000ULL - 100));
  Counters.count(Event::Insts, 99);
  EXPECT_FALSE(Counters.overflowPending());
  Counters.count(Event::Insts, 1);
  EXPECT_TRUE(Counters.overflowPending());

  // Re-arm, then reset all totals: the armed distance survives the reset.
  Counters.armOverflowTrap(0, 50);
  Counters.resetTotals();
  Counters.count(Event::Insts, 49);
  EXPECT_FALSE(Counters.overflowPending());
  Counters.count(Event::Insts, 1);
  EXPECT_TRUE(Counters.overflowPending());
}

TEST(PerfCounters, UnselectedEventsDoNotTickPics) {
  PerfCounters Counters;
  Counters.selectPicEvents(Event::Insts, Event::Cycles);
  Counters.count(Event::FpStall, 10);
  EXPECT_EQ(Counters.readPics(), 0u);
  EXPECT_EQ(Counters.total(Event::FpStall), 10u);
}

TEST(MemoryImage, PeekPokeRoundTrip) {
  MemoryImage Mem;
  Mem.poke(0x1234, 8, 0x1122334455667788ULL);
  EXPECT_EQ(Mem.peek(0x1234, 8), 0x1122334455667788ULL);
  EXPECT_EQ(Mem.peek(0x1234, 4), 0x55667788u); // little endian
  EXPECT_EQ(Mem.peek(0x1238, 4), 0x11223344u);
  EXPECT_EQ(Mem.peek(0x9999, 8), 0u); // untouched memory reads zero
}

TEST(MemoryImage, CrossPageAccess) {
  MemoryImage Mem;
  uint64_t Addr = MemoryImage::PageBytes - 3;
  Mem.poke(Addr, 8, 0xa1b2c3d4e5f60718ULL);
  EXPECT_EQ(Mem.peek(Addr, 8), 0xa1b2c3d4e5f60718ULL);
  EXPECT_EQ(Mem.numPages(), 2u);
}

TEST(MemoryImage, PokeBytes) {
  MemoryImage Mem;
  uint8_t Data[] = {1, 2, 3, 4};
  Mem.pokeBytes(0x500, Data, 4);
  EXPECT_EQ(Mem.peek(0x500, 4), 0x04030201u);
}

TEST(Machine, InstAccountingAndICache) {
  Machine M;
  M.beginInst(0x1000);
  EXPECT_EQ(M.counters().total(Event::Insts), 1u);
  EXPECT_EQ(M.counters().total(Event::ICacheMiss), 1u);
  // Same line: no new I-miss.
  M.beginInst(0x1004);
  EXPECT_EQ(M.counters().total(Event::ICacheMiss), 1u);
  EXPECT_EQ(M.counters().total(Event::Insts), 2u);
}

TEST(Machine, LoadMissPenaltyAddsCycles) {
  Machine M;
  uint64_t Before = M.now();
  M.load(0x8000, 8); // cold miss
  uint64_t Penalty = M.cost().DCacheMissPenalty;
  EXPECT_EQ(M.now(), Before + Penalty);
  EXPECT_EQ(M.counters().total(Event::DCacheReadMiss), 1u);
  M.load(0x8000, 8); // hit: no cycles (loads pipeline)
  EXPECT_EQ(M.counters().total(Event::DCacheReadMiss), 1u);
}

TEST(Machine, StoreBufferStallsUnderBursts) {
  Machine M;
  // Repeated stores to one line with no intervening cycles eventually
  // exceed the buffer's drain rate.
  M.store(0x8000, 8, 1);
  for (int Round = 0; Round != 64; ++Round)
    M.store(0x8000, 8, Round);
  EXPECT_GT(M.counters().total(Event::StoreBufferStall), 0u);
}

TEST(Machine, TouchDataPerturbsTheCache) {
  Machine M;
  M.load(0x8000, 8); // warm the line
  EXPECT_EQ(M.counters().total(Event::DCacheReadMiss), 1u);
  // A charge-only touch to the conflicting address evicts it.
  M.touchData(0x8000 + 16 * 1024, 8, false);
  M.load(0x8000, 8);
  EXPECT_EQ(M.counters().total(Event::DCacheReadMiss), 3u);
}

TEST(Machine, MispredictStallsAccrue) {
  Machine M;
  uint64_t Before = M.counters().total(Event::MispredictStall);
  for (int Round = 0; Round != 10; ++Round)
    M.condBranch(0x1000, Round % 2 == 0);
  EXPECT_GT(M.counters().total(Event::MispredictStall), Before);
}
