//===- tests/VmEdgeCaseTest.cpp - interpreter corner cases ---------------------===//

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "vm/Vm.h"
#include "workloads/Examples.h"

#include <gtest/gtest.h>

using namespace pp;
using namespace pp::ir;

namespace {

vm::RunResult runModule(Module &M, uint64_t MaxInsts = 1 << 24) {
  hw::Machine Machine;
  vm::Vm VM(M, Machine);
  VM.setMaxInsts(MaxInsts);
  return VM.run();
}

} // namespace

TEST(VmEdge, SubWordAccessesZeroExtendAndTruncate) {
  Module M;
  M.addGlobal("buf", 64);
  uint64_t Buf = M.global(0).Addr;
  Function *Main = M.addFunction("main", 0);
  IRBuilder IRB(Main, Main->addBlock("entry"));
  Reg Value = IRB.movImm(0x1234567890abcdefLL);
  IRB.storeAbs(static_cast<int64_t>(Buf), Value, 2); // stores 0xcdef
  Reg Wide = IRB.loadAbs(static_cast<int64_t>(Buf), 8);
  Reg Narrow = IRB.loadAbs(static_cast<int64_t>(Buf), 1); // 0xef
  Reg Sum = IRB.add(Wide, Narrow);
  IRB.ret(Sum);
  M.setMain(Main);
  vm::RunResult Result = runModule(M);
  ASSERT_TRUE(Result.Ok);
  EXPECT_EQ(Result.ExitValue, 0xcdefu + 0xefu);
}

TEST(VmEdge, NegativeLoadOffsets) {
  Module M;
  M.addGlobal("buf", 64);
  uint64_t Buf = M.global(0).Addr;
  Function *Main = M.addFunction("main", 0);
  IRBuilder IRB(Main, Main->addBlock("entry"));
  Reg V = IRB.movImm(99);
  IRB.storeAbs(static_cast<int64_t>(Buf) + 8, V);
  Reg End = IRB.movImm(static_cast<int64_t>(Buf) + 16);
  Reg Loaded = IRB.load(End, -8);
  IRB.ret(Loaded);
  M.setMain(Main);
  vm::RunResult Result = runModule(M);
  ASSERT_TRUE(Result.Ok);
  EXPECT_EQ(Result.ExitValue, 99u);
}

TEST(VmEdge, SwitchWithNoCasesAlwaysDefaults) {
  Module M;
  Function *Main = M.addFunction("main", 0);
  BasicBlock *Entry = Main->addBlock("entry");
  BasicBlock *Default = Main->addBlock("default");
  IRBuilder IRB(Main, Entry);
  Reg Sel = IRB.movImm(7);
  IRB.switchOn(Sel, Default, {});
  IRB.setBlock(Default);
  IRB.retImm(42);
  M.setMain(Main);
  vm::RunResult Result = runModule(M);
  ASSERT_TRUE(Result.Ok);
  EXPECT_EQ(Result.ExitValue, 42u);
}

TEST(VmEdge, ShiftCountsAreMasked) {
  Module M;
  Function *Main = M.addFunction("main", 0);
  IRBuilder IRB(Main, Main->addBlock("entry"));
  Reg One = IRB.movImm(1);
  Reg ShiftBy65 = IRB.shlImm(One, 65); // masked to 1 -> 2
  Reg Big = IRB.movImm(0x100);
  Reg ShiftBy64 = IRB.shrImm(Big, 64); // masked to 0 -> 0x100
  Reg Sum = IRB.add(ShiftBy65, ShiftBy64);
  IRB.ret(Sum);
  M.setMain(Main);
  vm::RunResult Result = runModule(M);
  ASSERT_TRUE(Result.Ok);
  EXPECT_EQ(Result.ExitValue, 0x102u);
}

TEST(VmEdge, FpNanComparesFalse) {
  Module M;
  Function *Main = M.addFunction("main", 0);
  IRBuilder IRB(Main, Main->addBlock("entry"));
  Reg Zero = IRB.movFpImm(0.0);
  Reg Nan = IRB.fdiv(Zero, Zero);
  Reg EqSelf = IRB.fcmpEq(Nan, Nan);     // false
  Reg LtZero = IRB.fcmpLt(Nan, Zero);    // false
  Reg Sum = IRB.add(EqSelf, LtZero);
  IRB.ret(Sum);
  M.setMain(Main);
  vm::RunResult Result = runModule(M);
  ASSERT_TRUE(Result.Ok);
  EXPECT_EQ(Result.ExitValue, 0u);
}

TEST(VmEdge, IntMinDivMinusOneIsDefined) {
  Module M;
  Function *Main = M.addFunction("main", 0);
  IRBuilder IRB(Main, Main->addBlock("entry"));
  Reg Min = IRB.movImm(std::numeric_limits<int64_t>::min());
  Reg Quot = IRB.divImm(Min, -1); // defined as INT64_MIN (wraps)
  Reg Rem = IRB.remImm(Min, -1);  // defined as 0
  Reg Check = IRB.cmpEq(Quot, Min);
  Reg Sum = IRB.add(Check, Rem);
  IRB.ret(Sum);
  M.setMain(Main);
  vm::RunResult Result = runModule(M);
  ASSERT_TRUE(Result.Ok);
  EXPECT_EQ(Result.ExitValue, 1u);
}

TEST(VmEdge, SetjmpReusedAcrossIterations) {
  // setjmp in a loop; each iteration longjmps back once: the buffer must
  // stay valid as long as the frame lives.
  Module M;
  Function *Thrower = M.addFunction("thrower", 1);
  {
    IRBuilder IRB(Thrower, Thrower->addBlock("entry"));
    Reg Bumped = IRB.addImm(0, 1);
    IRB.longjmp(9, Bumped);
  }
  Function *Main = M.addFunction("main", 0);
  {
    BasicBlock *Entry = Main->addBlock("entry");
    BasicBlock *Loop = Main->addBlock("loop");
    BasicBlock *Again = Main->addBlock("again");
    BasicBlock *Done = Main->addBlock("done");
    IRBuilder IRB(Main, Entry);
    Reg Count = IRB.movImm(0);
    IRB.br(Loop);
    IRB.setBlock(Loop);
    Reg Jumped = IRB.setjmp(9);
    Reg First = IRB.cmpEqImm(Jumped, 0);
    IRB.condBr(First, Again, Done);
    IRB.setBlock(Again);
    Reg NewCount = IRB.addImm(Count, 1);
    IRB.movRegInto(Count, NewCount);
    IRB.call(Thrower, {Count});
    IRB.retImm(0); // unreachable
    IRB.setBlock(Done);
    // Jumped = Count + 1 delivered by the longjmp.
    IRB.ret(Jumped);
  }
  M.setMain(Main);
  verifyModuleOrDie(M);
  vm::RunResult Result = runModule(M);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_EQ(Result.ExitValue, 2u); // Count became 1; thrower returned 1+1
}

TEST(VmEdge, LongjmpFromSignalHandlerResetsSignalState) {
  // A handler that longjmps out: the VM must clear the in-signal flag so
  // later signals still deliver.
  auto M = std::make_unique<Module>();
  Function *Handler = M->addFunction("handler", 0);
  {
    BasicBlock *Entry = Handler->addBlock("entry");
    BasicBlock *Jump = Handler->addBlock("jump");
    BasicBlock *Normal = Handler->addBlock("normal");
    IRBuilder IRB(Handler, Entry);
    uint64_t FlagAddr = layout::GlobalBase; // the "armed" global below
    Reg Armed = IRB.loadAbs(static_cast<int64_t>(FlagAddr));
    IRB.condBr(Armed, Jump, Normal);
    IRB.setBlock(Jump);
    Reg V = IRB.movImm(123);
    IRB.longjmp(4, V);
    IRB.setBlock(Normal);
    IRB.retImm(0);
  }
  Function *Main = M->addFunction("main", 0);
  {
    BasicBlock *Entry = Main->addBlock("entry");
    BasicBlock *First = Main->addBlock("first");
    BasicBlock *Spin = Main->addBlock("spin");
    BasicBlock *After = Main->addBlock("after");
    BasicBlock *Done = Main->addBlock("done");
    IRBuilder IRB(Main, Entry);
    uint64_t FlagAddr = layout::GlobalBase;
    Reg One = IRB.movImm(1);
    IRB.storeAbs(static_cast<int64_t>(FlagAddr), One); // arm the handler
    Reg Jumped = IRB.setjmp(4);
    Reg IsZero = IRB.cmpEqImm(Jumped, 0);
    IRB.condBr(IsZero, First, After);
    IRB.setBlock(First);
    // Spin until a signal fires and the handler longjmps here.
    IRB.br(Spin);
    IRB.setBlock(Spin);
    IRB.br(Spin);
    IRB.setBlock(After);
    // Disarm; now count a few more deliveries by spinning a bounded loop.
    Reg Zero = IRB.movImm(0);
    IRB.storeAbs(static_cast<int64_t>(FlagAddr), Zero);
    Reg I = IRB.movImm(0);
    BasicBlock *Head = Main->addBlock("head");
    BasicBlock *Body = Main->addBlock("body");
    IRB.br(Head);
    IRB.setBlock(Head);
    Reg More = IRB.cmpLtImm(I, 4000);
    IRB.condBr(More, Body, Done);
    IRB.setBlock(Body);
    Reg Next = IRB.addImm(I, 1);
    IRB.movRegInto(I, Next);
    IRB.br(Head);
    IRB.setBlock(Done);
    IRB.ret(Jumped);
  }
  auto *MainPtr = Main;
  M->addGlobal("armed", 8); // note: address == layout::GlobalBase
  M->setMain(MainPtr);

  hw::Machine Machine;
  vm::Vm VM(*M, Machine);
  VM.setSignal(Handler, 300);
  VM.setMaxInsts(1 << 22);
  vm::RunResult Result = VM.run();
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_EQ(Result.ExitValue, 123u);
  // Deliveries continued after the longjmp escape.
  EXPECT_GT(VM.signalsDelivered(), 5u);
}

TEST(VmEdge, GlobalInitializersBeyondOnePage) {
  Module M;
  std::vector<uint8_t> Init(20000);
  for (size_t Index = 0; Index != Init.size(); ++Index)
    Init[Index] = static_cast<uint8_t>(Index * 7);
  M.addGlobal("big", Init.size(), std::move(Init));
  uint64_t Base = M.global(0).Addr;

  Function *Main = M.addFunction("main", 0);
  IRBuilder IRB(Main, Main->addBlock("entry"));
  Reg A = IRB.loadAbs(static_cast<int64_t>(Base) + 9999, 1);
  Reg B = IRB.loadAbs(static_cast<int64_t>(Base) + 19999, 1);
  Reg Sum = IRB.add(A, B);
  IRB.ret(Sum);
  M.setMain(Main);
  vm::RunResult Result = runModule(M);
  ASSERT_TRUE(Result.Ok);
  EXPECT_EQ(Result.ExitValue,
            ((9999u * 7) & 0xff) + ((19999u * 7) & 0xff));
}

TEST(VmEdge, DeepCallChainOverflowsGracefully) {
  Module M;
  Function *Recurse = M.addFunction("recurse", 1);
  {
    IRBuilder IRB(Recurse, Recurse->addBlock("entry"));
    Reg Next = IRB.addImm(0, 1);
    Reg Result = IRB.call(Recurse, {Next}); // unbounded recursion
    IRB.ret(Result);
  }
  Function *Main = M.addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Reg Zero = IRB.movImm(0);
    IRB.call(Recurse, {Zero});
    IRB.retImm(0);
  }
  M.setMain(Main);
  vm::RunResult Result = runModule(M, 1 << 26);
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("stack overflow"), std::string::npos);
}
