//===- tests/CollectdTest.cpp - fleet ingest service -----------------------------===//
//
// The collector's contract: every upload gets a typed verdict; a corrupt
// or cross-acquisition upload rejects exactly that artifact and provably
// leaves the window's fold byte-identical to a service that never saw
// it; window folds are bit-identical under any arrival order, thread
// count, or compaction fanout; quotas and queue backpressure bound the
// fleet; persisted windows are ordinary .ppa artifacts.
//
//===----------------------------------------------------------------------===//

#include "cct/CallingContextTree.h"
#include "collectd/Ingest.h"
#include "collectd/MergeTree.h"
#include "driver/Driver.h"
#include "driver/FaultInjector.h"
#include "profdb/Merge.h"
#include "profdb/Store.h"
#include "workloads/Spec.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

using namespace pp;
using namespace pp::collectd;

namespace {

std::string makeTempDir() {
  char Template[] = "/tmp/pp-collectd-test-XXXXXX";
  const char *Dir = mkdtemp(Template);
  EXPECT_NE(Dir, nullptr);
  return Dir ? Dir : "";
}

void removeDir(const std::string &Dir) {
  std::string Cmd = "rm -rf " + Dir;
  (void)std::system(Cmd.c_str());
}

struct InjectorGuard {
  ~InjectorGuard() { driver::FaultInjector::instance().configure({}); }
};

/// A decoded artifact for 130.li (built once; cloned per upload via its
/// encoded bytes). \p Acquisition tags the schema only — the measurement
/// is the same exact run either way, which is exactly what the
/// cross-acquisition gate must catch.
const std::vector<uint8_t> &encodedArtifact(const std::string &Fingerprint,
                                            const std::string &Acquisition) {
  static std::vector<uint8_t> *Cache = nullptr;
  static driver::OutcomePtr Run;
  static std::unique_ptr<ir::Module> Module;
  static prof::ProfileConfig Config;
  if (!Run) {
    driver::Driver D(/*DiskDir=*/"", /*Threads=*/0);
    driver::RunPlan Plan;
    Plan.Workload = "130.li";
    Plan.Options.Config.M = prof::Mode::ContextFlowHw;
    Run = D.run(Plan);
    EXPECT_TRUE(Run && Run->Result.Ok);
    Module = workloads::buildWorkload("130.li", 1);
    Config = Plan.Options.Config;
  }
  profdb::Artifact A = profdb::artifactFromOutcome(
      *Run, *Module, Fingerprint, "130.li", 1, Config, Acquisition);
  static thread_local std::vector<uint8_t> Bytes;
  Bytes = profdb::encodeArtifact(A);
  (void)Cache;
  return Bytes;
}

Upload makeUpload(const std::string &Tenant, uint64_t Window,
                  unsigned Serial, const std::string &Acq = "exact") {
  return Upload{Tenant, Window,
                encodedArtifact("fleet;u" + std::to_string(Serial), Acq)};
}

IngestConfig manualConfig() {
  IngestConfig C;
  C.Threads = 0; // manual pump: fully deterministic
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// Rejection isolation — the acceptance criterion
//===----------------------------------------------------------------------===//

TEST(CollectdIngestTest, CorruptUploadRejectsOnlyThatArtifact) {
  IngestService Clean(manualConfig());
  IngestService Faulty(manualConfig());

  for (unsigned Serial = 0; Serial != 5; ++Serial) {
    Upload U = makeUpload("t0", /*Window=*/7, Serial);
    EXPECT_TRUE(Clean.ingestNow(U).Accepted);
    EXPECT_TRUE(Faulty.ingestNow(std::move(U)).Accepted);
  }

  // One more upload, corrupted in flight, reaches only the faulty
  // service. The CRC gate turns it into a typed rejection.
  Upload Bad = makeUpload("t0", 7, 99);
  Bad.Bytes[Bad.Bytes.size() / 2] ^= 0x10;
  UploadResult Verdict = Faulty.ingestNow(std::move(Bad));
  EXPECT_FALSE(Verdict.Accepted);
  EXPECT_EQ(Verdict.Reason, RejectReason::Corrupt);
  EXPECT_EQ(Verdict.Decode, profdb::DecodeStatus::BadChecksum);

  IngestStats Stats = Faulty.stats();
  EXPECT_EQ(Stats.Accepted, 5u);
  EXPECT_EQ(Stats.Rejected, 1u);
  EXPECT_EQ(Stats.RejectedBy[static_cast<size_t>(RejectReason::Corrupt)],
            1u);

  // The fold of the window that saw the corrupt upload is byte-identical
  // to the fold of the window that never did.
  std::string Error;
  std::vector<std::vector<uint8_t>> FaultyBytes = Faulty.windowBytes(7, Error);
  ASSERT_TRUE(Error.empty()) << Error;
  std::vector<std::vector<uint8_t>> CleanBytes = Clean.windowBytes(7, Error);
  ASSERT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(FaultyBytes, CleanBytes);
}

TEST(CollectdIngestTest, CrossAcquisitionUploadIsRejectedTyped) {
  IngestService Clean(manualConfig());
  IngestService Faulty(manualConfig());

  for (unsigned Serial = 0; Serial != 3; ++Serial) {
    Upload U = makeUpload("t0", 1, Serial);
    EXPECT_TRUE(Clean.ingestNow(U).Accepted);
    EXPECT_TRUE(Faulty.ingestNow(std::move(U)).Accepted);
  }

  // A structurally valid artifact whose schema says its counts were
  // *sampled*: folding it into exact counts would quietly bias the
  // window, so it is refused before any merge.
  UploadResult Verdict =
      Faulty.ingestNow(makeUpload("t0", 1, 50, "overflow"));
  EXPECT_FALSE(Verdict.Accepted);
  EXPECT_EQ(Verdict.Reason, RejectReason::CrossAcquisition);
  EXPECT_EQ(Verdict.Decode, profdb::DecodeStatus::Ok);

  std::string Error;
  EXPECT_EQ(Faulty.windowBytes(1, Error), Clean.windowBytes(1, Error));
  EXPECT_TRUE(Error.empty()) << Error;
}

TEST(CollectdIngestTest, InjectedReadCorruptionRejectsUploadNotWindow) {
  InjectorGuard Guard;
  IngestService Service(manualConfig());
  ASSERT_TRUE(Service.ingestNow(makeUpload("t0", 0, 0)).Accepted);

  driver::FaultInjector::Config C;
  C.Seed = 9;
  C.FlipEveryNthRead = 1;
  driver::FaultInjector::instance().configure(C);
  UploadResult Verdict = Service.ingestNow(makeUpload("t0", 0, 1));
  EXPECT_FALSE(Verdict.Accepted);
  EXPECT_EQ(Verdict.Reason, RejectReason::Corrupt);

  driver::FaultInjector::instance().configure({});
  EXPECT_TRUE(Service.ingestNow(makeUpload("t0", 0, 2)).Accepted);
  EXPECT_EQ(Service.stats().Accepted, 2u);
}

//===----------------------------------------------------------------------===//
// Determinism of the window folds
//===----------------------------------------------------------------------===//

TEST(CollectdIngestTest, ArrivalOrderThreadsAndFanoutDoNotChangeBytes) {
  constexpr unsigned NumUploads = 9;
  std::vector<Upload> Uploads;
  for (unsigned Serial = 0; Serial != NumUploads; ++Serial)
    Uploads.push_back(makeUpload("t0", 3, Serial));

  auto FoldBytes = [&](std::vector<Upload> Ups, IngestConfig C) {
    IngestService Service(C);
    for (Upload &U : Ups)
      Service.submit(std::move(U));
    Service.drain();
    std::string Error;
    auto Bytes = Service.windowBytes(3, Error);
    EXPECT_TRUE(Error.empty()) << Error;
    EXPECT_EQ(Service.stats().Accepted, NumUploads);
    return Bytes;
  };

  IngestConfig Manual = manualConfig();
  std::vector<std::vector<uint8_t>> Reference = FoldBytes(Uploads, Manual);
  ASSERT_FALSE(Reference.empty());

  // Reversed arrivals.
  std::vector<Upload> Reversed(Uploads.rbegin(), Uploads.rend());
  EXPECT_EQ(FoldBytes(std::move(Reversed), Manual), Reference);

  // A different compaction shape (fanout 2 instead of 8).
  IngestConfig Shallow = manualConfig();
  Shallow.Fanout = 2;
  EXPECT_EQ(FoldBytes(Uploads, Shallow), Reference);

  // A racing thread pool with parallel merges: arrival interleaving is
  // whatever the scheduler makes it, the bytes must not care.
  IngestConfig Threaded = manualConfig();
  Threaded.Threads = 4;
  Threaded.MergeThreads = 2;
  Threaded.Fanout = 3;
  EXPECT_EQ(FoldBytes(std::move(Uploads), Threaded), Reference);
}

TEST(CollectdMergeTreeTest, CompactionsBoundResidencyAndMatchFlatMerge) {
  constexpr unsigned NumLeaves = 8;
  MergeTree Tree(/*Fanout=*/2, /*MergeThreads=*/1);
  std::vector<profdb::Artifact> Flat;
  std::string Error;
  for (unsigned Serial = 0; Serial != NumLeaves; ++Serial) {
    profdb::Artifact A;
    ASSERT_EQ(profdb::decodeArtifact(
                  encodedArtifact("fleet;u" + std::to_string(Serial), "exact"),
                  A),
              profdb::DecodeStatus::Ok);
    Flat.push_back(profdb::cloneArtifact(A));
    ASSERT_TRUE(Tree.add(std::move(A), Error)) << Error;
  }
  // Fanout 2 over 8 leaves is a binary counter: 7 carries, and the tree
  // holds exactly one resident artifact at the top.
  EXPECT_EQ(Tree.leafCount(), NumLeaves);
  EXPECT_EQ(Tree.compactions(), 7u);
  EXPECT_EQ(Tree.residentArtifacts(), 1u);

  const profdb::Artifact *Folded = Tree.folded(Error);
  ASSERT_NE(Folded, nullptr) << Error;
  profdb::Artifact FlatMerged;
  ASSERT_TRUE(profdb::mergeAll(std::move(Flat), FlatMerged, Error, 1))
      << Error;
  EXPECT_EQ(profdb::encodeArtifact(*Folded),
            profdb::encodeArtifact(FlatMerged));
}

//===----------------------------------------------------------------------===//
// Merge-incompatible uploads — rejected at admission, window intact
//===----------------------------------------------------------------------===//

namespace {

profdb::Artifact decodedArtifact(unsigned Serial) {
  profdb::Artifact A;
  EXPECT_EQ(profdb::decodeArtifact(
                encodedArtifact("fleet;u" + std::to_string(Serial), "exact"),
                A),
            profdb::DecodeStatus::Ok);
  return A;
}

/// An artifact that decodes cleanly and lands in the same schema group as
/// the good uploads — the group key sees only CCT *presence*, not its
/// geometry — but cannot merge with them: its CCT hash threshold differs,
/// which mergeArtifacts rejects as a CCT geometry mismatch.
std::vector<uint8_t> incompatibleBytes() {
  profdb::Artifact A = decodedArtifact(97);
  EXPECT_NE(A.Tree, nullptr);
  cct::TreeImage Image = A.Tree->image();
  Image.HashThreshold += 1;
  A.Tree = cct::CallingContextTree::fromImage(Image);
  EXPECT_NE(A.Tree, nullptr);
  return profdb::encodeArtifact(A);
}

} // namespace

TEST(CollectdMergeTreeTest, IncompatibleAddRejectsAndLeavesTreeUntouched) {
  MergeTree Tree(/*Fanout=*/2, /*MergeThreads=*/1);
  std::string Error;
  for (unsigned Serial = 0; Serial != 3; ++Serial)
    ASSERT_TRUE(Tree.add(decodedArtifact(Serial), Error)) << Error;

  const profdb::Artifact *Before = Tree.folded(Error);
  ASSERT_NE(Before, nullptr) << Error;
  std::vector<uint8_t> BeforeBytes = profdb::encodeArtifact(*Before);
  uint64_t BeforeCompactions = Tree.compactions();
  size_t BeforeResident = Tree.residentArtifacts();

  // With fanout 2 and three leaves, this add would fill level 0 and
  // cascade; the used-to-be bug let a failing compaction move the level's
  // accepted artifacts out and lose them. The trial merge must reject the
  // incompatible artifact before any level is touched.
  profdb::Artifact Bad;
  ASSERT_EQ(profdb::decodeArtifact(incompatibleBytes(), Bad),
            profdb::DecodeStatus::Ok);
  EXPECT_FALSE(Tree.add(std::move(Bad), Error));
  EXPECT_NE(Error.find("CCT geometry mismatch"), std::string::npos) << Error;

  // Nothing moved: counters, residency, and the folded bytes are exactly
  // as if the artifact was never offered.
  EXPECT_EQ(Tree.leafCount(), 3u);
  EXPECT_EQ(Tree.compactions(), BeforeCompactions);
  EXPECT_EQ(Tree.residentArtifacts(), BeforeResident);
  const profdb::Artifact *After = Tree.folded(Error);
  ASSERT_NE(After, nullptr) << Error;
  EXPECT_EQ(profdb::encodeArtifact(*After), BeforeBytes);

  // And the tree still accepts compatible leaves afterwards.
  ASSERT_TRUE(Tree.add(decodedArtifact(3), Error)) << Error;
  EXPECT_EQ(Tree.leafCount(), 4u);
}

TEST(CollectdIngestTest, MergeIncompatibleUploadRejectsAtAdmission) {
  IngestService Clean(manualConfig());
  IngestService Faulty(manualConfig());

  // Level 0 is far from full (default fanout 8): the old failure mode
  // accepted the incompatible upload here and surfaced the merge failure
  // on a later innocent upload or query.
  for (unsigned Serial = 0; Serial != 2; ++Serial) {
    Upload U = makeUpload("t0", 5, Serial);
    EXPECT_TRUE(Clean.ingestNow(U).Accepted);
    EXPECT_TRUE(Faulty.ingestNow(std::move(U)).Accepted);
  }

  UploadResult Verdict =
      Faulty.ingestNow(Upload{"t0", 5, incompatibleBytes()});
  EXPECT_FALSE(Verdict.Accepted);
  EXPECT_EQ(Verdict.Reason, RejectReason::MergeFailed);
  EXPECT_EQ(Verdict.Decode, profdb::DecodeStatus::Ok);

  // Later uploads into the window are innocent and stay accepted.
  Upload U = makeUpload("t0", 5, 2);
  EXPECT_TRUE(Clean.ingestNow(U).Accepted);
  EXPECT_TRUE(Faulty.ingestNow(std::move(U)).Accepted);

  IngestStats Stats = Faulty.stats();
  EXPECT_EQ(Stats.Accepted, 3u);
  EXPECT_EQ(
      Stats.RejectedBy[static_cast<size_t>(RejectReason::MergeFailed)], 1u);

  // The window's fold is byte-identical to a service that never saw the
  // incompatible upload, and queries keep serving.
  std::string Error;
  std::vector<std::vector<uint8_t>> FaultyBytes =
      Faulty.windowBytes(5, Error);
  ASSERT_TRUE(Error.empty()) << Error;
  std::vector<std::vector<uint8_t>> CleanBytes = Clean.windowBytes(5, Error);
  ASSERT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(FaultyBytes, CleanBytes);
  EXPECT_NE(Faulty.queryCctStats(5, Error).find("runs=3"),
            std::string::npos);
  EXPECT_TRUE(Error.empty()) << Error;
}

//===----------------------------------------------------------------------===//
// Quotas and backpressure
//===----------------------------------------------------------------------===//

TEST(CollectdIngestTest, QuotaBoundsEachTenantPerWindow) {
  IngestConfig C = manualConfig();
  C.TenantWindowQuota = 2;
  IngestService Service(C);

  unsigned Serial = 0;
  for (unsigned I = 0; I != 4; ++I) {
    UploadResult R = Service.ingestNow(makeUpload("loud", 0, Serial++));
    EXPECT_EQ(R.Accepted, I < 2);
    if (!R.Accepted)
      EXPECT_EQ(R.Reason, RejectReason::QuotaExceeded);
  }
  // Another tenant, and the same tenant in another window, are untouched.
  EXPECT_TRUE(Service.ingestNow(makeUpload("quiet", 0, Serial++)).Accepted);
  EXPECT_TRUE(Service.ingestNow(makeUpload("loud", 1, Serial++)).Accepted);

  IngestStats Stats = Service.stats();
  EXPECT_EQ(Stats.Accepted, 4u);
  EXPECT_EQ(
      Stats.RejectedBy[static_cast<size_t>(RejectReason::QuotaExceeded)],
      2u);
}

TEST(CollectdIngestTest, TrySubmitBackpressuresAtQueueCapacity) {
  IngestConfig C = manualConfig();
  C.QueueCapacity = 2;
  IngestService Service(C);

  EXPECT_TRUE(Service.trySubmit(makeUpload("t0", 0, 0)));
  EXPECT_TRUE(Service.trySubmit(makeUpload("t0", 0, 1)));
  // Queue full and no workers: the caller gets backpressure, not a hang.
  EXPECT_FALSE(Service.trySubmit(makeUpload("t0", 0, 2)));
  EXPECT_EQ(Service.stats().Backpressured, 1u);

  Service.drain();
  EXPECT_EQ(Service.stats().Accepted, 2u);
  EXPECT_TRUE(Service.trySubmit(makeUpload("t0", 0, 2)));
  Service.drain();
  EXPECT_EQ(Service.stats().Accepted, 3u);
}

TEST(CollectdIngestTest, ManualModeSubmitPastCapacityPumpsInline) {
  // submit() in manual-pump mode used to block on QueueNotFull with no
  // consumer to ever wake it: any caller submitting more than
  // QueueCapacity uploads before drain() deadlocked (the ingest bench's
  // serial reference fold hit exactly this). A full queue must instead
  // pump inline on the calling thread.
  IngestConfig C = manualConfig();
  C.QueueCapacity = 2;
  IngestService Service(C);

  for (unsigned Serial = 0; Serial != 7; ++Serial)
    Service.submit(makeUpload("t0", 0, Serial));
  // Capacity still bounds the backlog: everything past it was ingested
  // to make room, so at most QueueCapacity uploads remain queued.
  EXPECT_GE(Service.stats().Accepted, 5u);
  Service.drain();
  EXPECT_EQ(Service.stats().Submitted, 7u);
  EXPECT_EQ(Service.stats().Accepted, 7u);
  EXPECT_EQ(Service.stats().Rejected, 0u);
}

//===----------------------------------------------------------------------===//
// Queries and persistence
//===----------------------------------------------------------------------===//

TEST(CollectdIngestTest, QueriesRenderAndUnknownWindowIsTyped) {
  IngestService Service(manualConfig());
  for (unsigned Serial = 0; Serial != 3; ++Serial)
    ASSERT_TRUE(Service.ingestNow(makeUpload("t0", 4, Serial)).Accepted);

  std::string Error;
  std::string Stats = Service.queryCctStats(4, Error);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_NE(Stats.find("runs=3"), std::string::npos);
  EXPECT_NE(Stats.find("Max depth"), std::string::npos);

  std::string Procs = Service.queryTopProcs(4, 5, Error);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_NE(Procs.find("130.li"), std::string::npos);

  EXPECT_EQ(Service.queryTopPaths(99, 5, Error), "");
  EXPECT_NE(Error.find("no such window"), std::string::npos);
  EXPECT_EQ(Service.stats().Queries, 3u);
}

TEST(CollectdIngestTest, PersistWritesOrdinaryArtifacts) {
  std::string Dir = makeTempDir();
  ASSERT_FALSE(Dir.empty());

  IngestConfig C = manualConfig();
  // Parents of the store root don't exist yet: persist must create the
  // whole chain (the recursive-mkdir fix this PR ships).
  C.StoreDir = Dir + "/fleet/profiles";
  IngestService Service(C);
  for (unsigned Serial = 0; Serial != 4; ++Serial)
    ASSERT_TRUE(Service.ingestNow(makeUpload("t0", 12, Serial)).Accepted);

  std::string Error;
  ASSERT_TRUE(Service.persist(Error)) << Error;

  std::vector<std::string> Files =
      profdb::listArtifactFiles(C.StoreDir + "/w12");
  ASSERT_EQ(Files.size(), 1u);
  profdb::Artifact Back;
  ASSERT_EQ(profdb::readArtifactFile(Files[0], Back),
            profdb::DecodeStatus::Ok);
  EXPECT_EQ(Back.RunCount, 4u);
  EXPECT_EQ(Back.Workload, "130.li");

  // The persisted bytes are exactly the window fold the queries serve.
  std::vector<std::vector<uint8_t>> Window = Service.windowBytes(12, Error);
  ASSERT_EQ(Window.size(), 1u);
  EXPECT_EQ(profdb::encodeArtifact(Back), Window[0]);

  removeDir(Dir);
}

//===----------------------------------------------------------------------===//
// Token-bucket rate limiting
//===----------------------------------------------------------------------===//

TEST(CollectdRateTest, BucketRefusesBeyondBurstAndRefillsOnTheClock) {
  // A manual clock makes the bucket exact: burst-many accepts, then
  // typed refusals until the injected time advances.
  uint64_t NowNs = 0;
  IngestConfig C = manualConfig();
  C.TenantRatePerSec = 2;  // one token every half second
  C.TenantRateBurst = 3;
  C.RateClockNs = [&NowNs] { return NowNs; };
  IngestService Service(C);

  unsigned Accepted = 0, Limited = 0;
  for (unsigned Serial = 0; Serial != 6; ++Serial) {
    UploadResult R = Service.ingestNow(makeUpload("t0", 0, Serial));
    if (R.Accepted)
      ++Accepted;
    else {
      EXPECT_EQ(R.Reason, RejectReason::RateLimited);
      EXPECT_EQ(R.Decode, profdb::DecodeStatus::Ok);
      ++Limited;
    }
  }
  EXPECT_EQ(Accepted, 3u);
  EXPECT_EQ(Limited, 3u);

  // Half a second buys exactly one more token.
  NowNs += 500000000;
  EXPECT_TRUE(Service.ingestNow(makeUpload("t0", 0, 10)).Accepted);
  UploadResult R = Service.ingestNow(makeUpload("t0", 0, 11));
  EXPECT_FALSE(R.Accepted);
  EXPECT_EQ(R.Reason, RejectReason::RateLimited);

  // The refusal accounting is per reason and never charges the quota or
  // decode counters: a rate-limited upload was refused unseen.
  IngestStats Stats = Service.stats();
  EXPECT_EQ(Stats.Submitted, 8u);
  EXPECT_EQ(Stats.Accepted, 4u);
  EXPECT_EQ(Stats.RejectedBy[static_cast<size_t>(RejectReason::RateLimited)],
            4u);
  EXPECT_EQ(Stats.RejectedBy[static_cast<size_t>(RejectReason::Corrupt)], 0u);
}

TEST(CollectdRateTest, BucketsArePerTenant) {
  uint64_t NowNs = 0;
  IngestConfig C = manualConfig();
  C.TenantRatePerSec = 1;
  C.TenantRateBurst = 1;
  C.RateClockNs = [&NowNs] { return NowNs; };
  IngestService Service(C);

  // Each tenant gets its own full bucket; one tenant draining hers does
  // not starve another's first upload.
  EXPECT_TRUE(Service.ingestNow(makeUpload("t0", 0, 0)).Accepted);
  EXPECT_FALSE(Service.ingestNow(makeUpload("t0", 0, 1)).Accepted);
  EXPECT_TRUE(Service.ingestNow(makeUpload("t1", 0, 2)).Accepted);
  EXPECT_FALSE(Service.ingestNow(makeUpload("t1", 0, 3)).Accepted);
}

//===----------------------------------------------------------------------===//
// Window retention
//===----------------------------------------------------------------------===//

TEST(CollectdRetentionTest, OldWindowsArePersistedThenDroppedAndClosed) {
  std::string Dir = makeTempDir();
  ASSERT_FALSE(Dir.empty());

  IngestConfig C = manualConfig();
  C.StoreDir = Dir;
  C.RetainWindows = 2;
  IngestService Service(C);

  // Fill windows 1..3: crossing the cap must persist-and-drop window 1.
  for (uint64_t Window = 1; Window != 4; ++Window)
    for (unsigned Serial = 0; Serial != 2; ++Serial)
      ASSERT_TRUE(Service
                      .ingestNow(makeUpload("t0", Window,
                                            unsigned(Window) * 10 + Serial))
                      .Accepted);

  IngestStats Stats = Service.stats();
  EXPECT_EQ(Stats.WindowsExpired, 1u);
  EXPECT_EQ(Stats.RetentionHeld, 0u);
  std::vector<uint64_t> Resident = Service.windows();
  EXPECT_EQ(Resident, (std::vector<uint64_t>{2, 3}));

  // The expired window's fold landed on disk before it left memory.
  std::vector<std::string> Files = profdb::listArtifactFiles(Dir + "/w1");
  ASSERT_EQ(Files.size(), 1u);
  profdb::Artifact Back;
  ASSERT_EQ(profdb::readArtifactFile(Files[0], Back),
            profdb::DecodeStatus::Ok);
  EXPECT_EQ(Back.RunCount, 2u);

  // A late upload aimed below the watermark is refused typed — folding
  // into a fresh resident window 1 would disagree with the stored bytes.
  UploadResult Late = Service.ingestNow(makeUpload("t0", 1, 99));
  EXPECT_FALSE(Late.Accepted);
  EXPECT_EQ(Late.Reason, RejectReason::WindowExpired);
  EXPECT_EQ(
      Service.stats().RejectedBy[static_cast<size_t>(
          RejectReason::WindowExpired)],
      1u);

  removeDir(Dir);
}

TEST(CollectdRetentionTest, UnpersistableWindowsAreNeverDropped) {
  // No StoreDir: retention wants to shed the oldest window but has
  // nowhere to put it. The window must stay resident — dropping
  // unpersisted uploads would silently lose fleet data.
  IngestConfig C = manualConfig();
  C.RetainWindows = 1;
  IngestService Service(C);

  for (uint64_t Window = 0; Window != 3; ++Window)
    ASSERT_TRUE(
        Service.ingestNow(makeUpload("t0", Window, unsigned(Window))).Accepted);

  IngestStats Stats = Service.stats();
  EXPECT_EQ(Stats.WindowsExpired, 0u);
  EXPECT_GE(Stats.RetentionHeld, 1u);
  EXPECT_EQ(Service.windows().size(), 3u);

  // Every window still answers queries — nothing was shed.
  std::string Error;
  for (uint64_t Window = 0; Window != 3; ++Window) {
    EXPECT_FALSE(Service.queryCctStats(Window, Error).empty());
    EXPECT_TRUE(Error.empty()) << Error;
  }
}
