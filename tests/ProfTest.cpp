//===- tests/ProfTest.cpp - end-to-end instrumentation tests ------------------===//
//
// Integration tests: instrument a program, run it on the simulated machine,
// and check the measured profiles against the oracle tracer run on the
// pristine module — the instrumented program must report exactly the path,
// edge, and context frequencies the program actually executed.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "prof/Oracle.h"
#include "prof/Runtime.h"
#include "prof/Session.h"
#include "support/Prng.h"
#include "workloads/Examples.h"

#include <gtest/gtest.h>

#include <map>

using namespace pp;
using namespace pp::ir;
using prof::Mode;

namespace {

/// Runs the pristine module with the oracle tracer attached.
struct OracleRun {
  explicit OracleRun(ir::Module &M) : Oracle(M) {
    hw::Machine Machine;
    vm::Vm VM(M, Machine);
    VM.setTracer(&Oracle);
    Result = VM.run();
  }
  prof::OracleProfiler Oracle;
  vm::RunResult Result;
};

prof::SessionOptions options(Mode M) {
  prof::SessionOptions Options;
  Options.Config.M = M;
  return Options;
}

std::map<uint64_t, uint64_t>
measuredFreqs(const prof::FunctionPathProfile &Profile) {
  std::map<uint64_t, uint64_t> Out;
  for (const prof::PathEntry &Entry : Profile.Paths)
    Out[Entry.PathSum] = Entry.Freq;
  return Out;
}

/// A random but always-terminating single-function program: every block
/// decrements a fuel register and bails to the exit when it runs out, with
/// array loads/stores sprinkled in for cache traffic.
std::unique_ptr<ir::Module> makeRandomProgram(uint64_t Seed,
                                              unsigned NumBlocks,
                                              int64_t Fuel) {
  Prng R(Seed);
  auto M = std::make_unique<Module>();
  size_t DataIndex = M->addGlobal("data", 64 * 1024);
  uint64_t DataAddr = M->global(DataIndex).Addr;

  Function *F = M->addFunction("main", 0);
  BasicBlock *Entry = F->addBlock("entry");
  std::vector<BasicBlock *> Blocks;
  for (unsigned Index = 0; Index != NumBlocks; ++Index)
    Blocks.push_back(F->addBlock("b" + std::to_string(Index)));
  BasicBlock *Exit = F->addBlock("exit");

  IRBuilder IRB(F, Entry);
  Reg FuelReg = IRB.movImm(Fuel);
  Reg Acc = IRB.movImm(0);
  IRB.br(Blocks[0]);

  for (unsigned Index = 0; Index != NumBlocks; ++Index) {
    IRB.setBlock(Blocks[Index]);
    // Some memory traffic.
    if (R.nextBool(0.6)) {
      Reg Slot = IRB.andImm(FuelReg, 8191);
      Reg Offset = IRB.shlImm(Slot, 3);
      Reg Addr = IRB.addImm(Offset, static_cast<int64_t>(DataAddr));
      Reg Value = IRB.load(Addr, 0);
      Reg Bumped = IRB.add(Value, FuelReg);
      IRB.store(Addr, 0, Bumped);
      Reg NewAcc = IRB.add(Acc, Bumped);
      IRB.movRegInto(Acc, NewAcc);
    }
    Reg Next = IRB.subImm(FuelReg, 1);
    IRB.movRegInto(FuelReg, Next);
    Reg HasFuel = IRB.cmpLtImm(FuelReg, 0);
    // HasFuel==1 means exhausted (fuel < 0).
    BasicBlock *T1 = Blocks[R.nextBelow(NumBlocks)];
    BasicBlock *T2 = Blocks[R.nextBelow(NumBlocks)];
    BasicBlock *Continue = R.nextBool(0.5) ? T1 : T2;
    IRB.condBr(HasFuel, Exit, Continue);
  }
  IRB.setBlock(Exit);
  IRB.ret(Acc);
  M->setMain(F);
  verifyModuleOrDie(*M);
  return M;
}

} // namespace

TEST(Prof, InstrumentedModuleStaysWellFormed) {
  auto M = workloads::buildFig1Module();
  for (Mode Mo : {Mode::Edge, Mode::Flow, Mode::FlowHw, Mode::Context,
                  Mode::ContextHw, Mode::ContextFlow, Mode::ContextFlowHw}) {
    prof::Instrumented Instr = prof::instrument(*M, options(Mo).Config);
    std::vector<std::string> Errors;
    EXPECT_TRUE(verifyModule(*Instr.M, Errors))
        << prof::modeName(Mo) << ": " << Errors.front();
  }
}

TEST(Prof, InstrumentationPreservesProgramBehaviour) {
  auto M = workloads::buildFig1Module();
  prof::RunOutcome Base = prof::runProfile(*M, options(Mode::None));
  ASSERT_TRUE(Base.Result.Ok);
  for (Mode Mo : {Mode::Edge, Mode::Flow, Mode::FlowHw, Mode::Context,
                  Mode::ContextHw, Mode::ContextFlow, Mode::ContextFlowHw}) {
    prof::RunOutcome Run = prof::runProfile(*M, options(Mo));
    ASSERT_TRUE(Run.Result.Ok) << prof::modeName(Mo) << ": "
                               << Run.Result.Error;
    EXPECT_EQ(Run.Result.ExitValue, Base.Result.ExitValue)
        << prof::modeName(Mo);
  }
}

TEST(Prof, Fig1PathFrequenciesExact) {
  auto M = workloads::buildFig1Module();
  prof::RunOutcome Run = prof::runProfile(*M, options(Mode::Flow));
  ASSERT_TRUE(Run.Result.Ok) << Run.Result.Error;

  unsigned Fig1Id = M->findFunction("fig1")->id();
  const prof::FunctionPathProfile &Profile = Run.PathProfiles[Fig1Id];
  ASSERT_TRUE(Profile.HasProfile);
  EXPECT_EQ(Profile.NumPaths, 6u);

  // Selectors 0..7: ACDF x2 (sum 0), ACDEF x2 (sum 1), and one each of
  // sums 2..5.
  std::map<uint64_t, uint64_t> Expected = {{0, 2}, {1, 2}, {2, 1},
                                           {3, 1}, {4, 1}, {5, 1}};
  EXPECT_EQ(measuredFreqs(Profile), Expected);
}

TEST(Prof, LoopPathFrequenciesExact) {
  auto M = workloads::buildLoopModule(10);
  prof::RunOutcome Run = prof::runProfile(*M, options(Mode::Flow));
  ASSERT_TRUE(Run.Result.Ok) << Run.Result.Error;
  const prof::FunctionPathProfile &Profile =
      Run.PathProfiles[M->main()->id()];
  ASSERT_TRUE(Profile.HasProfile);
  // entry,head,body ends-with-backedge: once. head,body between backedges:
  // 9 times. head,done after final backedge: once.
  std::map<uint64_t, uint64_t> Freqs = measuredFreqs(Profile);
  ASSERT_EQ(Freqs.size(), 3u);
  uint64_t Total = 0;
  for (const auto &[Sum, Freq] : Freqs)
    Total += Freq;
  EXPECT_EQ(Total, 11u);
}

TEST(Prof, FlowMatchesOracleOnRandomPrograms) {
  for (uint64_t Seed = 0; Seed != 8; ++Seed) {
    auto M = makeRandomProgram(Seed, 4 + Seed % 5, 300);
    OracleRun Oracle(*M);
    ASSERT_TRUE(Oracle.Result.Ok) << Oracle.Result.Error;

    prof::RunOutcome Run = prof::runProfile(*M, options(Mode::Flow));
    ASSERT_TRUE(Run.Result.Ok) << Run.Result.Error;
    EXPECT_EQ(Run.Result.ExitValue, Oracle.Result.ExitValue);

    unsigned MainId = M->main()->id();
    ASSERT_TRUE(Run.PathProfiles[MainId].HasProfile);
    std::map<uint64_t, uint64_t> Measured =
        measuredFreqs(Run.PathProfiles[MainId]);
    std::map<uint64_t, uint64_t> Expected(
        Oracle.Oracle.pathFreqs(MainId).begin(),
        Oracle.Oracle.pathFreqs(MainId).end());
    EXPECT_EQ(Measured, Expected) << "seed " << Seed;
  }
}

TEST(Prof, HashedTablesAgreeWithArrayTables) {
  auto M = makeRandomProgram(3, 8, 500);
  prof::SessionOptions ArrayOptions = options(Mode::Flow);
  prof::RunOutcome ArrayRun = prof::runProfile(*M, ArrayOptions);
  ASSERT_TRUE(ArrayRun.Result.Ok);

  prof::SessionOptions HashOptions = options(Mode::Flow);
  HashOptions.Config.Plan.ArrayThreshold = 1; // force hashing
  prof::RunOutcome HashRun = prof::runProfile(*M, HashOptions);
  ASSERT_TRUE(HashRun.Result.Ok) << HashRun.Result.Error;

  unsigned MainId = M->main()->id();
  EXPECT_TRUE(HashRun.PathProfiles[MainId].Hashed);
  EXPECT_EQ(measuredFreqs(ArrayRun.PathProfiles[MainId]),
            measuredFreqs(HashRun.PathProfiles[MainId]));
}

TEST(Prof, FlowHwMeasuresPlausibleMetrics) {
  auto M = workloads::buildLoopModule(2000);
  prof::RunOutcome Run = prof::runProfile(*M, options(Mode::FlowHw));
  ASSERT_TRUE(Run.Result.Ok) << Run.Result.Error;
  const prof::FunctionPathProfile &Profile =
      Run.PathProfiles[M->main()->id()];
  ASSERT_TRUE(Profile.HasProfile);

  uint64_t PathInsts = 0, PathMisses = 0, Freq = 0;
  for (const prof::PathEntry &Entry : Profile.Paths) {
    EXPECT_GT(Entry.Metric0, 0u) << "every executed path runs instructions";
    EXPECT_GE(Entry.Metric0, Entry.Freq)
        << "at least one instruction per execution";
    PathInsts += Entry.Metric0;
    PathMisses += Entry.Metric1;
    Freq += Entry.Freq;
  }
  EXPECT_EQ(Freq, 2001u);
  // Path-attributed instructions cannot exceed the whole run's.
  EXPECT_LE(PathInsts, Run.total(hw::Event::Insts));
  EXPECT_GT(PathInsts, 2000u * 5);
  // The loop walks an 8 KB array through a 16 KB cache: few misses after
  // warmup, but the cold misses must be attributed to paths.
  EXPECT_LE(PathMisses, Run.total(hw::Event::DCacheReadMiss));
}

TEST(Prof, FlowHwFrequenciesMatchFlow) {
  auto M = makeRandomProgram(11, 6, 400);
  prof::RunOutcome Flow = prof::runProfile(*M, options(Mode::Flow));
  prof::RunOutcome FlowHw = prof::runProfile(*M, options(Mode::FlowHw));
  ASSERT_TRUE(Flow.Result.Ok);
  ASSERT_TRUE(FlowHw.Result.Ok);
  unsigned MainId = M->main()->id();
  EXPECT_EQ(measuredFreqs(Flow.PathProfiles[MainId]),
            measuredFreqs(FlowHw.PathProfiles[MainId]));
}

TEST(Prof, InstrumentationCostsCycles) {
  auto M = workloads::buildLoopModule(5000);
  prof::RunOutcome Base = prof::runProfile(*M, options(Mode::None));
  prof::RunOutcome Flow = prof::runProfile(*M, options(Mode::Flow));
  prof::RunOutcome FlowHw = prof::runProfile(*M, options(Mode::FlowHw));
  ASSERT_TRUE(Base.Result.Ok && Flow.Result.Ok && FlowHw.Result.Ok);
  EXPECT_GT(Flow.total(hw::Event::Cycles), Base.total(hw::Event::Cycles));
  EXPECT_GT(FlowHw.total(hw::Event::Cycles), Flow.total(hw::Event::Cycles))
      << "hardware-metric instrumentation is strictly heavier";
  EXPECT_GT(FlowHw.total(hw::Event::Insts), Base.total(hw::Event::Insts));
}

TEST(Prof, EdgeProfileMatchesOracle) {
  for (uint64_t Seed : {1u, 5u, 9u}) {
    auto M = makeRandomProgram(Seed, 5 + Seed % 4, 250);
    OracleRun Oracle(*M);
    ASSERT_TRUE(Oracle.Result.Ok);

    prof::RunOutcome Run = prof::runProfile(*M, options(Mode::Edge));
    ASSERT_TRUE(Run.Result.Ok) << Run.Result.Error;
    unsigned MainId = M->main()->id();
    const prof::EdgeProfile &Profile = Run.EdgeProfiles[MainId];
    ASSERT_TRUE(Profile.HasProfile);
    EXPECT_EQ(Profile.Invocations, 1u);
    EXPECT_EQ(Profile.EdgeCounts, Oracle.Oracle.edgeCounts(MainId))
        << "seed " << Seed;
  }
}

TEST(Prof, EdgeProfilingIsCheaperThanPathProfiling) {
  auto M = workloads::buildLoopModule(5000);
  prof::RunOutcome Base = prof::runProfile(*M, options(Mode::None));
  prof::RunOutcome Edge = prof::runProfile(*M, options(Mode::Edge));
  prof::RunOutcome Flow = prof::runProfile(*M, options(Mode::Flow));
  ASSERT_TRUE(Edge.Result.Ok && Flow.Result.Ok);
  uint64_t BaseCycles = Base.total(hw::Event::Cycles);
  uint64_t EdgeOver = Edge.total(hw::Event::Cycles) - BaseCycles;
  uint64_t FlowOver = Flow.total(hw::Event::Cycles) - BaseCycles;
  EXPECT_LE(EdgeOver, FlowOver)
      << "chord counting must not cost more than path profiling";
}

TEST(Prof, ContextCountsMatchOracle) {
  auto M = workloads::buildFig4Module();
  OracleRun Oracle(*M);
  ASSERT_TRUE(Oracle.Result.Ok);

  prof::RunOutcome Run = prof::runProfile(*M, options(Mode::Context));
  ASSERT_TRUE(Run.Result.Ok) << Run.Result.Error;
  ASSERT_TRUE(Run.Tree);

  // Records (minus root) must equal the DCT's distinct contexts: the
  // program is recursion-free.
  EXPECT_EQ(Run.Tree->numRecords() - 1,
            Oracle.Oracle.dct().numDistinctContexts());

  // Per-function invocation counts: sum of Metrics[0] over that function's
  // records equals the oracle call count.
  std::map<unsigned, uint64_t> PerFunc;
  for (const auto &R : Run.Tree->records())
    if (R->procId() != cct::RootProcId)
      PerFunc[R->procId()] += R->Metrics[0];
  for (size_t Id = 0; Id != M->numFunctions(); ++Id)
    EXPECT_EQ(PerFunc[Id], Oracle.Oracle.callCount(Id))
        << M->function(Id)->name();

  // C must have exactly two records (the two contexts of Figure 4).
  unsigned CId = M->findFunction("C")->id();
  unsigned CRecords = 0;
  for (const auto &R : Run.Tree->records())
    if (R->procId() == CId)
      ++CRecords;
  EXPECT_EQ(CRecords, 2u);
}

TEST(Prof, RecursionBoundsTheTree) {
  auto M = workloads::buildFig5Module();
  prof::RunOutcome Run = prof::runProfile(*M, options(Mode::Context));
  ASSERT_TRUE(Run.Result.Ok) << Run.Result.Error;
  ASSERT_TRUE(Run.Tree);
  // Depth 4 mutual recursion must still give one A and one B record below
  // M: root, main, M, A, B = 5 records.
  EXPECT_EQ(Run.Tree->numRecords(), 5u);
  cct::CctStats Stats = Run.Tree->computeStats();
  EXPECT_GE(Stats.BackedgeSlots, 1u);
  // A ran 5 times (n = 4..0), B 4 times, all onto the same records.
  unsigned AId = M->findFunction("A")->id();
  unsigned BId = M->findFunction("B")->id();
  for (const auto &R : Run.Tree->records()) {
    if (R->procId() == AId) {
      EXPECT_EQ(R->Metrics[0], 5u);
    }
    if (R->procId() == BId) {
      EXPECT_EQ(R->Metrics[0], 4u);
    }
  }
}

TEST(Prof, UninstrumentedCalleesAttributeThroughGcsp) {
  // Skip instrumentation of B: C must appear as a child of A's record (the
  // gCSP set by A at its call to B survives through uninstrumented B).
  auto M = workloads::buildFig4Module();
  prof::SessionOptions Options = options(Mode::Context);
  Options.Config.ShouldInstrument = [](const ir::Function &F) {
    return F.name() != "B";
  };
  prof::RunOutcome Run = prof::runProfile(*M, Options);
  ASSERT_TRUE(Run.Result.Ok) << Run.Result.Error;
  ASSERT_TRUE(Run.Tree);

  unsigned AId = M->findFunction("A")->id();
  unsigned BId = M->findFunction("B")->id();
  unsigned CId = M->findFunction("C")->id();
  bool FoundCUnderA = false;
  for (const auto &R : Run.Tree->records()) {
    EXPECT_NE(R->procId(), BId) << "uninstrumented B must have no record";
    if (R->procId() == CId && R->parent() &&
        R->parent()->procId() == AId)
      FoundCUnderA = true;
  }
  EXPECT_TRUE(FoundCUnderA);
}

TEST(Prof, ContextFlowPerRecordPathsSumToFlowProfile) {
  auto M = workloads::buildFig1Module();
  prof::RunOutcome Flow = prof::runProfile(*M, options(Mode::Flow));
  prof::RunOutcome Combined = prof::runProfile(*M, options(Mode::ContextFlow));
  ASSERT_TRUE(Flow.Result.Ok);
  ASSERT_TRUE(Combined.Result.Ok) << Combined.Result.Error;
  ASSERT_TRUE(Combined.Tree);

  unsigned Fig1Id = M->findFunction("fig1")->id();
  std::map<uint64_t, uint64_t> Summed;
  for (const auto &R : Combined.Tree->records()) {
    if (R->procId() != Fig1Id)
      continue;
    for (const auto &[Sum, Cell] : R->PathTable)
      Summed[Sum] += Cell.Freq;
  }
  EXPECT_EQ(Summed, measuredFreqs(Flow.PathProfiles[Fig1Id]));
}

TEST(Prof, ContextFlowHwMeasuresPerContextPathMetrics) {
  // The full combination: hardware metrics at (context, path) precision.
  auto M = workloads::buildFig4Module();
  prof::RunOutcome Plain = prof::runProfile(*M, options(Mode::ContextFlow));
  prof::RunOutcome Full = prof::runProfile(*M, options(Mode::ContextFlowHw));
  ASSERT_TRUE(Plain.Result.Ok && Full.Result.Ok) << Full.Result.Error;
  ASSERT_TRUE(Full.Tree);

  // Frequencies agree with the metric-free combined mode...
  auto Freqs = [](const cct::CallingContextTree &Tree) {
    std::map<std::pair<unsigned, uint64_t>, uint64_t> Out;
    for (const auto &R : Tree.records())
      for (const auto &[Sum, Cell] : R->PathTable)
        Out[{R->procId(), Sum}] += Cell.Freq;
    return Out;
  };
  EXPECT_EQ(Freqs(*Plain.Tree), Freqs(*Full.Tree));

  // ...and every (context, path) cell carries instruction counts: at
  // least one instruction per execution, and C's two contexts measure
  // independently.
  unsigned CId = M->findFunction("C")->id();
  unsigned CellsWithMetrics = 0, CRecords = 0;
  for (const auto &R : Full.Tree->records()) {
    for (const auto &[Sum, Cell] : R->PathTable) {
      EXPECT_GE(Cell.Metric0, Cell.Freq)
          << "PIC0=Insts: every execution runs instructions";
      ++CellsWithMetrics;
    }
    if (R->procId() == CId) {
      ++CRecords;
      ASSERT_EQ(R->PathTable.size(), 1u);
      EXPECT_GT(R->PathTable.begin()->second.Metric0, 0u);
    }
  }
  EXPECT_EQ(CRecords, 2u);
  EXPECT_GT(CellsWithMetrics, 4u);
  // ContextFlowHw costs more cycles than ContextFlow (the PIC traffic).
  EXPECT_GT(Full.total(hw::Event::Cycles), Plain.total(hw::Event::Cycles));
}

TEST(Prof, ContextHwAccumulatesInclusiveMetrics) {
  auto M = workloads::buildFig4Module();
  prof::RunOutcome Run = prof::runProfile(*M, options(Mode::ContextHw));
  ASSERT_TRUE(Run.Result.Ok) << Run.Result.Error;
  ASSERT_TRUE(Run.Tree);
  // Every record must have accumulated instructions (PIC0 = Insts), and a
  // parent's inclusive count is at least each child's.
  for (const auto &R : Run.Tree->records()) {
    if (R->procId() == cct::RootProcId)
      continue;
    EXPECT_GT(R->Metrics[1], 0u);
    if (R->parent() && R->parent()->procId() != cct::RootProcId) {
      EXPECT_GE(R->parent()->Metrics[1], R->Metrics[1]);
    }
  }
}

TEST(Prof, LongjmpUnwindKeepsCctConsistent) {
  // main -> hop -> deep(3) -> longjmp back to main's setjmp; then main
  // calls leaf() normally. leaf must attach under main, not under any
  // unwound frame.
  auto M = std::make_unique<Module>();
  Function *Leaf = M->addFunction("leaf", 0);
  {
    IRBuilder IRB(Leaf, Leaf->addBlock("entry"));
    IRB.retImm(5);
  }
  Function *Deep = M->addFunction("deep", 1);
  {
    BasicBlock *Entry = Deep->addBlock("entry");
    BasicBlock *Down = Deep->addBlock("down");
    BasicBlock *Jump = Deep->addBlock("jump");
    IRBuilder IRB(Deep, Entry);
    Reg AtBottom = IRB.cmpLeImm(0, 0);
    IRB.condBr(AtBottom, Jump, Down);
    IRB.setBlock(Down);
    Reg Next = IRB.subImm(0, 1);
    IRB.call(Deep, {Next});
    IRB.retImm(0);
    IRB.setBlock(Jump);
    Reg V = IRB.movImm(9);
    IRB.longjmp(2, V);
  }
  Function *Hop = M->addFunction("hop", 0);
  {
    IRBuilder IRB(Hop, Hop->addBlock("entry"));
    Reg N = IRB.movImm(3);
    Reg R = IRB.call(Deep, {N});
    IRB.ret(R);
  }
  Function *Main = M->addFunction("main", 0);
  {
    BasicBlock *Entry = Main->addBlock("entry");
    BasicBlock *First = Main->addBlock("first");
    BasicBlock *After = Main->addBlock("after");
    IRBuilder IRB(Main, Entry);
    Reg Jumped = IRB.setjmp(2);
    Reg IsZero = IRB.cmpEqImm(Jumped, 0);
    IRB.condBr(IsZero, First, After);
    IRB.setBlock(First);
    IRB.call(Hop, {});
    IRB.retImm(0);
    IRB.setBlock(After);
    Reg FromLeaf = IRB.call(Leaf, {});
    Reg Sum = IRB.add(Jumped, FromLeaf);
    IRB.ret(Sum);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);

  prof::RunOutcome Run = prof::runProfile(*M, options(Mode::Context));
  ASSERT_TRUE(Run.Result.Ok) << Run.Result.Error;
  EXPECT_EQ(Run.Result.ExitValue, 14u);
  ASSERT_TRUE(Run.Tree);

  unsigned LeafId = M->findFunction("leaf")->id();
  unsigned MainId = Main->id();
  bool LeafUnderMain = false;
  for (const auto &R : Run.Tree->records())
    if (R->procId() == LeafId && R->parent() &&
        R->parent()->procId() == MainId)
      LeafUnderMain = true;
  EXPECT_TRUE(LeafUnderMain)
      << "after the longjmp, leaf must attach under main";
}

TEST(Prof, PerProcedureAggregationShrinksTheTree) {
  // A function called from two sites in the same caller: per-site CCTs
  // give two records; per-procedure aggregation gives one.
  auto M = std::make_unique<Module>();
  Function *Callee = M->addFunction("callee", 0);
  {
    IRBuilder IRB(Callee, Callee->addBlock("entry"));
    IRB.retImm(1);
  }
  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Reg A = IRB.call(Callee, {});
    Reg B = IRB.call(Callee, {});
    Reg Sum = IRB.add(A, B);
    IRB.ret(Sum);
  }
  M->setMain(Main);

  prof::RunOutcome PerSite = prof::runProfile(*M, options(Mode::Context));
  prof::SessionOptions Aggregated = options(Mode::Context);
  Aggregated.Config.DistinguishCallSites = false;
  prof::RunOutcome PerProc = prof::runProfile(*M, Aggregated);
  ASSERT_TRUE(PerSite.Result.Ok && PerProc.Result.Ok);
  EXPECT_EQ(PerSite.Tree->numRecords(), 4u);  // root main callee callee'
  EXPECT_EQ(PerProc.Tree->numRecords(), 3u);  // root main callee
}
