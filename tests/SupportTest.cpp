//===- tests/SupportTest.cpp - support library tests -------------------------===//

#include "support/Checksum.h"
#include "support/Format.h"
#include "support/Prng.h"
#include "support/TableWriter.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace pp;

TEST(Format, ParseUint64Strict) {
  uint64_t Value = 77;
  EXPECT_TRUE(parseUint64("0", Value));
  EXPECT_EQ(Value, 0u);
  EXPECT_TRUE(parseUint64("18446744073709551615", Value));
  EXPECT_EQ(Value, UINT64_MAX);

  // Rejections leave the output untouched.
  Value = 77;
  EXPECT_FALSE(parseUint64("", Value));
  EXPECT_FALSE(parseUint64("max", Value));
  EXPECT_FALSE(parseUint64("12x", Value));
  EXPECT_FALSE(parseUint64(" 12", Value));
  EXPECT_FALSE(parseUint64("-1", Value));
  EXPECT_FALSE(parseUint64("18446744073709551616", Value)) << "overflow";
  EXPECT_EQ(Value, 77u);
}

TEST(Checksum, Crc32KnownVectors) {
  // The IEEE 802.3 check value: crc32("123456789") == 0xCBF43926.
  const uint8_t Digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(Digits, sizeof(Digits)), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);

  // Seeded continuation equals one-shot over the concatenation.
  uint32_t Split = crc32(Digits + 4, 5, crc32(Digits, 4));
  EXPECT_EQ(Split, 0xCBF43926u);

  // Any single-bit flip changes the checksum.
  uint8_t Flipped[sizeof(Digits)];
  for (size_t Byte = 0; Byte != sizeof(Digits); ++Byte)
    for (unsigned Bit = 0; Bit != 8; ++Bit) {
      std::memcpy(Flipped, Digits, sizeof(Digits));
      Flipped[Byte] ^= uint8_t(1) << Bit;
      EXPECT_NE(crc32(Flipped, sizeof(Flipped)), 0xCBF43926u);
    }
}

TEST(Format, FormatString) {
  EXPECT_EQ(formatString("x=%d y=%s", 42, "hi"), "x=42 y=hi");
  EXPECT_EQ(formatString("%s", ""), "");
}

TEST(Format, FormatEng) {
  EXPECT_EQ(formatEng(0), "0");
  EXPECT_EQ(formatEng(99999), "99999");
  EXPECT_EQ(formatEng(11000000), "1.1e7");
  EXPECT_EQ(formatEng(210000000), "2.1e8");
  EXPECT_EQ(formatEng(-11000000), "-1.1e7");
}

TEST(Format, FormatPercent) {
  EXPECT_EQ(formatPercent(1, 2), "50.0%");
  EXPECT_EQ(formatPercent(1, 0), "0.0%");
  EXPECT_EQ(formatPercent(0, 100), "0.0%");
}

TEST(Format, FormatRatio) {
  EXPECT_EQ(formatRatio(3, 2), "1.50");
  EXPECT_EQ(formatRatio(3, 0), "-");
}

TEST(TableWriter, AlignsColumns) {
  TableWriter Table;
  Table.setHeader({"Benchmark", "Time"});
  Table.addRow({"go", "850.9"});
  Table.addSeparator();
  Table.addRow({"lisp-like", "1.0"});
  std::string Out = Table.render();
  // Header present, separator lines of dashes, right-aligned second column.
  EXPECT_NE(Out.find("Benchmark"), std::string::npos);
  EXPECT_NE(Out.find("go         850.9"), std::string::npos);
  EXPECT_NE(Out.find("lisp-like    1.0"), std::string::npos);
  EXPECT_EQ(Table.numRows(), 2u);
}

TEST(Prng, Deterministic) {
  Prng A(123), B(123), C(124);
  for (int Round = 0; Round != 100; ++Round) {
    uint64_t V = A.next();
    EXPECT_EQ(V, B.next());
  }
  // Different seeds diverge (overwhelmingly likely on the first draw).
  EXPECT_NE(Prng(123).next(), C.next());
}

TEST(Prng, BoundsRespected) {
  Prng R(7);
  for (int Round = 0; Round != 1000; ++Round) {
    EXPECT_LT(R.nextBelow(17), 17u);
    int64_t V = R.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Prng, RoughlyUniform) {
  Prng R(99);
  int Counts[10] = {};
  const int Draws = 100000;
  for (int Round = 0; Round != Draws; ++Round)
    ++Counts[R.nextBelow(10)];
  for (int Bucket = 0; Bucket != 10; ++Bucket) {
    EXPECT_GT(Counts[Bucket], Draws / 10 - Draws / 50);
    EXPECT_LT(Counts[Bucket], Draws / 10 + Draws / 50);
  }
}
