//===- tests/SupportTest.cpp - support library tests -------------------------===//

#include "support/Format.h"
#include "support/Prng.h"
#include "support/TableWriter.h"

#include <gtest/gtest.h>

using namespace pp;

TEST(Format, FormatString) {
  EXPECT_EQ(formatString("x=%d y=%s", 42, "hi"), "x=42 y=hi");
  EXPECT_EQ(formatString("%s", ""), "");
}

TEST(Format, FormatEng) {
  EXPECT_EQ(formatEng(0), "0");
  EXPECT_EQ(formatEng(99999), "99999");
  EXPECT_EQ(formatEng(11000000), "1.1e7");
  EXPECT_EQ(formatEng(210000000), "2.1e8");
  EXPECT_EQ(formatEng(-11000000), "-1.1e7");
}

TEST(Format, FormatPercent) {
  EXPECT_EQ(formatPercent(1, 2), "50.0%");
  EXPECT_EQ(formatPercent(1, 0), "0.0%");
  EXPECT_EQ(formatPercent(0, 100), "0.0%");
}

TEST(Format, FormatRatio) {
  EXPECT_EQ(formatRatio(3, 2), "1.50");
  EXPECT_EQ(formatRatio(3, 0), "-");
}

TEST(TableWriter, AlignsColumns) {
  TableWriter Table;
  Table.setHeader({"Benchmark", "Time"});
  Table.addRow({"go", "850.9"});
  Table.addSeparator();
  Table.addRow({"lisp-like", "1.0"});
  std::string Out = Table.render();
  // Header present, separator lines of dashes, right-aligned second column.
  EXPECT_NE(Out.find("Benchmark"), std::string::npos);
  EXPECT_NE(Out.find("go         850.9"), std::string::npos);
  EXPECT_NE(Out.find("lisp-like    1.0"), std::string::npos);
  EXPECT_EQ(Table.numRows(), 2u);
}

TEST(Prng, Deterministic) {
  Prng A(123), B(123), C(124);
  for (int Round = 0; Round != 100; ++Round) {
    uint64_t V = A.next();
    EXPECT_EQ(V, B.next());
  }
  // Different seeds diverge (overwhelmingly likely on the first draw).
  EXPECT_NE(Prng(123).next(), C.next());
}

TEST(Prng, BoundsRespected) {
  Prng R(7);
  for (int Round = 0; Round != 1000; ++Round) {
    EXPECT_LT(R.nextBelow(17), 17u);
    int64_t V = R.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Prng, RoughlyUniform) {
  Prng R(99);
  int Counts[10] = {};
  const int Draws = 100000;
  for (int Round = 0; Round != Draws; ++Round)
    ++Counts[R.nextBelow(10)];
  for (int Bucket = 0; Bucket != 10; ++Bucket) {
    EXPECT_GT(Counts[Bucket], Draws / 10 - Draws / 50);
    EXPECT_LT(Counts[Bucket], Draws / 10 + Draws / 50);
  }
}
