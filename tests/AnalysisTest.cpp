//===- tests/AnalysisTest.cpp - hot path / procedure classification -----------===//

#include "analysis/HotPaths.h"
#include "analysis/Perturbation.h"
#include "analysis/SiteStats.h"
#include "workloads/Examples.h"
#include "workloads/Spec.h"

#include <gtest/gtest.h>

using namespace pp;
using namespace pp::analysis;

namespace {

PathRecord makeRecord(unsigned Func, uint64_t Sum, uint64_t Freq,
                      uint64_t Insts, uint64_t Misses) {
  PathRecord Record;
  Record.FuncId = Func;
  Record.PathSum = Sum;
  Record.Freq = Freq;
  Record.Insts = Insts;
  Record.Misses = Misses;
  return Record;
}

} // namespace

TEST(HotPaths, ClassifiesAgainstThreshold) {
  // Total misses 1000; threshold 1% = 10 misses.
  std::vector<PathRecord> Records = {
      makeRecord(0, 0, 10, 1000, 800), // hot, dense (0.8 >> avg)
      makeRecord(0, 1, 10, 9000, 150), // hot, sparse-ish
      makeRecord(0, 2, 10, 100, 41),   // hot, dense
      makeRecord(0, 3, 10, 500, 9),    // cold (below 10)
      makeRecord(1, 0, 10, 400, 0),    // cold (no misses)
  };
  HotPathAnalysis A = analyzeHotPaths(Records, 0.01);
  EXPECT_EQ(A.TotalPaths, 5u);
  EXPECT_EQ(A.TotalMisses, 1000u);
  EXPECT_EQ(A.TotalInsts, 11000u);
  EXPECT_EQ(A.Hot.Num, 3u);
  EXPECT_EQ(A.Cold.Num, 2u);
  EXPECT_EQ(A.Hot.Misses, 991u);
  // Average miss ratio = 1000/11000 ~ 0.091. Path 0 (0.8) and path 2
  // (0.41) are dense; path 1 (150/9000 ~ 0.017) is sparse.
  EXPECT_EQ(A.Dense.Num, 2u);
  EXPECT_EQ(A.Sparse.Num, 1u);
  // Hot indices are sorted densest-miss first.
  ASSERT_EQ(A.HotIndices.size(), 3u);
  EXPECT_EQ(A.HotIndices[0], 0u);
  EXPECT_EQ(A.HotIndices[1], 1u);
  EXPECT_EQ(A.HotIndices[2], 2u);
}

TEST(HotPaths, ZeroMissProgramHasNoHotPaths) {
  std::vector<PathRecord> Records = {makeRecord(0, 0, 5, 100, 0),
                                     makeRecord(0, 1, 5, 100, 0)};
  HotPathAnalysis A = analyzeHotPaths(Records, 0.01);
  EXPECT_EQ(A.Hot.Num, 0u);
  EXPECT_EQ(A.Cold.Num, 2u);
  EXPECT_EQ(A.TotalMisses, 0u);
}

TEST(HotPaths, LowerThresholdPromotesPaths) {
  std::vector<PathRecord> Records;
  // 100 paths with 1..100 misses each (total 5050).
  for (unsigned Index = 0; Index != 100; ++Index)
    Records.push_back(makeRecord(0, Index, 1, 100, Index + 1));
  HotPathAnalysis Strict = analyzeHotPaths(Records, 0.01); // cut 50.5
  HotPathAnalysis Loose = analyzeHotPaths(Records, 0.001); // cut 5.05
  EXPECT_LT(Strict.Hot.Num, Loose.Hot.Num);
  EXPECT_EQ(Strict.Hot.Num + Strict.Cold.Num, 100u);
  EXPECT_EQ(Loose.Hot.Num, 95u); // paths with 6..100 misses
}

TEST(HotProcs, AggregationSumsPerFunction) {
  std::vector<PathRecord> Records = {
      makeRecord(3, 0, 5, 100, 10), makeRecord(3, 1, 7, 200, 20),
      makeRecord(8, 0, 1, 50, 5),
  };
  std::vector<ProcRecord> Procs = aggregateByProcedure(Records);
  ASSERT_EQ(Procs.size(), 2u);
  EXPECT_EQ(Procs[0].FuncId, 3u);
  EXPECT_EQ(Procs[0].NumPathsExecuted, 2u);
  EXPECT_EQ(Procs[0].Freq, 12u);
  EXPECT_EQ(Procs[0].Insts, 300u);
  EXPECT_EQ(Procs[0].Misses, 30u);
  EXPECT_EQ(Procs[1].FuncId, 8u);
}

TEST(HotProcs, PathsPerProcAverages) {
  std::vector<PathRecord> Records;
  // Function 0: 10 paths, massive misses (hot). Function 1: 2 paths,
  // no misses (cold).
  for (unsigned Index = 0; Index != 10; ++Index)
    Records.push_back(makeRecord(0, Index, 1, 100, 50));
  Records.push_back(makeRecord(1, 0, 1, 100, 0));
  Records.push_back(makeRecord(1, 1, 1, 100, 0));
  HotProcAnalysis A =
      analyzeHotProcs(aggregateByProcedure(Records), 0.01);
  EXPECT_EQ(A.Hot.Num, 1u);
  EXPECT_EQ(A.Cold.Num, 1u);
  EXPECT_DOUBLE_EQ(A.HotPathsPerProc, 10.0);
  EXPECT_DOUBLE_EQ(A.ColdPathsPerProc, 2.0);
}

TEST(SiteStats, OnePathSitesCountedFromRealRun) {
  // fig4: straight-line functions; every used call site is reached by the
  // single path of its function.
  auto M = workloads::buildFig4Module();
  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::ContextFlow;
  prof::RunOutcome Run = prof::runProfile(*M, Options);
  ASSERT_TRUE(Run.Result.Ok);
  SitePathStats Stats = computeSitePathStats(*Run.Tree, *M, Run.Instr);
  EXPECT_GT(Stats.TotalSites, 0u);
  EXPECT_EQ(Stats.UsedSites, Stats.OnePathSites)
      << "straight-line code: every used site has exactly one path";
}

TEST(SiteStats, MultiPathSitesAreNotOnePath) {
  // fig1's main calls fig1 from its loop body; the body block executes on
  // multiple distinct paths (loop-entry vs loop-iteration), so the site
  // must not be classified one-path.
  auto M = workloads::buildFig1Module();
  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::ContextFlow;
  prof::RunOutcome Run = prof::runProfile(*M, Options);
  ASSERT_TRUE(Run.Result.Ok);
  SitePathStats Stats = computeSitePathStats(*Run.Tree, *M, Run.Instr);
  EXPECT_EQ(Stats.TotalSites, 1u); // main's call to fig1
  EXPECT_EQ(Stats.UsedSites, 1u);
  EXPECT_EQ(Stats.OnePathSites, 0u);
}

TEST(Analysis, EndToEndTable4Invariants) {
  // Invariants the Table 4 pipeline must satisfy on a real workload.
  auto M = workloads::buildWorkload("129.compress", 1);
  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::FlowHw;
  prof::RunOutcome Run = prof::runProfile(*M, Options);
  ASSERT_TRUE(Run.Result.Ok);
  std::vector<PathRecord> Records = collectPathRecords(Run);
  HotPathAnalysis A = analyzeHotPaths(Records, 0.01);

  EXPECT_EQ(A.Hot.Num + A.Cold.Num, A.TotalPaths);
  EXPECT_EQ(A.Dense.Num + A.Sparse.Num, A.Hot.Num);
  EXPECT_EQ(A.Hot.Misses + A.Cold.Misses, A.TotalMisses);
  EXPECT_EQ(A.Dense.Misses + A.Sparse.Misses, A.Hot.Misses);
  EXPECT_EQ(A.Hot.Insts + A.Cold.Insts, A.TotalInsts);
  // Classification is monotone: every hot path has >= misses than any
  // cold path... not necessarily (threshold is absolute), but each hot
  // path must clear the cut.
  double Cut = 0.01 * double(A.TotalMisses);
  for (size_t Index : A.HotIndices)
    EXPECT_GE(double(Records[Index].Misses), Cut);
}

TEST(Perturbation, DerivedCountsUndoInstrumentation) {
  // §3.2: instruction counts are derivable from path frequencies; the
  // measured PIC values carry the instrumentation's own instructions, the
  // derived values do not.
  auto M = workloads::buildLoopModule(200);
  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::FlowHw;
  prof::RunOutcome Run = prof::runProfile(*M, Options);
  ASSERT_TRUE(Run.Result.Ok);
  unsigned MainId = M->main()->id();
  std::vector<CorrectedPath> Corrected = correctInstructionCounts(
      *M, MainId, Run.PathProfiles[MainId]);
  ASSERT_FALSE(Corrected.empty());

  uint64_t DerivedTotal = 0;
  for (const CorrectedPath &Path : Corrected) {
    EXPECT_EQ(Path.CallsOnPath, 0u);
    EXPECT_GT(Path.MeasuredInsts, Path.DerivedInsts)
        << "measurement must include instrumentation overhead";
    DerivedTotal += Path.DerivedInsts;
  }
  // The derived counts reconstruct the uninstrumented program: its whole
  // execution is main's paths plus nothing else, so the derived total
  // must equal the baseline instruction count.
  prof::SessionOptions BaseOptions;
  BaseOptions.Config.M = prof::Mode::None;
  prof::RunOutcome Base = prof::runProfile(*M, BaseOptions);
  EXPECT_EQ(DerivedTotal, Base.total(hw::Event::Insts));
}

TEST(Perturbation, DerivationIsInstrumentationInvariant) {
  // Different probe placements perturb measurements differently, but the
  // derived counts are identical: they depend only on frequencies.
  auto M = workloads::buildFig1Module();
  unsigned Fig1Id = M->findFunction("fig1")->id();

  prof::SessionOptions Folded;
  Folded.Config.M = prof::Mode::FlowHw;
  prof::RunOutcome FoldedRun = prof::runProfile(*M, Folded);

  prof::SessionOptions Simple = Folded;
  Simple.Config.Plan.FoldFinalValues = false;
  prof::RunOutcome SimpleRun = prof::runProfile(*M, Simple);

  std::vector<CorrectedPath> A = correctInstructionCounts(
      *M, Fig1Id, FoldedRun.PathProfiles[Fig1Id]);
  std::vector<CorrectedPath> B = correctInstructionCounts(
      *M, Fig1Id, SimpleRun.PathProfiles[Fig1Id]);
  ASSERT_EQ(A.size(), B.size());
  for (size_t Index = 0; Index != A.size(); ++Index) {
    EXPECT_EQ(A[Index].PathSum, B[Index].PathSum);
    EXPECT_EQ(A[Index].DerivedInsts, B[Index].DerivedInsts);
  }
}
