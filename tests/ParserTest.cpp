//===- tests/ParserTest.cpp - textual IR round-trip tests ----------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "prof/Instrumenter.h"
#include "prof/Session.h"
#include "workloads/Examples.h"
#include "workloads/Spec.h"

#include <gtest/gtest.h>

using namespace pp;
using namespace pp::ir;

namespace {

void expectRoundTrip(const Module &M) {
  std::string First = printModule(M);
  ParseResult Parsed = parseModule(First);
  ASSERT_TRUE(Parsed.ok()) << Parsed.Error;
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*Parsed.M, Errors)) << Errors.front();
  EXPECT_EQ(printModule(*Parsed.M), First);
}

} // namespace

TEST(Parser, RoundTripsTheExampleModules) {
  expectRoundTrip(*workloads::buildFig1Module());
  expectRoundTrip(*workloads::buildFig4Module());
  expectRoundTrip(*workloads::buildFig5Module());
  expectRoundTrip(*workloads::buildLoopModule(10));
}

TEST(Parser, RoundTripsWorkloads) {
  expectRoundTrip(*workloads::buildCompress(1));
  expectRoundTrip(*workloads::buildLi(1));
  expectRoundTrip(*workloads::buildTomcatv(1));
}

TEST(Parser, RoundTripsInstrumentedModules) {
  auto M = workloads::buildLoopModule(10);
  for (prof::Mode Mo : {prof::Mode::FlowHw, prof::Mode::ContextFlow}) {
    prof::ProfileConfig Config;
    Config.M = Mo;
    prof::Instrumented Instr = prof::instrument(*M, Config);
    expectRoundTrip(*Instr.M);
  }
}

TEST(Parser, ParsedModuleRunsIdentically) {
  auto M = workloads::buildFig1Module();
  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::None;
  prof::RunOutcome Original = prof::runProfile(*M, Options);

  ParseResult Parsed = parseModule(printModule(*M));
  ASSERT_TRUE(Parsed.ok()) << Parsed.Error;
  prof::RunOutcome Reparsed = prof::runProfile(*Parsed.M, Options);
  ASSERT_TRUE(Reparsed.Result.Ok);
  EXPECT_EQ(Reparsed.Result.ExitValue, Original.Result.ExitValue);
  EXPECT_EQ(Reparsed.Result.ExecutedInsts, Original.Result.ExecutedInsts);
}

TEST(Parser, HandWrittenProgram) {
  const char *Text = R"(
global @data 64

func @double(1) regs=2 {
entry:
  add r1, r0, r0
  ret r1
}

func @main(0) regs=8 {
entry:
  mov r0, 21
  call r1, @double (r0)
  ret r1
}

main @main
)";
  ParseResult Parsed = parseModule(Text);
  ASSERT_TRUE(Parsed.ok()) << Parsed.Error;
  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::None;
  prof::RunOutcome Run = prof::runProfile(*Parsed.M, Options);
  ASSERT_TRUE(Run.Result.Ok) << Run.Result.Error;
  EXPECT_EQ(Run.Result.ExitValue, 42u);
}

TEST(Parser, ReportsUnknownInstruction) {
  ParseResult Parsed = parseModule("func @main(0) regs=1 {\nentry:\n"
                                   "  frobnicate r0\n  ret 0\n}\nmain @main\n");
  EXPECT_FALSE(Parsed.ok());
  EXPECT_NE(Parsed.Error.find("unknown instruction"), std::string::npos);
  EXPECT_NE(Parsed.Error.find("line 3"), std::string::npos);
}

TEST(Parser, ReportsUnknownBlock) {
  ParseResult Parsed = parseModule(
      "func @main(0) regs=1 {\nentry:\n  br @nowhere\n}\nmain @main\n");
  EXPECT_FALSE(Parsed.ok());
  EXPECT_NE(Parsed.Error.find("unknown block"), std::string::npos);
}

TEST(Parser, ReportsUnknownCallee) {
  ParseResult Parsed = parseModule(
      "func @main(0) regs=2 {\nentry:\n  call r0, @ghost ()\n  ret 0\n}\n"
      "main @main\n");
  EXPECT_FALSE(Parsed.ok());
  EXPECT_NE(Parsed.Error.find("unknown function"), std::string::npos);
}

TEST(Parser, ReportsMissingMain) {
  ParseResult Parsed =
      parseModule("main @ghost\nfunc @f(0) regs=1 {\nentry:\n  ret 0\n}\n");
  EXPECT_FALSE(Parsed.ok());
  EXPECT_NE(Parsed.Error.find("main"), std::string::npos);
}

TEST(Parser, ReportsDuplicateFunction) {
  ParseResult Parsed = parseModule(
      "func @f(0) regs=1 {\nentry:\n  ret 0\n}\n"
      "func @f(0) regs=1 {\nentry:\n  ret 0\n}\n");
  EXPECT_FALSE(Parsed.ok());
  EXPECT_NE(Parsed.Error.find("duplicate"), std::string::npos);
}

TEST(Parser, AbsoluteMemoryOperands) {
  ParseResult Parsed = parseModule(
      "func @main(0) regs=4 {\nentry:\n  mov r0, 7\n"
      "  store8 [_ + 268435456], r0\n  load8 r1, [_ + 268435456]\n"
      "  ret r1\n}\nmain @main\n");
  ASSERT_TRUE(Parsed.ok()) << Parsed.Error;
  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::None;
  prof::RunOutcome Run = prof::runProfile(*Parsed.M, Options);
  ASSERT_TRUE(Run.Result.Ok);
  EXPECT_EQ(Run.Result.ExitValue, 7u);
}
