//===- tests/SignalTest.cpp - simulated signals and multiple CCT roots ---------===//
//
// The paper notes (§4.2) that handling signals would require the CCT to
// have multiple roots, since handlers are additional entry points. These
// tests cover the extension: handlers run with resumption semantics, the
// CCT hangs them off the root's signal slot (never off the interrupted
// procedure), and flow profiles of interrupted code stay exact because
// the handler's own instrumentation saves and restores the PICs.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "prof/Session.h"
#include "workloads/Examples.h"

#include <gtest/gtest.h>

using namespace pp;
using namespace pp::ir;
using prof::Mode;

namespace {

/// Adds a "tick" signal handler that bumps a counter global.
Function *addTickHandler(Module &M) {
  size_t TickIndex = M.addGlobal("ticks", 8);
  uint64_t Ticks = M.global(TickIndex).Addr;
  Function *Handler = M.addFunction("on_tick", 0);
  IRBuilder IRB(Handler, Handler->addBlock("entry"));
  Reg Old = IRB.loadAbs(static_cast<int64_t>(Ticks));
  Reg New = IRB.addImm(Old, 1);
  IRB.storeAbs(static_cast<int64_t>(Ticks), New);
  IRB.retImm(0);
  return Handler;
}

} // namespace

TEST(Signals, HandlerRunsAndProgramResumes) {
  auto M = workloads::buildLoopModule(1000);
  addTickHandler(*M);
  verifyModuleOrDie(*M);

  hw::Machine Machine;
  vm::Vm VM(*M, Machine);
  VM.setSignal(M->findFunction("on_tick"), 500);
  vm::RunResult Result = VM.run();
  ASSERT_TRUE(Result.Ok) << Result.Error;
  // Program behaviour is unchanged by the interruptions.
  EXPECT_EQ(Result.ExitValue, 499500u);
  EXPECT_GT(VM.signalsDelivered(), 10u);
  // The handler's global recorded every delivery.
  uint64_t Ticks = Machine.peek(M->findGlobal("ticks")->Addr, 8);
  EXPECT_EQ(Ticks, VM.signalsDelivered());
}

TEST(Signals, DeterministicDeliveryCount) {
  auto Run = [](uint64_t Interval) {
    auto M = workloads::buildLoopModule(2000);
    addTickHandler(*M);
    hw::Machine Machine;
    vm::Vm VM(*M, Machine);
    VM.setSignal(M->findFunction("on_tick"), Interval);
    vm::RunResult Result = VM.run();
    EXPECT_TRUE(Result.Ok);
    return VM.signalsDelivered();
  };
  EXPECT_EQ(Run(400), Run(400));
  EXPECT_GT(Run(200), Run(400));
}

TEST(Signals, CctHandlersHangOffTheRoot) {
  auto M = workloads::buildFig4Module();
  addTickHandler(*M);
  verifyModuleOrDie(*M);

  prof::SessionOptions Options;
  Options.Config.M = Mode::Context;
  Options.SignalHandler = "on_tick";
  Options.SignalInterval = 7; // interrupt inside many different frames
  prof::RunOutcome Run = prof::runProfile(*M, Options);
  ASSERT_TRUE(Run.Result.Ok) << Run.Result.Error;
  ASSERT_TRUE(Run.Tree);

  unsigned HandlerId = M->findFunction("on_tick")->id();
  unsigned HandlerRecords = 0;
  uint64_t HandlerCalls = 0;
  for (const auto &R : Run.Tree->records()) {
    if (R->procId() != HandlerId)
      continue;
    ++HandlerRecords;
    HandlerCalls += R->Metrics[0];
    // The whole point: the handler's parent is the root, regardless of
    // which procedure each signal interrupted.
    ASSERT_NE(R->parent(), nullptr);
    EXPECT_EQ(R->parent()->procId(), cct::RootProcId);
    EXPECT_EQ(R->depth(), 1u);
  }
  EXPECT_EQ(HandlerRecords, 1u)
      << "all activations collapse onto one root-child record";
  EXPECT_GT(HandlerCalls, 3u);

  // The root's signal slot is a list containing the handler.
  const cct::CallRecord::Slot &S = Run.Tree->root()->slot(cct::SignalSlot);
  EXPECT_EQ(S.K, cct::CallRecord::Slot::Kind::List);
  ASSERT_EQ(S.List.size(), 1u);
  EXPECT_EQ(S.List.front().first->procId(), HandlerId);
}

TEST(Signals, InterruptedContextsStayCorrect) {
  // Signals must not corrupt the gCSP protocol: after many interruptions,
  // per-function call counts still match an undisturbed run.
  auto M = workloads::buildFig4Module();
  addTickHandler(*M);

  prof::SessionOptions Quiet;
  Quiet.Config.M = Mode::Context;
  prof::RunOutcome QuietRun = prof::runProfile(*M, Quiet);

  prof::SessionOptions Noisy = Quiet;
  Noisy.SignalHandler = "on_tick";
  Noisy.SignalInterval = 5;
  prof::RunOutcome NoisyRun = prof::runProfile(*M, Noisy);
  ASSERT_TRUE(NoisyRun.Result.Ok) << NoisyRun.Result.Error;
  EXPECT_EQ(NoisyRun.Result.ExitValue, QuietRun.Result.ExitValue);

  unsigned HandlerId = M->findFunction("on_tick")->id();
  auto CountsOf = [HandlerId](const prof::RunOutcome &Run) {
    std::map<unsigned, uint64_t> Counts;
    for (const auto &R : Run.Tree->records())
      if (R->procId() != cct::RootProcId && R->procId() != HandlerId)
        Counts[R->procId()] += R->Metrics[0];
    return Counts;
  };
  EXPECT_EQ(CountsOf(QuietRun), CountsOf(NoisyRun));
}

TEST(Signals, FlowProfilesUnperturbedByHandlers) {
  // The handler's instrumentation saves/restores the PICs, so the
  // interrupted function's per-path frequencies are exact.
  auto M = workloads::buildLoopModule(500);
  addTickHandler(*M);

  prof::SessionOptions Quiet;
  Quiet.Config.M = Mode::Flow;
  prof::RunOutcome QuietRun = prof::runProfile(*M, Quiet);

  prof::SessionOptions Noisy = Quiet;
  Noisy.SignalHandler = "on_tick";
  Noisy.SignalInterval = 37;
  prof::RunOutcome NoisyRun = prof::runProfile(*M, Noisy);
  ASSERT_TRUE(NoisyRun.Result.Ok);

  unsigned MainId = M->main()->id();
  ASSERT_EQ(QuietRun.PathProfiles[MainId].Paths.size(),
            NoisyRun.PathProfiles[MainId].Paths.size());
  for (size_t Index = 0;
       Index != QuietRun.PathProfiles[MainId].Paths.size(); ++Index) {
    EXPECT_EQ(QuietRun.PathProfiles[MainId].Paths[Index].PathSum,
              NoisyRun.PathProfiles[MainId].Paths[Index].PathSum);
    EXPECT_EQ(QuietRun.PathProfiles[MainId].Paths[Index].Freq,
              NoisyRun.PathProfiles[MainId].Paths[Index].Freq);
  }
}

TEST(Signals, HandlerPathsAreProfiledToo) {
  auto M = workloads::buildLoopModule(1000);
  addTickHandler(*M);
  prof::SessionOptions Options;
  Options.Config.M = Mode::Flow;
  Options.SignalHandler = "on_tick";
  Options.SignalInterval = 100;
  prof::RunOutcome Run = prof::runProfile(*M, Options);
  ASSERT_TRUE(Run.Result.Ok);
  unsigned HandlerId = M->findFunction("on_tick")->id();
  const prof::FunctionPathProfile &Profile = Run.PathProfiles[HandlerId];
  ASSERT_TRUE(Profile.HasProfile);
  ASSERT_EQ(Profile.Paths.size(), 1u); // straight-line handler
  EXPECT_GT(Profile.Paths[0].Freq, 5u);
}
