//===- tests/DriverTest.cpp - experiment-driver layer tests --------------------===//
//
// The driver layer's contract: a cached outcome is bitwise the outcome of
// a fresh run (totals, path profiles, edge profiles, CCT), parallel
// execution produces exactly the serial results, duplicate submissions
// fold onto one execution, and the on-disk cache round-trips outcomes
// across driver instances.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "driver/OutcomeIO.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <cstdlib>
#include <sys/stat.h>
#include <unistd.h>

using namespace pp;
using namespace pp::driver;

namespace {

RunPlan makePlan(const std::string &Workload, prof::Mode M, int Scale = 1) {
  RunPlan Plan;
  Plan.Workload = Workload;
  Plan.Scale = Scale;
  Plan.Options.Config.M = M;
  return Plan;
}

void expectTreesEqual(const cct::CallingContextTree &A,
                      const cct::CallingContextTree &B) {
  cct::TreeImage IA = A.image(), IB = B.image();
  ASSERT_EQ(IA.Records.size(), IB.Records.size());
  EXPECT_EQ(IA.Procs.size(), IB.Procs.size());
  EXPECT_EQ(IA.NumMetrics, IB.NumMetrics);
  EXPECT_EQ(IA.PathCellBytes, IB.PathCellBytes);
  EXPECT_EQ(IA.HashThreshold, IB.HashThreshold);
  EXPECT_EQ(IA.HeapBytes, IB.HeapBytes);
  EXPECT_EQ(IA.ListCells, IB.ListCells);
  for (size_t R = 0; R != IA.Records.size(); ++R) {
    const cct::TreeImage::Record &RA = IA.Records[R];
    const cct::TreeImage::Record &RB = IB.Records[R];
    EXPECT_EQ(RA.Proc, RB.Proc) << "record " << R;
    EXPECT_EQ(RA.Parent, RB.Parent) << "record " << R;
    EXPECT_EQ(RA.Addr, RB.Addr) << "record " << R;
    EXPECT_EQ(RA.PathTableAddr, RB.PathTableAddr) << "record " << R;
    EXPECT_EQ(RA.Metrics, RB.Metrics) << "record " << R;
    ASSERT_EQ(RA.PathCells.size(), RB.PathCells.size()) << "record " << R;
    for (size_t C = 0; C != RA.PathCells.size(); ++C) {
      EXPECT_EQ(RA.PathCells[C].first, RB.PathCells[C].first);
      EXPECT_EQ(RA.PathCells[C].second.Freq, RB.PathCells[C].second.Freq);
      EXPECT_EQ(RA.PathCells[C].second.Metric0,
                RB.PathCells[C].second.Metric0);
      EXPECT_EQ(RA.PathCells[C].second.Metric1,
                RB.PathCells[C].second.Metric1);
    }
    ASSERT_EQ(RA.Slots.size(), RB.Slots.size()) << "record " << R;
    for (size_t S = 0; S != RA.Slots.size(); ++S) {
      EXPECT_EQ(RA.Slots[S].Kind, RB.Slots[S].Kind);
      EXPECT_EQ(RA.Slots[S].Targets, RB.Slots[S].Targets);
    }
  }
}

/// Bitwise equality of everything a consumer can read from an outcome
/// (the instrumented module itself is deliberately not part of the
/// contract — disk-restored outcomes do not carry one).
void expectOutcomesEqual(const prof::RunOutcome &A,
                         const prof::RunOutcome &B) {
  EXPECT_EQ(A.Result.Ok, B.Result.Ok);
  EXPECT_EQ(A.Result.ExitValue, B.Result.ExitValue);
  EXPECT_EQ(A.Result.ExecutedInsts, B.Result.ExecutedInsts);
  EXPECT_EQ(A.Totals, B.Totals);

  ASSERT_EQ(A.PathProfiles.size(), B.PathProfiles.size());
  for (size_t F = 0; F != A.PathProfiles.size(); ++F) {
    const prof::FunctionPathProfile &PA = A.PathProfiles[F];
    const prof::FunctionPathProfile &PB = B.PathProfiles[F];
    EXPECT_EQ(PA.FuncId, PB.FuncId);
    EXPECT_EQ(PA.HasProfile, PB.HasProfile);
    EXPECT_EQ(PA.NumPaths, PB.NumPaths);
    EXPECT_EQ(PA.Hashed, PB.Hashed);
    ASSERT_EQ(PA.Paths.size(), PB.Paths.size()) << "function " << F;
    for (size_t P = 0; P != PA.Paths.size(); ++P) {
      EXPECT_EQ(PA.Paths[P].PathSum, PB.Paths[P].PathSum);
      EXPECT_EQ(PA.Paths[P].Freq, PB.Paths[P].Freq);
      EXPECT_EQ(PA.Paths[P].Metric0, PB.Paths[P].Metric0);
      EXPECT_EQ(PA.Paths[P].Metric1, PB.Paths[P].Metric1);
    }
  }

  ASSERT_EQ(A.EdgeProfiles.size(), B.EdgeProfiles.size());
  for (size_t F = 0; F != A.EdgeProfiles.size(); ++F) {
    EXPECT_EQ(A.EdgeProfiles[F].FuncId, B.EdgeProfiles[F].FuncId);
    EXPECT_EQ(A.EdgeProfiles[F].HasProfile, B.EdgeProfiles[F].HasProfile);
    EXPECT_EQ(A.EdgeProfiles[F].EdgeCounts, B.EdgeProfiles[F].EdgeCounts);
    EXPECT_EQ(A.EdgeProfiles[F].Invocations, B.EdgeProfiles[F].Invocations);
  }

  ASSERT_EQ(A.Instr.Functions.size(), B.Instr.Functions.size());
  for (size_t F = 0; F != A.Instr.Functions.size(); ++F)
    EXPECT_EQ(A.Instr.Functions[F].HasPathProfile,
              B.Instr.Functions[F].HasPathProfile);

  ASSERT_EQ(A.Tree != nullptr, B.Tree != nullptr);
  if (A.Tree && B.Tree)
    expectTreesEqual(*A.Tree, *B.Tree);
}

std::string makeTempDir() {
  char Template[] = "/tmp/pp-driver-test-XXXXXX";
  const char *Dir = mkdtemp(Template);
  EXPECT_NE(Dir, nullptr);
  return Dir ? Dir : "";
}

TEST(RunKeyTest, FingerprintSeparatesPlans) {
  RunKey Base = RunKey::of(makePlan("124.m88ksim", prof::Mode::FlowHw));
  EXPECT_TRUE(Base.Cacheable);

  EXPECT_NE(Base.Fingerprint,
            RunKey::of(makePlan("124.m88ksim", prof::Mode::ContextFlow))
                .Fingerprint);
  EXPECT_NE(Base.Fingerprint,
            RunKey::of(makePlan("099.go", prof::Mode::FlowHw)).Fingerprint);
  EXPECT_NE(
      Base.Fingerprint,
      RunKey::of(makePlan("124.m88ksim", prof::Mode::FlowHw, 2)).Fingerprint);

  RunPlan Tweaked = makePlan("124.m88ksim", prof::Mode::FlowHw);
  Tweaked.Options.MachineCfg.DCache.Associativity *= 2;
  EXPECT_NE(Base.Fingerprint, RunKey::of(Tweaked).Fingerprint);

  EXPECT_EQ(Base.Fingerprint,
            RunKey::of(makePlan("124.m88ksim", prof::Mode::FlowHw))
                .Fingerprint);
}

TEST(RunKeyTest, FingerprintSeparatesEngines) {
  // Cached outcomes must never cross engines: the engine is part of the
  // run's identity even though the engines are proven bit-identical.
  RunPlan Ref = makePlan("124.m88ksim", prof::Mode::FlowHw);
  Ref.Options.Engine = vm::Engine::Reference;
  RunPlan Thr = makePlan("124.m88ksim", prof::Mode::FlowHw);
  Thr.Options.Engine = vm::Engine::Threaded;
  EXPECT_NE(RunKey::of(Ref).Fingerprint, RunKey::of(Thr).Fingerprint);
}

TEST(RunKeyTest, OptVariantDimensionIsAppendOnly) {
  // Baseline plans carry no ;opt= dimension at all, so every
  // pre-optimizer fingerprint (and its cache file) is byte-identical to
  // what it always was; tagged plans get their own cache identity.
  RunPlan Base = makePlan("124.m88ksim", prof::Mode::None);
  EXPECT_EQ(RunKey::of(Base).Fingerprint.find(";opt="), std::string::npos);

  RunPlan Tagged = makePlan("124.m88ksim", prof::Mode::None);
  Tagged.OptVariant = "layout+superblock+inline";
  EXPECT_NE(RunKey::of(Tagged).Fingerprint.find(";opt=layout+superblock+inline"),
            std::string::npos);
  EXPECT_NE(RunKey::of(Base).Fingerprint, RunKey::of(Tagged).Fingerprint);

  RunPlan Other = makePlan("124.m88ksim", prof::Mode::None);
  Other.OptVariant = "layout";
  EXPECT_NE(RunKey::of(Other).Fingerprint, RunKey::of(Tagged).Fingerprint);
}

TEST(RunKeyTest, KDimensionIsAppendOnly) {
  // Classic k = 1 plans carry no ;k= dimension at all, so every
  // pre-k-BL fingerprint (and its cache file) is byte-identical to what
  // it always was; multi-iteration plans get their own cache identity.
  RunPlan Base = makePlan("124.m88ksim", prof::Mode::FlowHw);
  ASSERT_EQ(Base.Options.Config.K, 1u);
  EXPECT_EQ(RunKey::of(Base).Fingerprint.find(";k="), std::string::npos);

  RunPlan K2 = makePlan("124.m88ksim", prof::Mode::FlowHw);
  K2.Options.Config.K = 2;
  EXPECT_NE(RunKey::of(K2).Fingerprint.find(";k=2"), std::string::npos);
  EXPECT_NE(RunKey::of(Base).Fingerprint, RunKey::of(K2).Fingerprint);

  RunPlan K3 = makePlan("124.m88ksim", prof::Mode::FlowHw);
  K3.Options.Config.K = 3;
  EXPECT_NE(RunKey::of(K2).Fingerprint, RunKey::of(K3).Fingerprint);
}

TEST(RunKeyTest, PredicatePlansAreUncacheable) {
  RunPlan Plan = makePlan("124.m88ksim", prof::Mode::FlowHw);
  Plan.Options.Config.ShouldInstrument = [](const ir::Function &) {
    return true;
  };
  EXPECT_FALSE(RunKey::of(Plan).Cacheable);
}

TEST(DriverTest, MemoizedRunEqualsFreshRun) {
  Driver Memoized(/*DiskDir=*/"", /*Threads=*/2);
  OutcomePtr First =
      Memoized.run(makePlan("124.m88ksim", prof::Mode::ContextFlow));
  ASSERT_TRUE(First && First->Result.Ok);
  OutcomePtr Second =
      Memoized.run(makePlan("124.m88ksim", prof::Mode::ContextFlow));
  // The repeat is a memory hit: literally the same object.
  EXPECT_EQ(First.get(), Second.get());
  EXPECT_EQ(Memoized.scheduler().runsExecuted(), 1u);

  // And it equals a run from a driver that has never seen the plan.
  Driver Fresh(/*DiskDir=*/"", /*Threads=*/1);
  OutcomePtr Clean =
      Fresh.run(makePlan("124.m88ksim", prof::Mode::ContextFlow));
  ASSERT_TRUE(Clean && Clean->Result.Ok);
  expectOutcomesEqual(*Clean, *First);
}

TEST(DriverTest, ParallelMatchesSerial) {
  const char *Workloads[] = {"124.m88ksim", "130.li", "107.mgrid"};
  const prof::Mode Modes[] = {prof::Mode::None, prof::Mode::FlowHw,
                              prof::Mode::ContextFlow};

  Driver Parallel(/*DiskDir=*/"", /*Threads=*/4);
  Driver Serial(/*DiskDir=*/"", /*Threads=*/0);
  ASSERT_EQ(Parallel.scheduler().numThreads(), 4u);
  ASSERT_EQ(Serial.scheduler().numThreads(), 0u);

  std::vector<size_t> ParallelTickets, SerialTickets;
  for (const char *Workload : Workloads)
    for (prof::Mode M : Modes) {
      ParallelTickets.push_back(Parallel.submit(makePlan(Workload, M)));
      SerialTickets.push_back(Serial.submit(makePlan(Workload, M)));
    }
  for (size_t Index = 0; Index != ParallelTickets.size(); ++Index) {
    OutcomePtr P = Parallel.get(ParallelTickets[Index]);
    OutcomePtr S = Serial.get(SerialTickets[Index]);
    ASSERT_TRUE(P && S);
    expectOutcomesEqual(*S, *P);
  }
}

TEST(DriverTest, DuplicateSubmissionsFoldOntoOneExecution) {
  Driver D(/*DiskDir=*/"", /*Threads=*/2);
  size_t A = D.submit(makePlan("130.li", prof::Mode::FlowHw));
  size_t B = D.submit(makePlan("130.li", prof::Mode::FlowHw));
  EXPECT_NE(A, B);
  OutcomePtr OA = D.get(A), OB = D.get(B);
  EXPECT_EQ(OA.get(), OB.get());
  EXPECT_EQ(D.scheduler().runsExecuted(), 1u);
}

TEST(DriverTest, UncacheablePlansRunEveryTime) {
  Driver D(/*DiskDir=*/"", /*Threads=*/2);
  RunPlan Plan = makePlan("130.li", prof::Mode::None);
  Plan.Cacheable = false;
  size_t A = D.submit(Plan);
  size_t B = D.submit(Plan);
  OutcomePtr OA = D.get(A), OB = D.get(B);
  ASSERT_TRUE(OA && OB);
  EXPECT_NE(OA.get(), OB.get());
  EXPECT_EQ(D.scheduler().runsExecuted(), 2u);
  expectOutcomesEqual(*OA, *OB);
}

TEST(DriverTest, DiskCacheRoundTripsAcrossDrivers) {
  std::string Dir = makeTempDir();
  ASSERT_FALSE(Dir.empty());

  OutcomePtr Stored;
  {
    Driver Writer(Dir, /*Threads=*/2);
    Stored = Writer.run(makePlan("124.m88ksim", prof::Mode::ContextFlow));
    ASSERT_TRUE(Stored && Stored->Result.Ok);
    EXPECT_EQ(Writer.cache().stats().Stores, 1u);
  }

  Driver Reader(Dir, /*Threads=*/2);
  OutcomePtr Restored =
      Reader.run(makePlan("124.m88ksim", prof::Mode::ContextFlow));
  ASSERT_TRUE(Restored && Restored->Result.Ok);
  EXPECT_EQ(Reader.scheduler().runsExecuted(), 0u);
  EXPECT_EQ(Reader.cache().stats().DiskHits, 1u);
  // Restored outcomes drop the instrumented module, nothing else.
  EXPECT_EQ(Restored->Instr.M, nullptr);
  expectOutcomesEqual(*Stored, *Restored);

  std::string Cmd = "rm -rf " + Dir;
  (void)std::system(Cmd.c_str());
}

TEST(OutcomeIOTest, RejectsMismatchedFingerprint) {
  Driver D(/*DiskDir=*/"", /*Threads=*/1);
  OutcomePtr Run = D.run(makePlan("130.li", prof::Mode::Flow));
  ASSERT_TRUE(Run && Run->Result.Ok);

  std::vector<uint8_t> Bytes = serializeOutcome(*Run, "fingerprint-a");
  prof::RunOutcome Out;
  EXPECT_FALSE(deserializeOutcome(Bytes, "fingerprint-b", Out));
  EXPECT_TRUE(deserializeOutcome(Bytes, "fingerprint-a", Out));
  expectOutcomesEqual(*Run, Out);
}

TEST(OutcomeIOTest, KItersSurviveTheCacheTrip) {
  // A k = 2 outcome restored from the run cache must still know its
  // windows span two iterations — per function (the ladder level) and in
  // the instrumentation info — or the renderers would decode window ids
  // against the wrong numbering.
  Driver D(/*DiskDir=*/"", /*Threads=*/1);
  RunPlan Plan = makePlan("130.li", prof::Mode::Flow);
  Plan.Options.Config.K = 2;
  OutcomePtr Run = D.run(Plan);
  ASSERT_TRUE(Run && Run->Result.Ok);

  std::vector<uint8_t> Bytes = serializeOutcome(*Run, "fp-k2");
  prof::RunOutcome Out;
  ASSERT_TRUE(deserializeOutcome(Bytes, "fp-k2", Out));
  expectOutcomesEqual(*Run, Out);

  bool SawMultiIteration = false;
  ASSERT_EQ(Out.PathProfiles.size(), Run->PathProfiles.size());
  for (size_t I = 0; I != Out.PathProfiles.size(); ++I)
    EXPECT_EQ(Out.PathProfiles[I].KIters, Run->PathProfiles[I].KIters);
  ASSERT_EQ(Out.Instr.Functions.size(), Run->Instr.Functions.size());
  for (size_t I = 0; I != Out.Instr.Functions.size(); ++I) {
    EXPECT_EQ(Out.Instr.Functions[I].KIters, Run->Instr.Functions[I].KIters);
    SawMultiIteration |= Out.Instr.Functions[I].KIters > 1;
  }
  EXPECT_TRUE(SawMultiIteration);
}

TEST(OutcomeIOTest, RejectsMismatchedVersion) {
  Driver D(/*DiskDir=*/"", /*Threads=*/1);
  OutcomePtr Run = D.run(makePlan("130.li", prof::Mode::Flow));
  ASSERT_TRUE(Run && Run->Result.Ok);

  // A future format bump leaves old files behind; they must be rejected
  // as BadVersion (and re-executed), not misparsed. The version gate
  // fires before the checksum, so even a checksum-consistent file of
  // another version is refused.
  std::vector<uint8_t> Bytes = serializeOutcome(*Run, "fp");
  Bytes[8] += 1; // version field, little-endian low byte
  prof::RunOutcome Out;
  EXPECT_EQ(decodeOutcome(Bytes, "fp", Out), DecodeStatus::BadVersion);
  EXPECT_FALSE(deserializeOutcome(Bytes, "fp", Out));
}

TEST(DriverTest, StaleVersionFileOnDiskIsReplacedByReexecution) {
  std::string Dir = makeTempDir();
  ASSERT_FALSE(Dir.empty());
  {
    Driver Writer(Dir, /*Threads=*/1);
    OutcomePtr Run = Writer.run(makePlan("130.li", prof::Mode::Flow));
    ASSERT_TRUE(Run && Run->Result.Ok);
  }

  // Regress the version field of the file on disk, as if a format bump
  // left an old cache directory behind.
  std::string FindCmd = "ls " + Dir + "/*.ppo";
  FILE *Pipe = popen(FindCmd.c_str(), "r");
  ASSERT_NE(Pipe, nullptr);
  char PathBuf[256] = {};
  ASSERT_NE(std::fgets(PathBuf, sizeof(PathBuf), Pipe), nullptr);
  pclose(Pipe);
  std::string Path(PathBuf);
  while (!Path.empty() && Path.back() == '\n')
    Path.pop_back();
  {
    std::FILE *File = std::fopen(Path.c_str(), "r+b");
    ASSERT_NE(File, nullptr);
    std::fseek(File, 8, SEEK_SET);
    std::fputc(1, File); // version 1
    std::fclose(File);
  }

  Driver Reader(Dir, /*Threads=*/1);
  OutcomePtr Run = Reader.run(makePlan("130.li", prof::Mode::Flow));
  ASSERT_TRUE(Run && Run->Result.Ok);
  EXPECT_EQ(Reader.scheduler().runsExecuted(), 1u);
  RunCache::Stats Stats = Reader.cache().stats();
  EXPECT_EQ(Stats.DiskHits, 0u);
  EXPECT_EQ(Stats.DecodeFailures, 1u);
  EXPECT_EQ(Stats.DecodeFailuresBy[static_cast<unsigned>(
                DecodeStatus::BadVersion)],
            1u);

  std::string Cmd = "rm -rf " + Dir;
  (void)std::system(Cmd.c_str());
}

TEST(DriverTest, UnwritableCacheDirDegradesToUncached) {
  // A cache "directory" that is actually a file: mkdir and every write
  // under it fail unconditionally (even for root, where a read-only
  // directory would not).
  std::string Dir = makeTempDir();
  ASSERT_FALSE(Dir.empty());
  std::string NotADir = Dir + "/cache";
  { std::fclose(std::fopen(NotADir.c_str(), "w")); }

  {
    Driver D(NotADir, /*Threads=*/1);
    OutcomePtr Run = D.run(makePlan("130.li", prof::Mode::Flow));
    // The run still succeeds; only the persistence degraded.
    ASSERT_TRUE(Run && Run->Result.Ok);
    EXPECT_EQ(D.cache().stats().WriteFailures, 1u);
    // The memory layer still memoizes.
    OutcomePtr Again = D.run(makePlan("130.li", prof::Mode::Flow));
    EXPECT_EQ(Run.get(), Again.get());
    EXPECT_EQ(D.scheduler().runsExecuted(), 1u);
  }

  // Nothing was persisted: a fresh driver re-executes.
  Driver Fresh(NotADir, /*Threads=*/1);
  OutcomePtr Rerun = Fresh.run(makePlan("130.li", prof::Mode::Flow));
  ASSERT_TRUE(Rerun && Rerun->Result.Ok);
  EXPECT_EQ(Fresh.scheduler().runsExecuted(), 1u);
  EXPECT_EQ(Fresh.cache().stats().DiskHits, 0u);

  std::string Cmd = "rm -rf " + Dir;
  (void)std::system(Cmd.c_str());
}

TEST(SchedulerTest, NonNumericThreadsEnvKeepsParallelDefault) {
  setenv("PP_DRIVER_THREADS", "max", 1);
  // A typo must warn and keep the hardware default, not silently fall to
  // serial (atol("max") == 0).
  EXPECT_GE(RunScheduler::defaultWorkerThreads(), 4u);
  setenv("PP_DRIVER_THREADS", "2", 1);
  EXPECT_EQ(RunScheduler::defaultWorkerThreads(), 2u);
  setenv("PP_DRIVER_THREADS", "0", 1);
  EXPECT_EQ(RunScheduler::defaultWorkerThreads(), 0u);
  unsetenv("PP_DRIVER_THREADS");
}

TEST(OutcomeIOTest, RejectsTruncatedBytes) {
  Driver D(/*DiskDir=*/"", /*Threads=*/1);
  OutcomePtr Run = D.run(makePlan("130.li", prof::Mode::ContextFlow));
  ASSERT_TRUE(Run && Run->Result.Ok);

  std::vector<uint8_t> Bytes = serializeOutcome(*Run, "fp");
  for (size_t Cut : {size_t(0), size_t(7), Bytes.size() / 2,
                     Bytes.size() - 1}) {
    std::vector<uint8_t> Truncated(Bytes.begin(), Bytes.begin() + Cut);
    prof::RunOutcome Out;
    EXPECT_FALSE(deserializeOutcome(Truncated, "fp", Out))
        << "accepted " << Cut << " bytes";
  }
}

TEST(TreeImageTest, ImageRoundTripPreservesTheTree) {
  Driver D(/*DiskDir=*/"", /*Threads=*/1);
  OutcomePtr Run = D.run(makePlan("124.m88ksim", prof::Mode::ContextFlow));
  ASSERT_TRUE(Run && Run->Result.Ok && Run->Tree);

  std::unique_ptr<cct::CallingContextTree> Rebuilt =
      cct::CallingContextTree::fromImage(Run->Tree->image());
  ASSERT_TRUE(Rebuilt);
  expectTreesEqual(*Run->Tree, *Rebuilt);

  cct::CctStats A = Run->Tree->computeStats();
  cct::CctStats B = Rebuilt->computeStats();
  EXPECT_EQ(A.NumRecords, B.NumRecords);
  EXPECT_EQ(A.MaxDepth, B.MaxDepth);
  EXPECT_EQ(A.MaxReplication, B.MaxReplication);
  EXPECT_EQ(A.BackedgeSlots, B.BackedgeSlots);
  EXPECT_EQ(Run->Tree->heapBytes(), Rebuilt->heapBytes());
}

} // namespace
