//===- tests/FaultInjectionTest.cpp - driver hardening under faults -------------===//
//
// The hardening contract, proven by injection: no corruption of a cache
// file — bit flips, truncations, or adversarial stomps with a fixed-up
// checksum — may crash the decoder or be served as a cached result; a
// corrupt file on disk degrades to a re-execution that reproduces the
// clean outcome; a failed cache write degrades to memory-only caching;
// and a run failed mid-suite yields one structured error outcome while
// every other submitted run completes untouched.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "driver/FaultInjector.h"
#include "driver/OutcomeIO.h"
#include "profdb/Artifact.h"
#include "profdb/Store.h"
#include "support/Checksum.h"
#include "workloads/Spec.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace pp;
using namespace pp::driver;

namespace {

RunPlan makePlan(const std::string &Workload, prof::Mode M) {
  RunPlan Plan;
  Plan.Workload = Workload;
  Plan.Options.Config.M = M;
  return Plan;
}

std::string makeTempDir() {
  char Template[] = "/tmp/pp-fault-test-XXXXXX";
  const char *Dir = mkdtemp(Template);
  EXPECT_NE(Dir, nullptr);
  return Dir ? Dir : "";
}

void removeDir(const std::string &Dir) {
  std::string Cmd = "rm -rf " + Dir;
  (void)std::system(Cmd.c_str());
}

/// Number of .ppo files in \p Dir (the on-disk cache population).
size_t countCacheFiles(const std::string &Dir) {
  std::string Cmd = "ls " + Dir + "/*.ppo 2>/dev/null | wc -l";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  if (!Pipe)
    return 0;
  unsigned long Count = 0;
  if (std::fscanf(Pipe, "%lu", &Count) != 1)
    Count = 0;
  pclose(Pipe);
  return Count;
}

/// Disarms the process-wide injector when a test ends, so one test's
/// fault configuration can never leak into the next.
struct InjectorGuard {
  ~InjectorGuard() { FaultInjector::instance().configure({}); }
};

/// The consumer-visible core of an outcome: a degraded-then-recovered run
/// must reproduce exactly what the clean run produced.
void expectSameMeasurement(const prof::RunOutcome &A,
                           const prof::RunOutcome &B) {
  EXPECT_EQ(A.Result.Ok, B.Result.Ok);
  EXPECT_EQ(A.Result.ExitValue, B.Result.ExitValue);
  EXPECT_EQ(A.Result.ExecutedInsts, B.Result.ExecutedInsts);
  EXPECT_EQ(A.Totals, B.Totals);
}

//===----------------------------------------------------------------------===//
// Decoder corruption sweep
//===----------------------------------------------------------------------===//

TEST(FaultSweepTest, NoCorruptionCrashesOrIsAccepted) {
  Driver D(/*DiskDir=*/"", /*Threads=*/1);
  OutcomePtr Run = D.run(makePlan("130.li", prof::Mode::ContextFlow));
  ASSERT_TRUE(Run && Run->Result.Ok);

  const std::vector<uint8_t> Bytes = serializeOutcome(*Run, "fp");
  ASSERT_GT(Bytes.size(), 16u);
  {
    prof::RunOutcome Out;
    ASSERT_EQ(decodeOutcome(Bytes, "fp", Out), DecodeStatus::Ok);
  }

  unsigned Corruptions = 0;

  // Sweep A: single-bit flips across the whole file, checksum left
  // stale. CRC32 detects every single-bit error, so each one must be
  // rejected — never crash, never decode.
  constexpr unsigned NumFlips = 160;
  for (unsigned I = 0; I != NumFlips; ++I) {
    std::vector<uint8_t> Flipped = Bytes;
    size_t Offset = size_t(I) * Flipped.size() / NumFlips;
    Flipped[Offset] ^= uint8_t(1) << (I % 8);
    prof::RunOutcome Out;
    DecodeStatus Status = decodeOutcome(Flipped, "fp", Out);
    EXPECT_NE(Status, DecodeStatus::Ok)
        << "accepted a bit flip at offset " << Offset;
    ++Corruptions;
  }

  // Sweep B: truncations at every scale, from the empty file to one
  // missing byte.
  constexpr unsigned NumCuts = 60;
  for (unsigned I = 0; I != NumCuts; ++I) {
    size_t Cut = size_t(I) * Bytes.size() / NumCuts;
    std::vector<uint8_t> Truncated(Bytes.begin(), Bytes.begin() + Cut);
    prof::RunOutcome Out;
    DecodeStatus Status = decodeOutcome(Truncated, "fp", Out);
    EXPECT_NE(Status, DecodeStatus::Ok) << "accepted " << Cut << " bytes";
    ++Corruptions;
  }

  // Sweep C: stomp 8-byte windows with 0xFF and *recompute* the
  // checksum trailer, deliberately defeating the CRC gate so every
  // interior length/count check gets exercised with the worst value a
  // field can hold (e.g. a string length of ~2^64). The decoder must
  // bound-check its way to a typed rejection — or, when the stomp only
  // hit metric payload, decode cleanly — without ever reading out of
  // bounds or attempting a pathological allocation. (ASan-built runs of
  // this test check the "no out-of-bounds" half mechanically.)
  constexpr unsigned NumStomps = 100;
  for (unsigned I = 0; I != NumStomps; ++I) {
    std::vector<uint8_t> Stomped = Bytes;
    size_t Limit = Stomped.size() - 4; // keep the trailer's 4 bytes
    size_t Offset = size_t(I) * Limit / NumStomps;
    for (size_t B = Offset; B != std::min(Offset + 8, Limit); ++B)
      Stomped[B] = 0xFF;
    uint32_t Crc = crc32(Stomped.data(), Stomped.size() - 4);
    for (unsigned B = 0; B != 4; ++B)
      Stomped[Stomped.size() - 4 + B] = uint8_t(Crc >> (8 * B));
    prof::RunOutcome Out;
    DecodeStatus Status = decodeOutcome(Stomped, "fp", Out);
    EXPECT_NE(Status, DecodeStatus::BadChecksum)
        << "trailer fixup failed at offset " << Offset;
    ++Corruptions;
  }

  EXPECT_GE(Corruptions, 200u);
}

// The same three-sweep harness, pointed at the profile repository's
// artifact decoder: artifacts are durable, travel between machines, and
// are therefore just as untrusted as cache files.
TEST(FaultSweepTest, NoArtifactCorruptionCrashesOrIsAccepted) {
  Driver D(/*DiskDir=*/"", /*Threads=*/1);
  RunPlan Plan = makePlan("130.li", prof::Mode::ContextFlowHw);
  OutcomePtr Run = D.run(Plan);
  ASSERT_TRUE(Run && Run->Result.Ok);

  auto Module = workloads::buildWorkload("130.li", 1);
  ASSERT_NE(Module, nullptr);
  profdb::Artifact A = profdb::artifactFromOutcome(
      *Run, *Module, "fault-fp", "130.li", 1, Plan.Options.Config);
  const std::vector<uint8_t> Bytes = profdb::encodeArtifact(A);
  ASSERT_GT(Bytes.size(), 16u);
  {
    profdb::Artifact Out;
    ASSERT_EQ(profdb::decodeArtifact(Bytes, Out), profdb::DecodeStatus::Ok);
  }

  // Sweep A: single-bit flips with a stale checksum — CRC32 catches every
  // one of them.
  constexpr unsigned NumFlips = 160;
  for (unsigned I = 0; I != NumFlips; ++I) {
    std::vector<uint8_t> Flipped = Bytes;
    size_t Offset = size_t(I) * Flipped.size() / NumFlips;
    Flipped[Offset] ^= uint8_t(1) << (I % 8);
    profdb::Artifact Out;
    profdb::DecodeStatus Status = profdb::decodeArtifact(Flipped, Out);
    EXPECT_NE(Status, profdb::DecodeStatus::Ok)
        << "accepted a bit flip at offset " << Offset;
  }

  // Sweep B: truncations at every scale.
  constexpr unsigned NumCuts = 60;
  for (unsigned I = 0; I != NumCuts; ++I) {
    size_t Cut = size_t(I) * Bytes.size() / NumCuts;
    std::vector<uint8_t> Truncated(Bytes.begin(), Bytes.begin() + Cut);
    profdb::Artifact Out;
    EXPECT_NE(profdb::decodeArtifact(Truncated, Out),
              profdb::DecodeStatus::Ok)
        << "accepted " << Cut << " bytes";
  }

  // Sweep C: 0xFF stomps with a recomputed trailer, defeating the CRC so
  // the interior bounds checks face worst-case field values. Typed
  // rejection or a clean decode of stomped metric payload — never a
  // crash, never BadChecksum (the trailer is valid by construction).
  constexpr unsigned NumStomps = 100;
  for (unsigned I = 0; I != NumStomps; ++I) {
    std::vector<uint8_t> Stomped = Bytes;
    size_t Limit = Stomped.size() - 4;
    size_t Offset = size_t(I) * Limit / NumStomps;
    for (size_t B = Offset; B != std::min(Offset + 8, Limit); ++B)
      Stomped[B] = 0xFF;
    uint32_t Crc = crc32(Stomped.data(), Stomped.size() - 4);
    for (unsigned B = 0; B != 4; ++B)
      Stomped[Stomped.size() - 4 + B] = uint8_t(Crc >> (8 * B));
    profdb::Artifact Out;
    EXPECT_NE(profdb::decodeArtifact(Stomped, Out),
              profdb::DecodeStatus::BadChecksum)
        << "trailer fixup failed at offset " << Offset;
  }

  // Trailing garbage after a valid payload is its own typed status.
  {
    std::vector<uint8_t> Extended = Bytes;
    std::vector<uint8_t> Payload(Bytes.begin(), Bytes.end() - 4);
    Payload.push_back(0xAB);
    uint32_t Crc = crc32(Payload.data(), Payload.size());
    Extended = Payload;
    for (unsigned B = 0; B != 4; ++B)
      Extended.push_back(uint8_t(Crc >> (8 * B)));
    profdb::Artifact Out;
    EXPECT_EQ(profdb::decodeArtifact(Extended, Out),
              profdb::DecodeStatus::TrailingBytes);
  }
}

TEST(FaultSweepTest, ArtifactFileReadFoldsIoIntoStatus) {
  // A directory path and a missing path both fold into Unreadable rather
  // than a crash or a zero-length "success".
  profdb::Artifact Out;
  EXPECT_EQ(profdb::readArtifactFile("/tmp", Out),
            profdb::DecodeStatus::Unreadable);
  EXPECT_EQ(profdb::readArtifactFile("/tmp/pp-no-such-artifact.ppa", Out),
            profdb::DecodeStatus::Unreadable);
}

TEST(FaultSweepTest, StaleWriterTempsAreSweptOnListing) {
  std::string Dir = makeTempDir();
  ASSERT_FALSE(Dir.empty());

  auto Touch = [&](const std::string &Name) {
    std::ofstream Out(Dir + "/" + Name, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(Out.is_open());
    Out << "partial";
  };
  // Backdates a temp's mtime so the age-gated sweep sees it as \p Age old.
  auto SetAge = [&](const std::string &Name, time_t Age) {
    struct timeval Times[2];
    Times[0].tv_sec = Times[1].tv_sec = ::time(nullptr) - Age;
    Times[0].tv_usec = Times[1].tv_usec = 0;
    ASSERT_EQ(::utimes((Dir + "/" + Name).c_str(), Times), 0);
  };
  auto Exists = [&](const std::string &Name) {
    return ::access((Dir + "/" + Name).c_str(), F_OK) == 0;
  };

  // A writer that died between open and rename: a child that exits
  // immediately gives us a pid guaranteed dead once waitpid returns.
  pid_t Dead = fork();
  ASSERT_GE(Dead, 0);
  if (Dead == 0)
    _exit(0);
  ASSERT_EQ(waitpid(Dead, nullptr, 0), Dead);

  // Dead writer, past the grace period: the canonical orphan.
  std::string DeadOld = "ppa-00000000deadbeef.ppa.tmp." + std::to_string(Dead);
  Touch(DeadOld);
  SetAge(DeadOld, profdb::StaleTempGraceSeconds + 60);
  // Dead-probing writer, younger than the grace period: on a shared
  // filesystem this is what a *live* writer on another host looks like,
  // so the sweep must not touch it.
  std::string DeadFresh =
      "ppa-00000000feedface.ppa.tmp." + std::to_string(Dead);
  Touch(DeadFresh);
  // Live writer (us), past grace but under the hard limit: kept.
  std::string LiveOld =
      "ppa-00000000cafef00d.ppa.tmp." + std::to_string(getpid());
  Touch(LiveOld);
  SetAge(LiveOld, profdb::StaleTempGraceSeconds + 60);
  // "Live" pid but ancient: no writer holds a temp open this long, so the
  // pid must have been recycled by an unrelated process — swept.
  std::string LiveAncient =
      "ppa-00000000ba5eba11.ppa.tmp." + std::to_string(getpid());
  Touch(LiveAncient);
  SetAge(LiveAncient, profdb::StaleTempHardSeconds + 60);
  // A name that merely looks temp-ish survives any sweep.
  Touch("ppa-0000000012345678.ppa.tmp.notapid");

  // Listing a repository sweeps the orphans and only the orphans.
  std::vector<std::string> Files = profdb::listArtifactFiles(Dir);
  EXPECT_TRUE(Files.empty()); // temps never list as artifacts
  EXPECT_FALSE(Exists(DeadOld));
  EXPECT_FALSE(Exists(LiveAncient));
  EXPECT_TRUE(Exists(DeadFresh));
  EXPECT_TRUE(Exists(LiveOld));
  EXPECT_TRUE(Exists("ppa-0000000012345678.ppa.tmp.notapid"));

  // A second sweep finds nothing left to do.
  EXPECT_EQ(profdb::sweepStaleTemps(Dir), 0u);

  removeDir(Dir);
}

TEST(FaultSweepTest, StaleVersionReportsBadVersion) {
  Driver D(/*DiskDir=*/"", /*Threads=*/1);
  OutcomePtr Run = D.run(makePlan("130.li", prof::Mode::Flow));
  ASSERT_TRUE(Run && Run->Result.Ok);

  std::vector<uint8_t> Bytes = serializeOutcome(*Run, "fp");
  // A Version-1 file is a v2 file with version 1 and no trailer; the
  // version gate must fire before the checksum is even consulted.
  Bytes[8] = 1;
  Bytes.resize(Bytes.size() - 4);
  prof::RunOutcome Out;
  EXPECT_EQ(decodeOutcome(Bytes, "fp", Out), DecodeStatus::BadVersion);
}

//===----------------------------------------------------------------------===//
// Disk-layer degradation, end to end
//===----------------------------------------------------------------------===//

TEST(FaultDiskTest, CorruptFileOnDiskFallsBackToReexecution) {
  std::string Dir = makeTempDir();
  ASSERT_FALSE(Dir.empty());

  OutcomePtr Clean;
  {
    Driver Writer(Dir, /*Threads=*/1);
    Clean = Writer.run(makePlan("124.m88ksim", prof::Mode::FlowHw));
    ASSERT_TRUE(Clean && Clean->Result.Ok);
  }
  ASSERT_EQ(countCacheFiles(Dir), 1u);

  // Flip one byte in the middle of the file on disk.
  std::string Cmd = "ls " + Dir + "/*.ppo";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  ASSERT_NE(Pipe, nullptr);
  char PathBuf[256] = {};
  ASSERT_NE(std::fgets(PathBuf, sizeof(PathBuf), Pipe), nullptr);
  pclose(Pipe);
  std::string Path(PathBuf);
  while (!Path.empty() && (Path.back() == '\n' || Path.back() == ' '))
    Path.pop_back();
  {
    std::fstream File(Path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(File.is_open());
    File.seekp(200);
    char Byte = 0x5A;
    File.write(&Byte, 1);
  }

  Driver Reader(Dir, /*Threads=*/1);
  OutcomePtr Recovered =
      Reader.run(makePlan("124.m88ksim", prof::Mode::FlowHw));
  ASSERT_TRUE(Recovered && Recovered->Result.Ok);
  // The corrupt file was rejected (with a typed reason), removed, and the
  // run re-executed to the clean measurement.
  EXPECT_EQ(Reader.scheduler().runsExecuted(), 1u);
  RunCache::Stats Stats = Reader.cache().stats();
  EXPECT_EQ(Stats.DiskHits, 0u);
  EXPECT_EQ(Stats.DecodeFailures, 1u);
  expectSameMeasurement(*Clean, *Recovered);

  // The store after re-execution healed the file: a third driver hits.
  ASSERT_EQ(countCacheFiles(Dir), 1u);
  Driver Healed(Dir, /*Threads=*/1);
  OutcomePtr FromDisk =
      Healed.run(makePlan("124.m88ksim", prof::Mode::FlowHw));
  ASSERT_TRUE(FromDisk && FromDisk->Result.Ok);
  EXPECT_EQ(Healed.scheduler().runsExecuted(), 0u);
  EXPECT_EQ(Healed.cache().stats().DiskHits, 1u);

  removeDir(Dir);
}

TEST(FaultDiskTest, InjectedReadCorruptionDegradesToReexecution) {
  InjectorGuard Guard;
  std::string Dir = makeTempDir();
  ASSERT_FALSE(Dir.empty());

  OutcomePtr Clean;
  {
    Driver Writer(Dir, /*Threads=*/1);
    Clean = Writer.run(makePlan("130.li", prof::Mode::Flow));
    ASSERT_TRUE(Clean && Clean->Result.Ok);
  }

  FaultInjector::Config C;
  C.Seed = 42;
  C.FlipEveryNthRead = 1;
  FaultInjector::instance().configure(C);

  Driver Reader(Dir, /*Threads=*/1);
  OutcomePtr Recovered = Reader.run(makePlan("130.li", prof::Mode::Flow));
  ASSERT_TRUE(Recovered && Recovered->Result.Ok);
  EXPECT_EQ(Reader.scheduler().runsExecuted(), 1u);
  EXPECT_EQ(Reader.cache().stats().DecodeFailures, 1u);
  EXPECT_EQ(FaultInjector::instance().counts().ReadsCorrupted, 1u);
  expectSameMeasurement(*Clean, *Recovered);

  removeDir(Dir);
}

TEST(FaultDiskTest, InjectedTruncationDegradesToReexecution) {
  InjectorGuard Guard;
  std::string Dir = makeTempDir();
  ASSERT_FALSE(Dir.empty());

  {
    Driver Writer(Dir, /*Threads=*/1);
    OutcomePtr Clean = Writer.run(makePlan("130.li", prof::Mode::Flow));
    ASSERT_TRUE(Clean && Clean->Result.Ok);
  }

  FaultInjector::Config C;
  C.Seed = 7;
  C.TruncateEveryNthRead = 1;
  FaultInjector::instance().configure(C);

  Driver Reader(Dir, /*Threads=*/1);
  OutcomePtr Recovered = Reader.run(makePlan("130.li", prof::Mode::Flow));
  ASSERT_TRUE(Recovered && Recovered->Result.Ok);
  EXPECT_EQ(Reader.scheduler().runsExecuted(), 1u);
  EXPECT_EQ(Reader.cache().stats().DecodeFailures, 1u);

  removeDir(Dir);
}

TEST(FaultDiskTest, InjectedWriteFailureKeepsMemoryLayer) {
  InjectorGuard Guard;
  std::string Dir = makeTempDir();
  ASSERT_FALSE(Dir.empty());

  FaultInjector::Config C;
  C.FailEveryNthWrite = 1;
  FaultInjector::instance().configure(C);

  Driver D(Dir, /*Threads=*/1);
  OutcomePtr First = D.run(makePlan("130.li", prof::Mode::Flow));
  ASSERT_TRUE(First && First->Result.Ok);
  EXPECT_EQ(D.cache().stats().WriteFailures, 1u);
  EXPECT_EQ(countCacheFiles(Dir), 0u);

  // The memory layer is intact: the repeat is the same object, no rerun.
  OutcomePtr Second = D.run(makePlan("130.li", prof::Mode::Flow));
  EXPECT_EQ(First.get(), Second.get());
  EXPECT_EQ(D.scheduler().runsExecuted(), 1u);

  removeDir(Dir);
}

//===----------------------------------------------------------------------===//
// Run-failure isolation
//===----------------------------------------------------------------------===//

TEST(FaultRunTest, MidSuiteFailureLeavesOtherRowsIntact) {
  InjectorGuard Guard;
  std::string Dir = makeTempDir();
  ASSERT_FALSE(Dir.empty());

  FaultInjector::Config C;
  C.FailEveryNthRun = 1;
  C.FailRunMatching = "130.li";
  FaultInjector::instance().configure(C);

  Driver D(Dir, /*Threads=*/2);
  const char *Suite[] = {"124.m88ksim", "130.li", "107.mgrid"};
  std::vector<size_t> Tickets;
  for (const char *Workload : Suite)
    Tickets.push_back(D.submit(makePlan(Workload, prof::Mode::FlowHw)));

  OutcomePtr M88k = D.get(Tickets[0]);
  OutcomePtr Li = D.get(Tickets[1]);
  OutcomePtr Mgrid = D.get(Tickets[2]);

  // The matched run failed structurally; its neighbours are untouched.
  ASSERT_TRUE(Li);
  EXPECT_FALSE(Li->Result.Ok);
  EXPECT_NE(Li->Result.Error.find("injected fault"), std::string::npos);
  ASSERT_TRUE(M88k && Mgrid);
  EXPECT_TRUE(M88k->Result.Ok);
  EXPECT_TRUE(Mgrid->Result.Ok);
  EXPECT_EQ(D.scheduler().runsFailed(), 1u);
  EXPECT_EQ(D.scheduler().runsExecuted(), 2u);

  // Only the successful runs were persisted; the failure is not made
  // permanent for later processes.
  EXPECT_EQ(countCacheFiles(Dir), 2u);

  // A fresh driver with the fault disarmed re-executes the failed run
  // and gets the real measurement.
  FaultInjector::instance().configure({});
  Driver Retry(Dir, /*Threads=*/1);
  OutcomePtr LiRetry = Retry.run(makePlan("130.li", prof::Mode::FlowHw));
  ASSERT_TRUE(LiRetry && LiRetry->Result.Ok);
  EXPECT_EQ(Retry.scheduler().runsExecuted(), 1u);

  removeDir(Dir);
}

TEST(FaultRunTest, EveryNthRunFailsOnCadence) {
  InjectorGuard Guard;
  FaultInjector::Config C;
  C.FailEveryNthRun = 3;
  FaultInjector::instance().configure(C);

  // Serial driver: the cadence is deterministic in submission order.
  Driver D(/*DiskDir=*/"", /*Threads=*/0);
  const char *Suite[] = {"124.m88ksim", "130.li", "107.mgrid",
                         "129.compress", "134.perl", "102.swim"};
  unsigned Ok = 0, FailedRuns = 0;
  for (const char *Workload : Suite) {
    OutcomePtr Run = D.run(makePlan(Workload, prof::Mode::None));
    ASSERT_TRUE(Run);
    if (Run->Result.Ok)
      ++Ok;
    else
      ++FailedRuns;
  }
  EXPECT_EQ(FailedRuns, 2u);
  EXPECT_EQ(Ok, 4u);
  EXPECT_EQ(D.scheduler().runsFailed(), 2u);
  EXPECT_EQ(FaultInjector::instance().counts().RunsFailed, 2u);
}

TEST(FaultRunTest, UnknownWorkloadIsAStructuredFailure) {
  Driver D(/*DiskDir=*/"", /*Threads=*/1);
  OutcomePtr Bad = D.run(makePlan("999.no-such-benchmark", prof::Mode::None));
  ASSERT_TRUE(Bad);
  EXPECT_FALSE(Bad->Result.Ok);
  EXPECT_NE(Bad->Result.Error.find("unknown workload"), std::string::npos);
  EXPECT_EQ(D.scheduler().runsFailed(), 1u);

  // The driver is still fully usable afterwards.
  OutcomePtr Good = D.run(makePlan("130.li", prof::Mode::None));
  ASSERT_TRUE(Good && Good->Result.Ok);
}

//===----------------------------------------------------------------------===//
// The injector itself
//===----------------------------------------------------------------------===//

TEST(FaultInjectorTest, SameSeedSameFaults) {
  FaultInjector::Config C;
  C.Seed = 1234;
  C.FlipEveryNthRead = 2;
  C.TruncateEveryNthRead = 5;

  auto Replay = [&C] {
    FaultInjector Injector(C);
    std::vector<std::vector<uint8_t>> Mutations;
    for (unsigned I = 0; I != 20; ++I) {
      std::vector<uint8_t> Bytes(257, uint8_t(I));
      Injector.mutateCacheRead(Bytes);
      Mutations.push_back(std::move(Bytes));
    }
    return Mutations;
  };
  EXPECT_EQ(Replay(), Replay());
}

TEST(FaultInjectorTest, EnvConfigRejectsNonNumericCounts) {
  setenv("PP_FAULT_READ_FLIP", "banana", 1);
  setenv("PP_FAULT_WRITE_FAIL", "3", 1);
  setenv("PP_FAULT_SEED", "99", 1);
  FaultInjector::Config C = FaultInjector::configFromEnv();
  EXPECT_EQ(C.FlipEveryNthRead, 0u);
  EXPECT_EQ(C.FailEveryNthWrite, 3u);
  EXPECT_EQ(C.Seed, 99u);
  unsetenv("PP_FAULT_READ_FLIP");
  unsetenv("PP_FAULT_WRITE_FAIL");
  unsetenv("PP_FAULT_SEED");
}

} // namespace
