#!/usr/bin/env sh
# Golden-test wrapper for the observability report: runs pp with
# --obs-out into a temp file and prints pp-report obs's rendering of it —
# the bytes the golden locks in. Works because obs reports are
# byte-stable for a fixed RunPlan (virtual timestamps, fixed field
# order), whatever the worker-pool size.
#
#   ppobs.sh <pp> <pp-report> <mode> <workload>
set -eu

PP="$1"
PPREPORT="$2"
MODE="$3"
WORKLOAD="$4"

tmp=$(mktemp "${TMPDIR:-/tmp}/pp-golden-obs.XXXXXX")
trap 'rm -f "$tmp"' EXIT

"$PP" --mode="$MODE" "$WORKLOAD" --obs-out="$tmp" >/dev/null

exec "$PPREPORT" obs "$tmp"
