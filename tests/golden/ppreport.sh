#!/usr/bin/env sh
# Golden-test wrapper for the profile repository: runs pp with
# --profile-out into a fresh temp repository, picks the artifact of the
# profiled (non-Base) run, and prints pp-report's stdout for it — the
# bytes the golden locks in.
#
#   ppreport.sh <pp> <pp-report> <mode> <workload> <report-cmd> [args...]
set -eu

PP="$1"
PPREPORT="$2"
MODE="$3"
WORKLOAD="$4"
shift 4

tmp=$(mktemp -d "${TMPDIR:-/tmp}/pp-golden-ppa.XXXXXX")
trap 'rm -rf "$tmp"' EXIT

"$PP" --mode="$MODE" "$WORKLOAD" --profile-out="$tmp" >/dev/null

# pp deposits two artifacts: the Base (uninstrumented) reference run and
# the profiled run. The report header names the schema; skip Base.
art=
for f in "$tmp"/*.ppa; do
    if "$PPREPORT" cct-stats "$f" 2>/dev/null | head -n 1 | grep -q ", Base,"; then
        continue
    fi
    art=$f
done
if [ -z "$art" ]; then
    echo "ppreport.sh: no profiled artifact produced" >&2
    exit 1
fi

exec "$PPREPORT" "$@" "$art"
