#!/usr/bin/env sh
# Golden stdout regression runner: executes a command with a neutral
# environment and byte-diffs its stdout against the recorded expectation.
#
#   run_golden.sh <golden-file> <command> [args...]
#
# To refresh an expectation after an intentional output change:
#   <command> [args...] > tests/golden/<golden-file>
set -u

golden="$1"
shift

# Neutralise every knob that could perturb output: engine choice, disk
# cache reuse, worker-pool stats, fault injection, artifact emission.
unset PP_VM_ENGINE PP_RUN_CACHE_DIR PP_DRIVER_STATS PP_DRIVER_SERIAL \
      PP_DRIVER_THREADS PP_FAULT_SEED PP_FAULT_RUN_FAIL_MATCH \
      PP_PROFILE_OUT PP_PROFDB_THREADS \
      PP_OBS PP_OBS_OUT PP_OBS_TRACE 2>/dev/null

tmp="${TMPDIR:-/tmp}/golden.$$"
"$@" > "$tmp"
status=$?
if [ "$status" -ne 0 ]; then
    echo "run_golden.sh: command failed with status $status: $*" >&2
    rm -f "$tmp"
    exit 1
fi

if ! diff -u "$golden" "$tmp"; then
    echo "run_golden.sh: output diverged from $golden" >&2
    rm -f "$tmp"
    exit 1
fi
rm -f "$tmp"
exit 0
