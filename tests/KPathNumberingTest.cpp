//===- tests/KPathNumberingTest.cpp - k-iteration numbering tests -------------===//
//
// The k-BL layer's contract: k = 1 reproduces the legacy numbering value
// for value, window sums decompose into per-level segment values that
// re-sum to the window id, the fallback ladder picks the largest
// non-overflowing k deterministically, and overflowed or misdirected
// queries refuse with a typed status instead of asserting (or worse,
// reading unassigned values in release builds).
//
//===----------------------------------------------------------------------===//

#include "bl/InstrumentationPlan.h"
#include "bl/KPathNumbering.h"
#include "ir/IRBuilder.h"
#include "prof/Session.h"
#include "support/Prng.h"
#include "workloads/Examples.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

using namespace pp;
using namespace pp::ir;

namespace {

/// A chain of \p Diamonds if/else diamonds: path count 2^Diamonds.
std::unique_ptr<Module> buildDiamondChain(int Diamonds) {
  auto M = std::make_unique<Module>();
  Function *F = M->addFunction("main", 0);
  BasicBlock *Prev = F->addBlock("entry");
  IRBuilder IRB(F, Prev);
  Reg C = IRB.movImm(1);
  for (int Step = 0; Step != Diamonds; ++Step) {
    BasicBlock *Left = F->addBlock("l" + std::to_string(Step));
    BasicBlock *Right = F->addBlock("r" + std::to_string(Step));
    BasicBlock *Join = F->addBlock("j" + std::to_string(Step));
    IRB.setBlock(Prev);
    IRB.condBr(C, Left, Right);
    IRB.setBlock(Left);
    IRB.br(Join);
    IRB.setBlock(Right);
    IRB.br(Join);
    Prev = Join;
  }
  IRB.setBlock(Prev);
  IRB.retImm(0);
  M->setMain(F);
  return M;
}

/// A loop whose body is a chain of \p Diamonds diamonds: 2^Diamonds
/// acyclic paths per iteration, so the k-window count scales like
/// 2^(Diamonds*k) and the ladder trips at a predictable k.
std::unique_ptr<Module> buildLoopedDiamonds(int Diamonds,
                                            int64_t Iterations = 8) {
  auto M = std::make_unique<Module>();
  Function *F = M->addFunction("main", 0);
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Head = F->addBlock("head");
  BasicBlock *Done = F->addBlock("done");
  IRBuilder IRB(F, Entry);
  Reg I = IRB.movImm(0);
  IRB.br(Head);
  BasicBlock *Prev = F->addBlock("body");
  IRB.setBlock(Head);
  Reg More = IRB.cmpLtImm(I, Iterations);
  IRB.condBr(More, Prev, Done);
  IRB.setBlock(Prev);
  Reg Parity = IRB.andImm(I, 1);
  for (int Step = 0; Step != Diamonds; ++Step) {
    BasicBlock *Left = F->addBlock("l" + std::to_string(Step));
    BasicBlock *Right = F->addBlock("r" + std::to_string(Step));
    BasicBlock *Join = F->addBlock("j" + std::to_string(Step));
    IRB.condBr(Parity, Left, Right);
    IRB.setBlock(Left);
    IRB.br(Join);
    IRB.setBlock(Right);
    IRB.br(Join);
    IRB.setBlock(Join);
    Prev = Join;
  }
  IRB.setBlock(Prev);
  Reg NextI = IRB.addImm(I, 1);
  IRB.movRegInto(I, NextI);
  IRB.br(Head); // the back edge
  IRB.setBlock(Done);
  IRB.retImm(0);
  M->setMain(F);
  return M;
}

/// entry conditionally branches to itself: the back edge targets the entry
/// block, so its EntryPseudo edge is elided (a self-loop on ENTRY would be
/// cyclic) and the restart value is 0.
std::unique_ptr<Module> buildEntrySelfLoop() {
  auto M = std::make_unique<Module>();
  Function *F = M->addFunction("main", 0);
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Done = F->addBlock("done");
  IRBuilder IRB(F, Entry);
  Reg C = IRB.movImm(0);
  IRB.condBr(C, Entry, Done);
  IRB.setBlock(Done);
  IRB.retImm(0);
  M->setMain(F);
  return M;
}

/// Two sequential loops, so a path can start after one back edge and end
/// with a different one.
std::unique_ptr<Module> buildTwoLoops() {
  auto M = std::make_unique<Module>();
  Function *F = M->addFunction("main", 0);
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *H1 = F->addBlock("h1");
  BasicBlock *B1 = F->addBlock("b1");
  BasicBlock *H2 = F->addBlock("h2");
  BasicBlock *B2 = F->addBlock("b2");
  BasicBlock *Done = F->addBlock("done");
  IRBuilder IRB(F, Entry);
  Reg C = IRB.movImm(0);
  IRB.br(H1);
  IRB.setBlock(H1);
  IRB.condBr(C, B1, H2);
  IRB.setBlock(B1);
  IRB.br(H1); // back edge 1
  IRB.setBlock(H2);
  IRB.condBr(C, B2, Done);
  IRB.setBlock(B2);
  IRB.br(H2); // back edge 2
  IRB.setBlock(Done);
  IRB.retImm(0);
  M->setMain(F);
  return M;
}

/// A conditional branch whose arms share the target: two parallel CFG
/// edges whose paths have identical node sequences.
std::unique_ptr<Module> buildParallelEdges() {
  auto M = std::make_unique<Module>();
  Function *F = M->addFunction("main", 0);
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Join = F->addBlock("join");
  IRBuilder IRB(F, Entry);
  Reg C = IRB.movImm(0);
  IRB.condBr(C, Join, Join);
  IRB.setBlock(Join);
  IRB.retImm(0);
  M->setMain(F);
  return M;
}

/// Random function shaped like PathNumberingTest's generator: ret / br /
/// condbr with random targets gives DAGs, nested and irreducible loops.
std::unique_ptr<Module> randomModule(uint64_t Seed, unsigned NumBlocks) {
  Prng R(Seed);
  auto M = std::make_unique<Module>();
  Function *F = M->addFunction("main", 0);
  std::vector<BasicBlock *> Blocks;
  for (unsigned Index = 0; Index != NumBlocks; ++Index)
    Blocks.push_back(F->addBlock("b" + std::to_string(Index)));
  IRBuilder IRB(F);
  for (unsigned Index = 0; Index != NumBlocks; ++Index) {
    IRB.setBlock(Blocks[Index]);
    uint64_t Kind = R.nextBelow(10);
    if (Kind < 2 || NumBlocks == 1) {
      IRB.retImm(0);
      continue;
    }
    Reg C = IRB.movImm(static_cast<int64_t>(R.nextBelow(2)));
    if (Kind < 5) {
      IRB.br(Blocks[R.nextBelow(NumBlocks)]);
    } else {
      BasicBlock *T1 = Blocks[R.nextBelow(NumBlocks)];
      BasicBlock *T2 = Blocks[R.nextBelow(NumBlocks)];
      IRB.condBr(C, T1, T2);
    }
  }
  M->setMain(F);
  return M;
}

unsigned findBackedge(const cfg::Cfg &G) {
  for (unsigned EdgeId = 0; EdgeId != G.numEdges(); ++EdgeId)
    if (G.isBackedge(EdgeId))
      return EdgeId;
  return ~0u;
}

/// The full identity of a window: per segment, the back edges it spans and
/// the ordinary edges it traverses (node lists alone can collide on
/// parallel edges).
std::string windowKey(const std::vector<bl::RegeneratedPath> &Segments) {
  std::string Key;
  for (const bl::RegeneratedPath &Segment : Segments) {
    Key += "S" + std::to_string(Segment.EntryBackedge) + "E" +
           std::to_string(Segment.ExitBackedge);
    for (unsigned EdgeId : Segment.Edges)
      Key += "." + std::to_string(EdgeId);
    Key += "|";
  }
  return Key;
}

uint64_t sumOfSegments(const bl::KPathNumbering &KPN,
                       const std::vector<bl::RegeneratedPath> &Segments) {
  uint64_t Sum = 0;
  for (unsigned Level = 0; Level != Segments.size(); ++Level)
    Sum += KPN.segmentValue(Segments[Level], Level);
  return Sum;
}

} // namespace

// --- Typed refusals on overflowed numberings ---------------------------------

TEST(NumberingQueries, OverflowedNumberingRefusesTyped) {
  // 70 diamonds exceed 2^62 potential paths: no values exist, and every
  // query must say so instead of reading unassigned state.
  auto M = buildDiamondChain(70);
  cfg::Cfg G(*M->main());
  bl::PathNumbering PN(G);
  ASSERT_FALSE(PN.valid());

  uint64_t Value = 0;
  bl::RegeneratedPath Path;
  EXPECT_EQ(PN.tryValueForCfgEdge(0, Value),
            bl::NumberingQueryStatus::Overflowed);
  EXPECT_EQ(PN.tryRegenerate(0, Path), bl::NumberingQueryStatus::Overflowed);
  unsigned Backedge = findBackedge(G);
  if (Backedge != ~0u) {
    EXPECT_EQ(PN.tryBackedgeEndValue(Backedge, Value),
              bl::NumberingQueryStatus::Overflowed);
    EXPECT_EQ(PN.tryBackedgeStartValue(Backedge, Value),
              bl::NumberingQueryStatus::Overflowed);
  }
  EXPECT_STREQ(
      bl::numberingQueryStatusName(bl::NumberingQueryStatus::Overflowed),
      "overflowed");
}

TEST(NumberingQueriesDeathTest, NarrowAccessorsAbortWhenOverflowed) {
  auto M = buildDiamondChain(70);
  cfg::Cfg G(*M->main());
  bl::PathNumbering PN(G);
  ASSERT_FALSE(PN.valid());
  // The narrow accessors promise a value; with none to give, they must die
  // loudly in every build mode, not just under asserts.
  EXPECT_DEATH(PN.valueForCfgEdge(0), "refused: overflowed");
  EXPECT_DEATH(PN.regenerate(0), "refused: overflowed");
}

TEST(NumberingQueries, MisdirectedQueriesRefuseTyped) {
  auto M = workloads::buildLoopModule(10);
  cfg::Cfg G(*M->main());
  bl::PathNumbering PN(G);
  ASSERT_TRUE(PN.valid());

  unsigned Backedge = findBackedge(G);
  ASSERT_NE(Backedge, ~0u);
  unsigned Ordinary = ~0u;
  for (unsigned EdgeId = 0; EdgeId != G.numEdges(); ++EdgeId)
    if (!G.isBackedge(EdgeId))
      Ordinary = EdgeId;
  ASSERT_NE(Ordinary, ~0u);

  uint64_t Value = 0;
  EXPECT_EQ(PN.tryBackedgeEndValue(Ordinary, Value),
            bl::NumberingQueryStatus::NotABackedge);
  EXPECT_EQ(PN.tryBackedgeStartValue(Ordinary, Value),
            bl::NumberingQueryStatus::NotABackedge);
  EXPECT_EQ(PN.tryValueForCfgEdge(Backedge, Value),
            bl::NumberingQueryStatus::IsABackedge);

  bl::RegeneratedPath Path;
  EXPECT_EQ(PN.tryRegenerate(PN.numPaths(), Path),
            bl::NumberingQueryStatus::OutOfRange);
  EXPECT_EQ(PN.tryRegenerate(PN.numPaths() - 1, Path),
            bl::NumberingQueryStatus::Ok);
}

TEST(NumberingQueries, UnreachableEdgeRefusesTyped) {
  auto M = std::make_unique<Module>();
  Function *F = M->addFunction("main", 0);
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Dead = F->addBlock("dead");
  BasicBlock *Done = F->addBlock("done");
  IRBuilder IRB(F, Entry);
  IRB.br(Done);
  IRB.setBlock(Dead); // no predecessors: unreachable from ENTRY
  IRB.br(Done);
  IRB.setBlock(Done);
  IRB.retImm(0);
  M->setMain(F);

  cfg::Cfg G(*F);
  bl::PathNumbering PN(G);
  ASSERT_TRUE(PN.valid());
  unsigned DeadEdge = ~0u;
  for (unsigned EdgeId = 0; EdgeId != G.numEdges(); ++EdgeId)
    if (G.edge(EdgeId).From == 1) // block "dead"
      DeadEdge = EdgeId;
  ASSERT_NE(DeadEdge, ~0u);
  uint64_t Value = 0;
  EXPECT_EQ(PN.tryValueForCfgEdge(DeadEdge, Value),
            bl::NumberingQueryStatus::Unreachable);
}

// --- Pinned corner cases of the numbering core -------------------------------

TEST(PathNumberingCorners, EntrySelfLoopElidesTheEntryPseudoEdge) {
  auto M = buildEntrySelfLoop();
  cfg::Cfg G(*M->main());
  bl::PathNumbering PN(G);
  ASSERT_TRUE(PN.valid());

  unsigned Backedge = findBackedge(G);
  ASSERT_NE(Backedge, ~0u);
  EXPECT_EQ(G.edge(Backedge).To, G.entryNode());
  // The b_start = ENTRY -> ENTRY pseudo edge would be a self-loop; it is
  // elided and the runtime restart value is 0, reported as Ok.
  EXPECT_EQ(PN.entryPseudoIndexForBackedge(Backedge), ~0u);
  uint64_t Start = ~uint64_t(0);
  EXPECT_EQ(PN.tryBackedgeStartValue(Backedge, Start),
            bl::NumberingQueryStatus::Ok);
  EXPECT_EQ(Start, 0u);

  // Both paths restart exactly like ordinary entry paths: neither claims
  // to start after a back edge.
  ASSERT_EQ(PN.numPaths(), 2u);
  int EndsWith = 0;
  for (uint64_t Sum = 0; Sum != 2; ++Sum) {
    bl::RegeneratedPath Path = PN.regenerate(Sum);
    EXPECT_FALSE(Path.StartsAfterBackedge);
    EXPECT_EQ(Path.EntryBackedge, ~0u);
    if (Path.EndsWithBackedge) {
      ++EndsWith;
      EXPECT_EQ(Path.ExitBackedge, Backedge);
    }
  }
  EXPECT_EQ(EndsWith, 1);

  // The k-numbering layers over the elided pseudo edge the same way:
  // every window decodes and re-sums.
  bl::KPathNumbering KPN(PN, 3);
  EXPECT_EQ(KPN.effectiveK(), 3u);
  for (uint64_t Sum = 0; Sum != KPN.numPaths(); ++Sum) {
    std::vector<bl::RegeneratedPath> Segments = KPN.regenerate(Sum);
    EXPECT_EQ(sumOfSegments(KPN, Segments), Sum);
  }
}

TEST(PathNumberingCorners, PathCanStartAndEndWithDistinctBackedges) {
  auto M = buildTwoLoops();
  cfg::Cfg G(*M->main());
  bl::PathNumbering PN(G);
  ASSERT_TRUE(PN.valid());

  bool Found = false;
  for (uint64_t Sum = 0; Sum != PN.numPaths(); ++Sum) {
    bl::RegeneratedPath Path = PN.regenerate(Sum);
    if (Path.StartsAfterBackedge && Path.EndsWithBackedge &&
        Path.EntryBackedge != Path.ExitBackedge) {
      // h1 -> h2 -> b2: resumes after loop 1's back edge, ends taking
      // loop 2's.
      EXPECT_NE(Path.EntryBackedge, ~0u);
      EXPECT_NE(Path.ExitBackedge, ~0u);
      Found = true;
    }
  }
  EXPECT_TRUE(Found)
      << "no path starting and ending with distinct back edges";
}

TEST(PathNumberingCorners, ParallelEdgesAreDistinctPaths) {
  auto M = buildParallelEdges();
  cfg::Cfg G(*M->main());
  bl::PathNumbering PN(G);
  ASSERT_TRUE(PN.valid());
  // Two paths with identical node sequences, distinguished only by which
  // parallel edge they took.
  ASSERT_EQ(PN.numPaths(), 2u);
  bl::RegeneratedPath P0 = PN.regenerate(0);
  bl::RegeneratedPath P1 = PN.regenerate(1);
  EXPECT_EQ(P0.Nodes, P1.Nodes);
  ASSERT_EQ(P0.Edges.size(), P1.Edges.size());
  EXPECT_NE(P0.Edges, P1.Edges);
}

// --- k = 1 is the legacy numbering -------------------------------------------

TEST(KPathNumbering, KOneMatchesLegacyValueForValue) {
  auto M = workloads::buildLoopModule(10);
  cfg::Cfg G(*M->main());
  bl::PathNumbering PN(G);
  ASSERT_TRUE(PN.valid());
  bl::KPathNumbering KPN(PN, 1);

  EXPECT_EQ(KPN.requestedK(), 1u);
  EXPECT_EQ(KPN.effectiveK(), 1u);
  EXPECT_FALSE(KPN.multiIteration());
  EXPECT_EQ(KPN.numPaths(), PN.numPaths());
  for (unsigned Index = 0; Index != PN.transformedEdges().size(); ++Index)
    EXPECT_EQ(KPN.levelValue(0, Index), PN.transformedEdges()[Index].Val)
        << "transformed edge " << Index;

  for (uint64_t Sum = 0; Sum != PN.numPaths(); ++Sum) {
    std::vector<bl::RegeneratedPath> Segments = KPN.regenerate(Sum);
    ASSERT_EQ(Segments.size(), 1u);
    bl::RegeneratedPath Legacy = PN.regenerate(Sum);
    EXPECT_EQ(Segments[0].Nodes, Legacy.Nodes);
    EXPECT_EQ(Segments[0].Edges, Legacy.Edges);
    EXPECT_EQ(Segments[0].StartsAfterBackedge, Legacy.StartsAfterBackedge);
    EXPECT_EQ(Segments[0].EndsWithBackedge, Legacy.EndsWithBackedge);
    EXPECT_EQ(Segments[0].EntryBackedge, Legacy.EntryBackedge);
    EXPECT_EQ(Segments[0].ExitBackedge, Legacy.ExitBackedge);
  }
}

// --- The fallback ladder -----------------------------------------------------

TEST(KPathNumbering, LadderFallsBackDeterministically) {
  // 25 diamonds in a loop: ~2^26 windows per extra iteration, so k = 2
  // fits under 2^62 but k = 3 does not. Requesting 4 must settle on 2.
  auto M = buildLoopedDiamonds(25);
  cfg::Cfg G(*M->main());
  bl::PathNumbering PN(G);
  ASSERT_TRUE(PN.valid());

  bl::KPathNumbering KPN(PN, 4);
  EXPECT_EQ(KPN.requestedK(), 4u);
  EXPECT_GE(KPN.effectiveK(), 1u);
  EXPECT_LT(KPN.effectiveK(), 4u);
  EXPECT_EQ(KPN.effectiveK(), 2u);
  EXPECT_LT(KPN.numPaths(), bl::PathNumbering::MaxPaths);

  // Deterministic across constructions.
  bl::KPathNumbering Again(PN, 4);
  EXPECT_EQ(Again.effectiveK(), KPN.effectiveK());
  EXPECT_EQ(Again.numPaths(), KPN.numPaths());

  // A smaller request that fits is honoured exactly.
  bl::KPathNumbering K2(PN, 2);
  EXPECT_EQ(K2.effectiveK(), 2u);
  EXPECT_EQ(K2.numPaths(), KPN.numPaths());
}

TEST(KPathNumbering, WindowCountIsMonotoneInK) {
  auto M = workloads::buildLoopModule(10);
  cfg::Cfg G(*M->main());
  bl::PathNumbering PN(G);
  ASSERT_TRUE(PN.valid());
  uint64_t Prev = 0;
  for (unsigned K = 1; K <= 5; ++K) {
    bl::KPathNumbering KPN(PN, K);
    ASSERT_EQ(KPN.effectiveK(), K);
    EXPECT_GE(KPN.numPaths(), Prev) << "k = " << K;
    Prev = KPN.numPaths();
  }
}

// --- Round-trip fuzz over random CFGs ----------------------------------------

class RandomCfgKPathTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomCfgKPathTest, WindowsDecodeAndResum) {
  auto M = randomModule(GetParam() * 131 + 17, 3 + GetParam() % 8);
  cfg::Cfg G(*M->main());
  bl::PathNumbering PN(G);
  ASSERT_TRUE(PN.valid());

  for (unsigned K = 1; K <= 4; ++K) {
    bl::KPathNumbering KPN(PN, K);
    ASSERT_GE(KPN.effectiveK(), 1u);
    ASSERT_LE(KPN.effectiveK(), K);
    uint64_t Limit = std::min<uint64_t>(KPN.numPaths(), 1500);
    std::set<std::string> Seen;
    for (uint64_t Sum = 0; Sum != Limit; ++Sum) {
      std::vector<bl::RegeneratedPath> Segments;
      ASSERT_EQ(KPN.tryRegenerate(Sum, Segments),
                bl::NumberingQueryStatus::Ok)
          << "k = " << K << " sum " << Sum;
      ASSERT_FALSE(Segments.empty());
      ASSERT_LE(Segments.size(), KPN.effectiveK());

      // Segments chain through back edges: every segment but the last
      // ends with one, and the next segment resumes right after it.
      for (size_t Index = 0; Index + 1 < Segments.size(); ++Index) {
        EXPECT_TRUE(Segments[Index].EndsWithBackedge);
        EXPECT_TRUE(Segments[Index + 1].StartsAfterBackedge ||
                    G.edge(Segments[Index].ExitBackedge).To == G.entryNode());
        if (Segments[Index + 1].StartsAfterBackedge)
          EXPECT_EQ(Segments[Index + 1].EntryBackedge,
                    Segments[Index].ExitBackedge);
      }

      // The decomposition re-sums to the window id, and no two windows
      // decode to the same segment sequence.
      EXPECT_EQ(sumOfSegments(KPN, Segments), Sum);
      EXPECT_TRUE(Seen.insert(windowKey(Segments)).second)
          << "duplicate window for sum " << Sum;

      // k = 1 must match the legacy decoder byte for byte.
      if (K == 1) {
        bl::RegeneratedPath Legacy = PN.regenerate(Sum);
        ASSERT_EQ(Segments.size(), 1u);
        EXPECT_EQ(Segments[0].Nodes, Legacy.Nodes);
        EXPECT_EQ(Segments[0].Edges, Legacy.Edges);
      }
    }
    std::vector<bl::RegeneratedPath> Segments;
    EXPECT_EQ(KPN.tryRegenerate(KPN.numPaths(), Segments),
              bl::NumberingQueryStatus::OutOfRange);
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, RandomCfgKPathTest,
                         ::testing::Range(uint64_t(0), uint64_t(15)));

// --- End to end through the profiler -----------------------------------------

TEST(KPathProfile, WindowFrequenciesConserveSegmentCounts) {
  // Run the same loop under k = 1 and k = 2 (both hashed, so the probe
  // placement matches). Every executed acyclic path lands in exactly one
  // window, so sum(freq * segments-per-window) over the k = 2 profile must
  // equal sum(freq) over the k = 1 profile.
  auto M = workloads::buildLoopModule(10);

  prof::SessionOptions Base;
  Base.Config.M = prof::Mode::FlowHw;
  Base.Config.K = 1;
  Base.Config.Plan.ArrayThreshold = 1; // force hashing in both runs
  prof::RunOutcome RunK1 = prof::runProfile(*M, Base);
  ASSERT_TRUE(RunK1.Result.Ok) << RunK1.Result.Error;

  prof::SessionOptions K2 = Base;
  K2.Config.K = 2;
  prof::RunOutcome RunK2 = prof::runProfile(*M, K2);
  ASSERT_TRUE(RunK2.Result.Ok) << RunK2.Result.Error;

  uint64_t SegmentsK1 = 0, SegmentsK2 = 0, WindowsWithMany = 0;
  for (const prof::FunctionPathProfile &Profile : RunK1.PathProfiles) {
    if (!Profile.HasProfile)
      continue;
    EXPECT_EQ(Profile.KIters, 1u);
    for (const prof::PathEntry &Entry : Profile.Paths)
      SegmentsK1 += Entry.Freq;
  }
  for (const prof::FunctionPathProfile &Profile : RunK2.PathProfiles) {
    if (!Profile.HasProfile)
      continue;
    ASSERT_LT(Profile.FuncId, RunK2.Instr.Functions.size());
    const prof::FunctionInstrInfo &Info =
        RunK2.Instr.Functions[Profile.FuncId];
    EXPECT_EQ(Profile.KIters, Info.KIters);
    if (Profile.KIters == 1) {
      for (const prof::PathEntry &Entry : Profile.Paths)
        SegmentsK2 += Entry.Freq;
      continue;
    }
    EXPECT_EQ(Profile.KIters, 2u);
    EXPECT_TRUE(Profile.Hashed);
    // Decode every counted window against the pristine module.
    bl::KPathBundle Bundle(*M->function(Profile.FuncId), Profile.KIters);
    ASSERT_EQ(Bundle.KPN.effectiveK(), Profile.KIters);
    EXPECT_EQ(Bundle.KPN.numPaths(), Profile.NumPaths);
    for (const prof::PathEntry &Entry : Profile.Paths) {
      std::vector<bl::RegeneratedPath> Segments;
      ASSERT_EQ(Bundle.KPN.tryRegenerate(Entry.PathSum, Segments),
                bl::NumberingQueryStatus::Ok)
          << "window " << Entry.PathSum;
      SegmentsK2 += Entry.Freq * Segments.size();
      WindowsWithMany += Segments.size() > 1;
    }
  }
  EXPECT_EQ(SegmentsK1, SegmentsK2);
  // The loop actually produced multi-iteration windows.
  EXPECT_GT(WindowsWithMany, 0u);
}

TEST(KPathProfile, LadderedFunctionStillProfilesAtSmallerK) {
  // The diamond-heavy loop cannot number k = 3 windows; the run must fall
  // back per function (here to k = 2) and record the level it chose.
  auto M = buildLoopedDiamonds(25);

  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::Flow;
  Options.Config.K = 3;
  prof::RunOutcome Run = prof::runProfile(*M, Options);
  ASSERT_TRUE(Run.Result.Ok) << Run.Result.Error;

  bool SawLadder = false;
  for (const prof::FunctionInstrInfo &Info : Run.Instr.Functions) {
    if (!Info.HasPathProfile)
      continue;
    EXPECT_GE(Info.KIters, 1u);
    EXPECT_LE(Info.KIters, 3u);
    SawLadder |= Info.KIters < 3;
  }
  EXPECT_TRUE(SawLadder) << "no function took the fallback ladder";
}
