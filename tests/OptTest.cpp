//===- tests/OptTest.cpp - profile-guided layout pass --------------------------===//

#include "opt/Layout.h"

#include "ir/Verifier.h"
#include "prof/Session.h"
#include "workloads/Examples.h"
#include "workloads/Spec.h"

#include <gtest/gtest.h>

using namespace pp;
using prof::Mode;

namespace {

prof::RunOutcome profileOf(ir::Module &M) {
  prof::SessionOptions Options;
  Options.Config.M = Mode::FlowHw;
  return prof::runProfile(M, Options);
}

prof::RunOutcome baselineOf(ir::Module &M) {
  prof::SessionOptions Options;
  Options.Config.M = Mode::None;
  return prof::runProfile(M, Options);
}

} // namespace

TEST(OptLayout, PreservesBehaviourAcrossTheSuite) {
  for (const workloads::WorkloadSpec &Spec : workloads::spec95Suite()) {
    auto M = Spec.Build(1);
    prof::RunOutcome Before = baselineOf(*M);
    prof::RunOutcome Profile = profileOf(*M);
    ASSERT_TRUE(Profile.Result.Ok) << Spec.Name;

    opt::LayoutResult Result = opt::layoutHotPathsFirst(*M, Profile);
    std::vector<std::string> Errors;
    ASSERT_TRUE(ir::verifyModule(*M, Errors)) << Spec.Name << ": "
                                              << Errors.front();
    prof::RunOutcome After = baselineOf(*M);
    ASSERT_TRUE(After.Result.Ok) << Spec.Name;
    EXPECT_EQ(After.Result.ExitValue, Before.Result.ExitValue) << Spec.Name;
    EXPECT_EQ(After.Result.ExecutedInsts, Before.Result.ExecutedInsts)
        << Spec.Name;
    EXPECT_GT(Result.FunctionsConsidered, 0u) << Spec.Name;
  }
}

TEST(OptLayout, IsIdempotent) {
  auto M = workloads::buildWorkload("129.compress", 1);
  prof::RunOutcome Profile = profileOf(*M);
  opt::layoutHotPathsFirst(*M, Profile);

  // Re-profile the already-laid-out module: the hottest paths now lead,
  // so a second pass must change nothing.
  prof::RunOutcome Second = profileOf(*M);
  opt::LayoutResult Again = opt::layoutHotPathsFirst(*M, Second);
  EXPECT_EQ(Again.FunctionsReordered, 0u);
}

TEST(OptLayout, SingleFunctionReorderPutsHotPathAtFront) {
  auto M = workloads::buildFig1Module();
  prof::RunOutcome Profile = profileOf(*M);
  ir::Function &Fig1 = *M->findFunction("fig1");
  unsigned Fig1Id = Fig1.id();

  // fig1's most frequent paths are ACDF/ACDEF (selectors land on C twice
  // as often); after layout the C block must come right after A.
  bool Changed = opt::layoutHotPathFirst(Fig1, Profile.PathProfiles[Fig1Id]);
  EXPECT_TRUE(Changed);
  EXPECT_EQ(Fig1.entry()->name(), "A");
  EXPECT_EQ(Fig1.block(1)->name(), "C");
  std::vector<std::string> Errors;
  EXPECT_TRUE(ir::verifyModule(*M, Errors)) << Errors.front();
}

TEST(OptLayout, NoProfileMeansNoChange) {
  auto M = workloads::buildFig1Module();
  prof::FunctionPathProfile Empty;
  EXPECT_FALSE(
      opt::layoutHotPathFirst(*M->findFunction("fig1"), Empty));
}
