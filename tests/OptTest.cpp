//===- tests/OptTest.cpp - profile-guided optimizer ---------------------------===//
//
// The optimizer subsystem end to end: the layout pass's edge cases, the
// pass pipeline over the whole suite (behaviour preserved, work visible
// in the typed per-pass stats), the inliner's refusal taxonomy (cost,
// recursion), and the ProfileView's typed artifact rejections — a profile
// that cannot have come from the module at hand must refuse loudly, never
// silently no-op.
//
//===----------------------------------------------------------------------===//

#include "opt/Layout.h"
#include "opt/Pass.h"

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "profdb/Artifact.h"
#include "prof/Session.h"
#include "workloads/Examples.h"
#include "workloads/Spec.h"

#include <gtest/gtest.h>

using namespace pp;
using prof::Mode;

namespace {

prof::RunOutcome profileOf(ir::Module &M, Mode Md = Mode::FlowHw) {
  prof::SessionOptions Options;
  Options.Config.M = Md;
  Options.Config.Pic0 = hw::Event::Cycles;
  Options.Config.Pic1 = hw::Event::ICacheMiss;
  return prof::runProfile(M, Options);
}

prof::RunOutcome baselineOf(ir::Module &M) {
  prof::SessionOptions Options;
  Options.Config.M = Mode::None;
  return prof::runProfile(M, Options);
}

/// Profiles \p M under \p Md and packages the outcome as the artifact the
/// optimizer consumes (the same path bench/pgo_loop and pp-opt use).
profdb::Artifact artifactOf(ir::Module &M, Mode Md) {
  prof::SessionOptions Options;
  Options.Config.M = Md;
  Options.Config.Pic0 = hw::Event::Cycles;
  Options.Config.Pic1 = hw::Event::ICacheMiss;
  prof::RunOutcome Out = prof::runProfile(M, Options);
  EXPECT_TRUE(Out.Result.Ok) << Out.Result.Error;
  return profdb::artifactFromOutcome(Out, M, "opt-test", "t", 1,
                                     Options.Config);
}

const std::vector<opt::PassKind> AllPasses = {
    opt::PassKind::Layout, opt::PassKind::Superblock, opt::PassKind::Inline};

/// main() calls callee(CalleeParams args) once; the callee does enough
/// work that its CCT subtree dominates the run's PIC0, putting the site
/// safely above the inliner's hotness threshold.
std::unique_ptr<ir::Module> makeCallerModule(unsigned CalleeParams) {
  auto M = std::make_unique<ir::Module>();
  ir::Function *Callee = M->addFunction("callee", CalleeParams);
  {
    ir::IRBuilder B(Callee, Callee->addBlock("entry"));
    ir::Reg Acc = B.movImm(1);
    for (int Step = 0; Step != 8; ++Step)
      Acc = B.addImm(Acc, 3);
    B.ret(Acc);
  }
  ir::Function *Main = M->addFunction("main", 0);
  {
    ir::IRBuilder B(Main, Main->addBlock("entry"));
    std::vector<ir::Reg> Args;
    for (unsigned Arg = 0; Arg != CalleeParams; ++Arg)
      Args.push_back(B.movImm(Arg));
    B.ret(B.call(Callee, Args));
  }
  M->setMain(Main);
  return M;
}

/// main() -> fact(6), fact self-recursive: the fact->fact CCT slot is a
/// recursion backedge carrying nearly all the run's cost.
std::unique_ptr<ir::Module> makeRecursiveModule() {
  auto M = std::make_unique<ir::Module>();
  ir::Function *Fact = M->addFunction("fact", 1);
  {
    ir::BasicBlock *Entry = Fact->addBlock("entry");
    ir::BasicBlock *Base = Fact->addBlock("base");
    ir::BasicBlock *Rec = Fact->addBlock("rec");
    ir::IRBuilder B(Fact, Entry);
    B.condBr(B.cmpLeImm(/*n=*/0, 0), Base, Rec);
    B.setBlock(Base);
    B.retImm(1);
    B.setBlock(Rec);
    ir::Reg Next = B.subImm(0, 1);
    B.ret(B.mul(0, B.call(Fact, {Next})));
  }
  ir::Function *Main = M->addFunction("main", 0);
  {
    ir::IRBuilder B(Main, Main->addBlock("entry"));
    B.ret(B.call(Fact, {B.movImm(6)}));
  }
  M->setMain(Main);
  return M;
}

} // namespace

TEST(OptLayout, PreservesBehaviourAcrossTheSuite) {
  for (const workloads::WorkloadSpec &Spec : workloads::spec95Suite()) {
    auto M = Spec.Build(1);
    prof::RunOutcome Before = baselineOf(*M);
    prof::RunOutcome Profile = profileOf(*M);
    ASSERT_TRUE(Profile.Result.Ok) << Spec.Name;

    opt::LayoutResult Result = opt::layoutHotPathsFirst(*M, Profile);
    std::vector<std::string> Errors;
    ASSERT_TRUE(ir::verifyModule(*M, Errors)) << Spec.Name << ": "
                                              << Errors.front();
    prof::RunOutcome After = baselineOf(*M);
    ASSERT_TRUE(After.Result.Ok) << Spec.Name;
    EXPECT_EQ(After.Result.ExitValue, Before.Result.ExitValue) << Spec.Name;
    EXPECT_EQ(After.Result.ExecutedInsts, Before.Result.ExecutedInsts)
        << Spec.Name;
    EXPECT_GT(Result.FunctionsConsidered, 0u) << Spec.Name;
  }
}

TEST(OptLayout, IsIdempotent) {
  auto M = workloads::buildWorkload("129.compress", 1);
  prof::RunOutcome Profile = profileOf(*M);
  opt::layoutHotPathsFirst(*M, Profile);

  // Re-profile the already-laid-out module: the hottest paths now lead,
  // so a second pass must change nothing.
  prof::RunOutcome Second = profileOf(*M);
  opt::LayoutResult Again = opt::layoutHotPathsFirst(*M, Second);
  EXPECT_EQ(Again.FunctionsReordered, 0u);
}

TEST(OptLayout, SingleFunctionReorderPutsHotPathAtFront) {
  auto M = workloads::buildFig1Module();
  prof::RunOutcome Profile = profileOf(*M);
  ir::Function &Fig1 = *M->findFunction("fig1");
  unsigned Fig1Id = Fig1.id();

  // fig1's most frequent paths are ACDF/ACDEF (selectors land on C twice
  // as often); after layout the C block must come right after A.
  bool Changed = opt::layoutHotPathFirst(Fig1, Profile.PathProfiles[Fig1Id]);
  EXPECT_TRUE(Changed);
  EXPECT_EQ(Fig1.entry()->name(), "A");
  EXPECT_EQ(Fig1.block(1)->name(), "C");
  std::vector<std::string> Errors;
  EXPECT_TRUE(ir::verifyModule(*M, Errors)) << Errors.front();
}

TEST(OptLayout, NoProfileMeansNoChange) {
  auto M = workloads::buildFig1Module();
  prof::FunctionPathProfile Empty;
  EXPECT_FALSE(
      opt::layoutHotPathFirst(*M->findFunction("fig1"), Empty));
}

TEST(OptLayout, ColdEntryStaysFirstAndReorderIsIdempotent) {
  // A hot trace that never mentions the entry (a path starting at a loop
  // head): the entry must stay first anyway, and re-applying the same
  // trace must be a counted no-op, not layout churn.
  ir::Module M;
  ir::Function *F = M.addFunction("main", 0);
  M.setMain(F);
  ir::BasicBlock *Entry = F->addBlock("entry");
  ir::BasicBlock *A = F->addBlock("a");
  ir::BasicBlock *B = F->addBlock("b");
  ir::IRBuilder IRB(F, Entry);
  IRB.condBr(IRB.movImm(1), A, B);
  IRB.setBlock(A);
  IRB.retImm(1);
  IRB.setBlock(B);
  IRB.retImm(2);

  EXPECT_TRUE(opt::reorderTraceFirst(*F, {B}));
  EXPECT_EQ(F->entry()->name(), "entry");
  EXPECT_EQ(F->block(1)->name(), "b");
  std::vector<std::string> Errors;
  EXPECT_TRUE(ir::verifyModule(M, Errors)) << Errors.front();
  EXPECT_FALSE(opt::reorderTraceFirst(*F, {B}));
}

TEST(OptLayout, SingleBlockFunctionNeverChurns) {
  ir::Module M;
  ir::Function *F = M.addFunction("main", 0);
  M.setMain(F);
  ir::IRBuilder IRB(F, F->addBlock("entry"));
  IRB.retImm(0);
  EXPECT_FALSE(opt::reorderTraceFirst(*F, {F->entry()}));
}

TEST(OptPipeline, SuitePreservesBehaviourAndDoesVisibleWork) {
  unsigned TotalDuplicated = 0, TotalInlined = 0, TotalReordered = 0;
  for (const workloads::WorkloadSpec &Spec : workloads::spec95Suite()) {
    auto Pristine = Spec.Build(1);
    prof::RunOutcome Before = baselineOf(*Pristine);
    profdb::Artifact A = artifactOf(*Pristine, Mode::ContextFlowHw);

    // Resolve against a fresh copy, as pp-opt does: the pristine module
    // already carries no instrumentation, but the fresh build proves the
    // artifact's identity checks accept a structural clone.
    auto M = Spec.Build(1);
    opt::ProfileView View;
    ASSERT_EQ(opt::ProfileView::build(A, *M, View), opt::ViewStatus::Ok)
        << Spec.Name;
    opt::PipelineResult Result =
        opt::runPipeline(*M, View, AllPasses, opt::PassOptions());
    ASSERT_TRUE(Result.Ok) << Spec.Name << ": " << Result.Error;
    ASSERT_EQ(Result.Passes.size(), AllPasses.size()) << Spec.Name;
    for (const opt::PassStats &S : Result.Passes) {
      TotalDuplicated += S.BlocksDuplicated;
      TotalInlined += S.SitesInlined;
      TotalReordered += S.FunctionsChanged;
    }

    prof::RunOutcome After = baselineOf(*M);
    ASSERT_TRUE(After.Result.Ok) << Spec.Name;
    EXPECT_EQ(After.Result.ExitValue, Before.Result.ExitValue) << Spec.Name;
  }
  // The pipeline must actually do things somewhere in the suite — every
  // pass's work shows up in its typed stats, not just in the IR.
  EXPECT_GT(TotalReordered, 0u);
  EXPECT_GT(TotalDuplicated, 0u);
  EXPECT_GT(TotalInlined, 0u);
}

TEST(OptInline, InlinesAHotZeroOverheadSite) {
  auto M = makeCallerModule(0);
  prof::RunOutcome Before = baselineOf(*M);
  profdb::Artifact A = artifactOf(*M, Mode::ContextFlowHw);

  opt::ProfileView View;
  ASSERT_EQ(opt::ProfileView::build(A, *M, View), opt::ViewStatus::Ok);
  opt::PassStats Stats = opt::runInlinePass(*M, View, opt::PassOptions());
  EXPECT_EQ(Stats.SitesInlined, 1u);
  EXPECT_EQ(Stats.CostRefusals, 0u);

  std::vector<std::string> Errors;
  ASSERT_TRUE(ir::verifyModule(*M, Errors)) << Errors.front();
  prof::RunOutcome After = baselineOf(*M);
  EXPECT_EQ(After.Result.ExitValue, Before.Result.ExitValue);
}

TEST(OptInline, RefusesSitesThatCostMoreThanTheCall) {
  // Two parameters + a returned value = 3 extra executed instructions per
  // invocation on this VM (the Call marshals them itself); the default
  // overhead line is 1, so the site is hot, safe — and refused.
  auto M = makeCallerModule(2);
  profdb::Artifact A = artifactOf(*M, Mode::ContextFlowHw);

  opt::ProfileView View;
  ASSERT_EQ(opt::ProfileView::build(A, *M, View), opt::ViewStatus::Ok);
  opt::PassStats Stats = opt::runInlinePass(*M, View, opt::PassOptions());
  EXPECT_EQ(Stats.SitesInlined, 0u);
  EXPECT_GE(Stats.CostRefusals, 1u);

  // Raising the overhead line past the marshalling cost admits the site.
  auto M2 = makeCallerModule(2);
  prof::RunOutcome Before = baselineOf(*M2);
  profdb::Artifact A2 = artifactOf(*M2, Mode::ContextFlowHw);
  opt::ProfileView View2;
  ASSERT_EQ(opt::ProfileView::build(A2, *M2, View2), opt::ViewStatus::Ok);
  opt::PassOptions Loose;
  Loose.InlineMaxOverhead = 3;
  opt::PassStats Stats2 = opt::runInlinePass(*M2, View2, Loose);
  EXPECT_EQ(Stats2.SitesInlined, 1u);
  prof::RunOutcome After = baselineOf(*M2);
  EXPECT_EQ(After.Result.ExitValue, Before.Result.ExitValue);
}

TEST(OptInline, RefusesRecursionBackedges) {
  auto M = makeRecursiveModule();
  prof::RunOutcome Before = baselineOf(*M);
  profdb::Artifact A = artifactOf(*M, Mode::ContextFlowHw);

  opt::ProfileView View;
  ASSERT_EQ(opt::ProfileView::build(A, *M, View), opt::ViewStatus::Ok);
  opt::PassOptions Loose;
  Loose.InlineMaxOverhead = 100; // isolate the recursion refusal
  opt::PassStats Stats = opt::runInlinePass(*M, View, Loose);
  EXPECT_GE(Stats.RecursionRefusals, 1u);

  std::vector<std::string> Errors;
  ASSERT_TRUE(ir::verifyModule(*M, Errors)) << Errors.front();
  prof::RunOutcome After = baselineOf(*M);
  EXPECT_EQ(After.Result.ExitValue, Before.Result.ExitValue);
}

TEST(OptProfileView, RefusesSampledAcquisition) {
  auto M = workloads::buildWorkload("129.compress", 1);
  profdb::Artifact A = artifactOf(*M, Mode::FlowHw);
  A.Schema.Acquisition = "overflow";
  opt::ProfileView View;
  EXPECT_EQ(opt::ProfileView::build(A, *M, View),
            opt::ViewStatus::CrossAcquisition);
}

TEST(OptProfileView, RefusesSchemaMismatch) {
  auto M = workloads::buildWorkload("129.compress", 1);
  {
    // An unknown mode name cannot be interpreted at all.
    profdb::Artifact A = artifactOf(*M, Mode::FlowHw);
    A.Schema.Mode = "telepathy";
    opt::ProfileView View;
    EXPECT_EQ(opt::ProfileView::build(A, *M, View),
              opt::ViewStatus::SchemaMismatch);
  }
  {
    // A mode that recorded neither paths nor a CCT holds nothing to
    // optimize from.
    profdb::Artifact A = artifactOf(*M, Mode::None);
    opt::ProfileView View;
    EXPECT_EQ(opt::ProfileView::build(A, *M, View),
              opt::ViewStatus::SchemaMismatch);
  }
}

TEST(OptProfileView, RefusesEmptyPathTables) {
  auto M = workloads::buildWorkload("129.compress", 1);
  profdb::Artifact A = artifactOf(*M, Mode::FlowHw);
  for (prof::FunctionPathProfile &Profile : A.PathProfiles)
    Profile.Paths.clear();
  opt::ProfileView View;
  EXPECT_EQ(opt::ProfileView::build(A, *M, View),
            opt::ViewStatus::EmptyPathTables);
}

TEST(OptProfileView, RefusesFunctionTableMismatch) {
  auto M = workloads::buildWorkload("129.compress", 1);
  {
    profdb::Artifact A = artifactOf(*M, Mode::FlowHw);
    ASSERT_FALSE(A.Functions.empty());
    A.Functions[0] += "_renamed";
    opt::ProfileView View;
    EXPECT_EQ(opt::ProfileView::build(A, *M, View),
              opt::ViewStatus::FunctionTableMismatch);
  }
  {
    // An artifact collected from a different program entirely.
    profdb::Artifact A = artifactOf(*M, Mode::FlowHw);
    auto Other = workloads::buildWorkload("099.go", 1);
    opt::ProfileView View;
    EXPECT_EQ(opt::ProfileView::build(A, *Other, View),
              opt::ViewStatus::FunctionTableMismatch);
  }
}

TEST(OptProfileView, RefusesPathSpaceMismatch) {
  auto M = workloads::buildWorkload("129.compress", 1);
  profdb::Artifact A = artifactOf(*M, Mode::FlowHw);
  bool Poisoned = false;
  for (prof::FunctionPathProfile &Profile : A.PathProfiles)
    if (Profile.HasProfile && !Profile.Paths.empty()) {
      Profile.Paths.front().PathSum = uint64_t(1) << 62;
      Poisoned = true;
      break;
    }
  ASSERT_TRUE(Poisoned);
  opt::ProfileView View;
  EXPECT_EQ(opt::ProfileView::build(A, *M, View),
            opt::ViewStatus::PathSpaceMismatch);
}

TEST(OptProfileView, KeepsRankedPathsHottestFirst) {
  auto M = workloads::buildWorkload("129.compress", 1);
  profdb::Artifact A = artifactOf(*M, Mode::FlowHw);
  opt::ProfileView View;
  ASSERT_EQ(opt::ProfileView::build(A, *M, View), opt::ViewStatus::Ok);
  ASSERT_TRUE(View.hasPaths());
  for (unsigned Id = 0; Id != View.numFunctions(); ++Id) {
    const opt::FunctionHotness &FH = View.function(Id);
    if (!FH.HasPaths)
      continue;
    ASSERT_FALSE(FH.Paths.empty());
    EXPECT_LE(FH.Paths.size(), opt::MaxPathsKept);
    EXPECT_EQ(FH.Hottest.PathSum, FH.Paths.front().PathSum);
    bool UseMetric = false;
    for (const opt::HotPath &HP : FH.Paths)
      UseMetric |= HP.Metric0 != 0;
    for (size_t P = 1; P < FH.Paths.size(); ++P) {
      uint64_t Prev = UseMetric ? FH.Paths[P - 1].Metric0 : FH.Paths[P - 1].Freq;
      uint64_t Cur = UseMetric ? FH.Paths[P].Metric0 : FH.Paths[P].Freq;
      EXPECT_GE(Prev, Cur) << "func " << Id << " rank " << P;
    }
  }
}
