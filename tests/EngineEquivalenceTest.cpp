//===- tests/EngineEquivalenceTest.cpp - reference vs threaded engine ---------===//
//
// The differential layer behind the two-engine VM: every observable a run
// produces — RunResult (including error strings), ground-truth counter
// totals, path profiles, reconstructed edge profiles, and the serialized
// CCT — must be bit-identical between the reference interpreter and the
// predecoded threaded engine, for every profiling mode, over a wide sweep
// of random programs that exercise recursion, indirect calls, switches,
// the FP scoreboard, setjmp/longjmp unwinding, and signal delivery.
//
// $PP_ENGINE_EQ_SEEDS widens the sweep (default: 64 seeds).
//
//===----------------------------------------------------------------------===//

#include "cct/Export.h"
#include "prof/Oracle.h"
#include "prof/Session.h"

#include "RandomProgram.h"

#include <gtest/gtest.h>

#include <map>

using namespace pp;
using prof::Mode;

namespace {

constexpr Mode AllModes[] = {Mode::None,      Mode::Edge,
                             Mode::Flow,      Mode::FlowHw,
                             Mode::Context,   Mode::ContextHw,
                             Mode::ContextFlow, Mode::ContextFlowHw};

testutil::RandomProgramOptions fullCoverage() {
  testutil::RandomProgramOptions Opts;
  Opts.WithFp = true;
  Opts.WithSetjmp = true;
  Opts.WithSignalHandler = true;
  return Opts;
}

/// Asserts that two runs are observably identical, bit for bit.
void expectSameOutcome(const prof::RunOutcome &Ref, const prof::RunOutcome &Thr,
                       const std::string &Label) {
  EXPECT_EQ(Ref.Result.Ok, Thr.Result.Ok) << Label;
  EXPECT_EQ(Ref.Result.Error, Thr.Result.Error) << Label;
  EXPECT_EQ(Ref.Result.ExitValue, Thr.Result.ExitValue) << Label;
  EXPECT_EQ(Ref.Result.ExecutedInsts, Thr.Result.ExecutedInsts) << Label;

  // Ground-truth event totals: every cycle, miss, stall, and mispredict.
  for (unsigned E = 0; E != hw::NumEvents; ++E)
    EXPECT_EQ(Ref.Totals[E], Thr.Totals[E])
        << Label << " event " << hw::eventName(static_cast<hw::Event>(E));

  // Path profiles, including the per-path hardware metrics.
  ASSERT_EQ(Ref.PathProfiles.size(), Thr.PathProfiles.size()) << Label;
  for (size_t Id = 0; Id != Ref.PathProfiles.size(); ++Id) {
    const prof::FunctionPathProfile &A = Ref.PathProfiles[Id];
    const prof::FunctionPathProfile &B = Thr.PathProfiles[Id];
    EXPECT_EQ(A.FuncId, B.FuncId) << Label;
    EXPECT_EQ(A.HasProfile, B.HasProfile) << Label;
    EXPECT_EQ(A.NumPaths, B.NumPaths) << Label;
    EXPECT_EQ(A.Hashed, B.Hashed) << Label;
    ASSERT_EQ(A.Paths.size(), B.Paths.size()) << Label << " func " << Id;
    for (size_t P = 0; P != A.Paths.size(); ++P) {
      EXPECT_EQ(A.Paths[P].PathSum, B.Paths[P].PathSum) << Label;
      EXPECT_EQ(A.Paths[P].Freq, B.Paths[P].Freq) << Label;
      EXPECT_EQ(A.Paths[P].Metric0, B.Paths[P].Metric0) << Label;
      EXPECT_EQ(A.Paths[P].Metric1, B.Paths[P].Metric1) << Label;
    }
  }

  // Edge profiles reconstructed from chord counters.
  ASSERT_EQ(Ref.EdgeProfiles.size(), Thr.EdgeProfiles.size()) << Label;
  for (size_t Id = 0; Id != Ref.EdgeProfiles.size(); ++Id) {
    EXPECT_EQ(Ref.EdgeProfiles[Id].HasProfile, Thr.EdgeProfiles[Id].HasProfile)
        << Label;
    EXPECT_EQ(Ref.EdgeProfiles[Id].EdgeCounts, Thr.EdgeProfiles[Id].EdgeCounts)
        << Label << " func " << Id;
    EXPECT_EQ(Ref.EdgeProfiles[Id].Invocations,
              Thr.EdgeProfiles[Id].Invocations)
        << Label;
  }

  // The CCT, compared through both export formats.
  ASSERT_EQ(static_cast<bool>(Ref.Tree), static_cast<bool>(Thr.Tree)) << Label;
  if (Ref.Tree) {
    EXPECT_EQ(cct::serialize(*Ref.Tree), cct::serialize(*Thr.Tree)) << Label;
    EXPECT_EQ(cct::exportDot(*Ref.Tree), cct::exportDot(*Thr.Tree)) << Label;
  }
}

class EngineEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

// The main sweep: one random program per seed, run under every profiling
// mode on both engines, with signals firing throughout.
TEST_P(EngineEquivalenceTest, AllModesBitIdentical) {
  auto M = testutil::makeRandomProgram(GetParam(), fullCoverage());

  for (Mode Md : AllModes) {
    prof::SessionOptions Options;
    Options.Config.M = Md;
    Options.SignalHandler = "sighandler";
    Options.SignalInterval = 97;

    Options.Engine = vm::Engine::Reference;
    prof::RunOutcome Ref = prof::runProfile(*M, Options);
    Options.Engine = vm::Engine::Threaded;
    prof::RunOutcome Thr = prof::runProfile(*M, Options);

    std::string Label = std::string("mode=") + prof::modeName(Md) + " seed=" +
                        std::to_string(GetParam());
    EXPECT_TRUE(Ref.Result.Ok) << Label << ": " << Ref.Result.Error;
    expectSameOutcome(Ref, Thr, Label);
  }
}

// Tracer parity at the Vm level: the oracle profiles built from tracer
// callbacks (path walks, edge counts, call counts) must match exactly —
// the callbacks fire in the same order with the same arguments.
TEST_P(EngineEquivalenceTest, OracleTracerParity) {
  auto M = testutil::makeRandomProgram(GetParam(), fullCoverage());

  auto RunWith = [&](vm::Engine E, prof::OracleProfiler &Oracle) {
    hw::Machine Machine;
    vm::Vm VM(*M, Machine);
    VM.setEngine(E);
    VM.setTracer(&Oracle);
    return VM.run();
  };

  prof::OracleProfiler RefOracle(*M), ThrOracle(*M);
  vm::RunResult Ref = RunWith(vm::Engine::Reference, RefOracle);
  vm::RunResult Thr = RunWith(vm::Engine::Threaded, ThrOracle);
  ASSERT_TRUE(Ref.Ok) << Ref.Error;
  ASSERT_TRUE(Thr.Ok) << Thr.Error;
  EXPECT_EQ(Ref.ExitValue, Thr.ExitValue);
  EXPECT_EQ(Ref.ExecutedInsts, Thr.ExecutedInsts);

  for (size_t Id = 0; Id != M->numFunctions(); ++Id) {
    std::map<uint64_t, uint64_t> RefPaths(RefOracle.pathFreqs(Id).begin(),
                                          RefOracle.pathFreqs(Id).end());
    std::map<uint64_t, uint64_t> ThrPaths(ThrOracle.pathFreqs(Id).begin(),
                                          ThrOracle.pathFreqs(Id).end());
    EXPECT_EQ(RefPaths, ThrPaths) << "func " << Id;
    EXPECT_EQ(RefOracle.edgeCounts(Id), ThrOracle.edgeCounts(Id))
        << "func " << Id;
    EXPECT_EQ(RefOracle.callCount(Id), ThrOracle.callCount(Id))
        << "func " << Id;
  }
}

// Failure parity: a run that dies must die identically — same error
// string, same executed-instruction count at the point of death.
TEST_P(EngineEquivalenceTest, BudgetExhaustionIsIdentical) {
  auto M = testutil::makeRandomProgram(GetParam(), fullCoverage());

  auto RunWith = [&](vm::Engine E, uint64_t MaxInsts) {
    hw::Machine Machine;
    vm::Vm VM(*M, Machine);
    VM.setEngine(E);
    VM.setMaxInsts(MaxInsts);
    return VM.run();
  };

  // Probe the program's full length, then allow only half of it so the
  // budget trips mid-run on every seed.
  vm::RunResult Probe = RunWith(vm::Engine::Reference, uint64_t(1) << 34);
  ASSERT_TRUE(Probe.Ok) << Probe.Error;
  uint64_t Budget = Probe.ExecutedInsts / 2;
  ASSERT_GT(Budget, 0u);

  vm::RunResult Ref = RunWith(vm::Engine::Reference, Budget);
  vm::RunResult Thr = RunWith(vm::Engine::Threaded, Budget);
  EXPECT_EQ(Ref.Ok, Thr.Ok);
  EXPECT_EQ(Ref.Error, Thr.Error);
  EXPECT_EQ(Ref.ExecutedInsts, Thr.ExecutedInsts);
  EXPECT_FALSE(Ref.Ok);
  EXPECT_EQ(Ref.Error, "instruction budget exhausted (likely an infinite loop)");
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, EngineEquivalenceTest,
    ::testing::Range<uint64_t>(
        0, testutil::seedCountFromEnv("PP_ENGINE_EQ_SEEDS", 64)));
