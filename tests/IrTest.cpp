//===- tests/IrTest.cpp - IR construction, verifier, printer, clone ----------===//

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace pp;
using namespace pp::ir;

namespace {

std::unique_ptr<Module> makeDiamond() {
  auto M = std::make_unique<Module>();
  Function *F = M->addFunction("main", 0);
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Left = F->addBlock("left");
  BasicBlock *Right = F->addBlock("right");
  BasicBlock *Join = F->addBlock("join");
  IRBuilder IRB(F, Entry);
  Reg C = IRB.movImm(1);
  IRB.condBr(C, Left, Right);
  IRB.setBlock(Left);
  IRB.br(Join);
  IRB.setBlock(Right);
  IRB.br(Join);
  IRB.setBlock(Join);
  IRB.retImm(0);
  M->setMain(F);
  return M;
}

} // namespace

TEST(Ir, BuilderProducesVerifiableModule) {
  auto M = makeDiamond();
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M, Errors)) << Errors.front();
}

TEST(Ir, SuccessorOrderIsCanonical) {
  auto M = makeDiamond();
  BasicBlock *Entry = M->main()->entry();
  ASSERT_EQ(Entry->numSuccessors(), 2u);
  EXPECT_EQ(Entry->successor(0)->name(), "left");  // taken edge first
  EXPECT_EQ(Entry->successor(1)->name(), "right");
  EXPECT_EQ(M->main()->block(1)->numSuccessors(), 1u);
  EXPECT_EQ(M->main()->block(3)->numSuccessors(), 0u);
}

TEST(Ir, SetSuccessorRedirects) {
  auto M = makeDiamond();
  Function *F = M->main();
  BasicBlock *NewBlock = F->addBlock("interposed");
  IRBuilder IRB(F, NewBlock);
  IRB.br(F->block(3));
  F->entry()->setSuccessor(0, NewBlock);
  EXPECT_EQ(F->entry()->successor(0), NewBlock);
}

TEST(Ir, VerifierCatchesMissingTerminator) {
  Module M;
  Function *F = M.addFunction("main", 0);
  BasicBlock *Entry = F->addBlock("entry");
  IRBuilder IRB(F, Entry);
  IRB.movImm(1); // no terminator
  M.setMain(F);
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(M, Errors));
  EXPECT_NE(Errors.front().find("terminator"), std::string::npos);
}

TEST(Ir, VerifierCatchesCrossFunctionBranch) {
  Module M;
  Function *F = M.addFunction("main", 0);
  Function *G = M.addFunction("other", 0);
  BasicBlock *GEntry = G->addBlock("gentry");
  IRBuilder GB(G, GEntry);
  GB.retImm(0);
  BasicBlock *Entry = F->addBlock("entry");
  IRBuilder IRB(F, Entry);
  IRB.br(GEntry); // branch into another function
  M.setMain(F);
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(M, Errors));
}

TEST(Ir, VerifierCatchesArityMismatch) {
  Module M;
  Function *Callee = M.addFunction("callee", 2);
  IRBuilder CB(Callee, Callee->addBlock("entry"));
  CB.retImm(0);
  Function *F = M.addFunction("main", 0);
  IRBuilder IRB(F, F->addBlock("entry"));
  Inst BadCall;
  BadCall.Op = Opcode::Call;
  BadCall.Callee = Callee;
  BadCall.Dst = F->freshReg();
  BadCall.Args = {}; // expects 2
  IRB.append(BadCall);
  IRB.retImm(0);
  M.setMain(F);
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(M, Errors));
}

TEST(Ir, VerifierCatchesRegisterOutOfRange) {
  Module M;
  Function *F = M.addFunction("main", 0);
  IRBuilder IRB(F, F->addBlock("entry"));
  Inst Bad;
  Bad.Op = Opcode::Add;
  Bad.Dst = F->freshReg();
  Bad.A = 999; // out of range
  Bad.BIsImm = true;
  Bad.Imm = 1;
  IRB.append(Bad);
  IRB.retImm(0);
  M.setMain(F);
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(M, Errors));
}

TEST(Ir, GlobalsGetDistinctAlignedAddresses) {
  Module M;
  size_t A = M.addGlobal("a", 100);
  size_t B = M.addGlobal("b", 8);
  EXPECT_GE(M.global(A).Addr, layout::GlobalBase);
  EXPECT_EQ(M.global(A).Addr % 16, 0u);
  EXPECT_GE(M.global(B).Addr, M.global(A).Addr + 100);
  EXPECT_EQ(M.global(B).Addr % 16, 0u);
}

TEST(Ir, CloneIsDeepAndRemapped) {
  auto M = makeDiamond();
  M->addGlobal("table", 64);
  auto Clone = M->clone();

  ASSERT_EQ(Clone->numFunctions(), M->numFunctions());
  ASSERT_TRUE(Clone->main());
  EXPECT_NE(Clone->main(), M->main());
  EXPECT_EQ(Clone->main()->name(), "main");
  EXPECT_EQ(Clone->numGlobals(), 1u);
  EXPECT_EQ(Clone->global(0).Addr, M->global(0).Addr);

  // Branch targets must point into the clone, not the original.
  BasicBlock *CloneEntry = Clone->main()->entry();
  EXPECT_EQ(CloneEntry->successor(0)->parent(), Clone->main());

  // Mutating the clone leaves the original untouched.
  Clone->main()->addBlock("extra");
  EXPECT_EQ(M->main()->numBlocks(), 4u);
  EXPECT_EQ(Clone->main()->numBlocks(), 5u);

  // New globals in the clone do not collide with original addresses.
  size_t NewIndex = Clone->addGlobal("after", 8);
  EXPECT_GT(Clone->global(NewIndex).Addr, M->global(0).Addr);
}

TEST(Ir, PrinterMentionsStructure) {
  auto M = makeDiamond();
  std::string Text = printModule(*M);
  EXPECT_NE(Text.find("func @main(0)"), std::string::npos);
  EXPECT_NE(Text.find("entry:"), std::string::npos);
  EXPECT_NE(Text.find("condbr"), std::string::npos);
  EXPECT_NE(Text.find("@left"), std::string::npos);
  EXPECT_NE(Text.find("main @main"), std::string::npos);
}

TEST(Ir, PrinterRendersCallsAndMemory) {
  Module M;
  Function *Callee = M.addFunction("f", 1);
  IRBuilder CB(Callee, Callee->addBlock("entry"));
  CB.retImm(0);
  Function *F = M.addFunction("main", 0);
  IRBuilder IRB(F, F->addBlock("entry"));
  Reg X = IRB.movImm(7);
  Reg Addr = IRB.movImm(0x1000);
  IRB.store(Addr, 8, X);
  Reg L = IRB.load(Addr, 8);
  IRB.call(Callee, {L});
  IRB.retImm(0);
  M.setMain(F);
  std::string Text = printFunction(*F);
  EXPECT_NE(Text.find("store8 ["), std::string::npos);
  EXPECT_NE(Text.find("load8 "), std::string::npos);
  EXPECT_NE(Text.find("call "), std::string::npos);
  EXPECT_NE(Text.find("@f ("), std::string::npos);
}

TEST(Ir, FunctionCodeSizeCounts) {
  auto M = makeDiamond();
  EXPECT_EQ(M->main()->numInsts(), M->numInsts());
  EXPECT_EQ(M->main()->numInsts(), 5u); // mov, condbr, br, br, ret
}
