//===- tests/CfgTest.cpp - CFG snapshot, back edges, topo order ---------------===//

#include "cfg/Cfg.h"
#include "ir/IRBuilder.h"
#include "workloads/Examples.h"

#include <gtest/gtest.h>

#include <set>

using namespace pp;
using namespace pp::ir;

TEST(Cfg, Fig1GraphShape) {
  auto M = workloads::buildFig1Module();
  Function *F = M->findFunction("fig1");
  ASSERT_NE(F, nullptr);
  cfg::Cfg G(*F);

  // 6 blocks + virtual EXIT.
  EXPECT_EQ(G.numNodes(), 7u);
  EXPECT_EQ(G.entryNode(), 0u);
  EXPECT_EQ(G.exitNode(), 6u);
  EXPECT_EQ(G.block(G.exitNode()), nullptr);

  // Edges: A->{C,B}, B->{C,D}, C->D, D->{F,E}, E->F, F->EXIT = 9.
  EXPECT_EQ(G.numEdges(), 9u);
  EXPECT_EQ(G.numBackedges(), 0u);
  for (unsigned Node = 0; Node != G.numNodes(); ++Node)
    EXPECT_TRUE(G.isReachable(Node));

  // The synthetic exit edge of the return block carries SuccIndex -1.
  unsigned RetNode = F->numBlocks() - 1; // block F
  ASSERT_EQ(G.outEdges(RetNode).size(), 1u);
  EXPECT_EQ(G.edge(G.outEdges(RetNode)[0]).SuccIndex, -1);
  EXPECT_EQ(G.edge(G.outEdges(RetNode)[0]).To, G.exitNode());
}

TEST(Cfg, LoopHasOneBackedge) {
  auto M = workloads::buildLoopModule(10);
  cfg::Cfg G(*M->main());
  EXPECT_EQ(G.numBackedges(), 1u);
  // The back edge is body -> head.
  unsigned Found = 0;
  for (unsigned EdgeId = 0; EdgeId != G.numEdges(); ++EdgeId) {
    if (!G.isBackedge(EdgeId))
      continue;
    ++Found;
    EXPECT_EQ(G.block(G.edge(EdgeId).From)->name(), "body");
    EXPECT_EQ(G.block(G.edge(EdgeId).To)->name(), "head");
  }
  EXPECT_EQ(Found, 1u);
}

TEST(Cfg, ReverseTopoOrderRespectsEdges) {
  auto M = workloads::buildFig1Module();
  cfg::Cfg G(*M->findFunction("fig1"));
  const std::vector<unsigned> &Order = G.reverseTopoOrder();
  ASSERT_EQ(Order.size(), G.numNodes());
  std::vector<size_t> Position(G.numNodes());
  for (size_t Index = 0; Index != Order.size(); ++Index)
    Position[Order[Index]] = Index;
  // Every non-back edge must point from later to earlier in the order.
  for (unsigned EdgeId = 0; EdgeId != G.numEdges(); ++EdgeId) {
    if (G.isBackedge(EdgeId))
      continue;
    const cfg::Edge &E = G.edge(EdgeId);
    EXPECT_LT(Position[E.To], Position[E.From])
        << "edge " << E.From << "->" << E.To;
  }
}

TEST(Cfg, UnreachableBlockDetected) {
  Module M;
  Function *F = M.addFunction("main", 0);
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Dead = F->addBlock("dead");
  IRBuilder IRB(F, Entry);
  IRB.retImm(0);
  IRB.setBlock(Dead);
  IRB.retImm(1);
  M.setMain(F);
  cfg::Cfg G(*F);
  EXPECT_TRUE(G.isReachable(0));
  EXPECT_FALSE(G.isReachable(1));
  EXPECT_TRUE(G.isReachable(G.exitNode()));
}

TEST(Cfg, IrreducibleGraphBackedgeRemovalLeavesAcyclic) {
  // Classic irreducible shape: entry branches into the middle of a cycle
  // between X and Y.
  Module M;
  Function *F = M.addFunction("main", 0);
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *X = F->addBlock("x");
  BasicBlock *Y = F->addBlock("y");
  BasicBlock *Out = F->addBlock("out");
  IRBuilder IRB(F, Entry);
  Reg C = IRB.movImm(1);
  IRB.condBr(C, X, Y);
  IRB.setBlock(X);
  Reg CX = IRB.movImm(0);
  IRB.condBr(CX, Y, Out);
  IRB.setBlock(Y);
  Reg CY = IRB.movImm(0);
  IRB.condBr(CY, X, Out);
  IRB.setBlock(Out);
  IRB.retImm(0);
  M.setMain(F);

  cfg::Cfg G(*F);
  EXPECT_GE(G.numBackedges(), 1u);

  // Removing back edges must leave the graph acyclic: verify via the
  // reverse topo positions, as above.
  const std::vector<unsigned> &Order = G.reverseTopoOrder();
  std::vector<size_t> Position(G.numNodes(), ~size_t(0));
  for (size_t Index = 0; Index != Order.size(); ++Index)
    Position[Order[Index]] = Index;
  for (unsigned EdgeId = 0; EdgeId != G.numEdges(); ++EdgeId) {
    if (G.isBackedge(EdgeId))
      continue;
    const cfg::Edge &E = G.edge(EdgeId);
    EXPECT_LT(Position[E.To], Position[E.From]);
  }
}

TEST(Cfg, SelfLoopIsBackedge) {
  Module M;
  Function *F = M.addFunction("main", 0);
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Spin = F->addBlock("spin");
  BasicBlock *Done = F->addBlock("done");
  IRBuilder IRB(F, Entry);
  IRB.br(Spin);
  IRB.setBlock(Spin);
  Reg C = IRB.movImm(0);
  IRB.condBr(C, Spin, Done);
  IRB.setBlock(Done);
  IRB.retImm(0);
  M.setMain(F);
  cfg::Cfg G(*F);
  EXPECT_EQ(G.numBackedges(), 1u);
  for (unsigned EdgeId = 0; EdgeId != G.numEdges(); ++EdgeId) {
    if (G.isBackedge(EdgeId)) {
      EXPECT_EQ(G.edge(EdgeId).From, G.edge(EdgeId).To);
    }
  }
}

TEST(Cfg, SwitchEdgesInCanonicalOrder) {
  Module M;
  Function *F = M.addFunction("main", 0);
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Default = F->addBlock("default");
  BasicBlock *Case0 = F->addBlock("case0");
  BasicBlock *Case1 = F->addBlock("case1");
  IRBuilder IRB(F, Entry);
  Reg Sel = IRB.movImm(1);
  IRB.switchOn(Sel, Default, {Case0, Case1});
  for (BasicBlock *BB : {Default, Case0, Case1}) {
    IRB.setBlock(BB);
    IRB.retImm(0);
  }
  M.setMain(F);
  cfg::Cfg G(*F);
  const auto &OutIds = G.outEdges(0);
  ASSERT_EQ(OutIds.size(), 3u);
  EXPECT_EQ(G.edge(OutIds[0]).To, Default->id()); // default first
  EXPECT_EQ(G.edge(OutIds[1]).To, Case0->id());
  EXPECT_EQ(G.edge(OutIds[2]).To, Case1->id());
}
