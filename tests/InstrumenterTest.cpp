//===- tests/InstrumenterTest.cpp - instrumentation mechanics ------------------===//
//
// White-box tests of the EEL-role editor: where probes land, critical-edge
// splitting, table allocation, the PIC save/zero/read protocol, and the
// instruction-count claims the paper makes about the commit sequence.
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "prof/Instrumenter.h"
#include "prof/Session.h"
#include "workloads/Examples.h"

#include <gtest/gtest.h>

using namespace pp;
using namespace pp::ir;
using prof::Mode;

namespace {

unsigned countOps(const Function &F, Opcode Op) {
  unsigned Count = 0;
  for (const auto &BB : F.blocks())
    for (const Inst &I : BB->insts())
      Count += I.Op == Op;
  return Count;
}

prof::ProfileConfig config(Mode M) {
  prof::ProfileConfig Config;
  Config.M = M;
  return Config;
}

} // namespace

TEST(Instrumenter, FlowAddsTableAndRegisters) {
  auto M = workloads::buildFig1Module();
  size_t GlobalsBefore = M->numGlobals();
  unsigned RegsBefore = M->findFunction("fig1")->numRegs();

  prof::Instrumented Instr = prof::instrument(*M, config(Mode::Flow));
  // One counter table per instrumented function with a path profile.
  EXPECT_EQ(Instr.M->numGlobals(), GlobalsBefore + 2); // fig1 + main
  const ir::Global *Table = Instr.M->findGlobal("__pp.paths.fig1");
  ASSERT_NE(Table, nullptr);
  EXPECT_EQ(Table->Size, 6u * 8u); // 6 paths, 8-byte frequency cells
  // Fresh registers were allocated (path register + scratch).
  EXPECT_GT(Instr.M->findFunction("fig1")->numRegs(), RegsBefore + 4);
  // The original module is untouched.
  EXPECT_EQ(M->numGlobals(), GlobalsBefore);
  EXPECT_EQ(M->findFunction("fig1")->numRegs(), RegsBefore);
}

TEST(Instrumenter, FlowHwUsesWiderCells) {
  auto M = workloads::buildFig1Module();
  prof::Instrumented Instr = prof::instrument(*M, config(Mode::FlowHw));
  const ir::Global *Table = Instr.M->findGlobal("__pp.paths.fig1");
  ASSERT_NE(Table, nullptr);
  EXPECT_EQ(Table->Size, 6u * 24u); // freq + two metric accumulators
}

TEST(Instrumenter, CriticalEdgesGetSplitBlocks) {
  // fig1's A->C edge is critical (A has 2 succs, C has 2 preds) and
  // carries value 0; A->B carries 2. B->D carries 2 and is critical.
  auto M = workloads::buildFig1Module();
  size_t BlocksBefore = M->findFunction("fig1")->numBlocks();
  prof::Instrumented Instr = prof::instrument(*M, config(Mode::Flow));
  const Function &F = *Instr.M->findFunction("fig1");
  EXPECT_GT(F.numBlocks(), BlocksBefore) << "splits must add blocks";
  // Split blocks end in an unconditional branch and contain the increment.
  bool FoundSplit = false;
  for (const auto &BB : F.blocks()) {
    if (BB->name().find(".split") == std::string::npos)
      continue;
    FoundSplit = true;
    EXPECT_EQ(BB->terminator().Op, Opcode::Br);
    EXPECT_GE(BB->insts().size(), 2u);
  }
  EXPECT_TRUE(FoundSplit);
}

TEST(Instrumenter, FlowHwCommitIsThirteenInstructions) {
  // §3.1: "our instrumentation requires thirteen or more instructions to
  // increment two accumulators and a frequency metric for a path."
  auto M = workloads::buildFig4Module(); // straight-line C: one commit
  prof::Instrumented Instr = prof::instrument(*M, config(Mode::FlowHw));
  const Function &C = *Instr.M->findFunction("C");
  // Entry: rdpic save + mov r,0 + wrpic + rdpic = 4; body original 2;
  // commit 13; restore wrpic + rdpic = 2; ret.
  unsigned Total = 0;
  for (const auto &BB : C.blocks())
    Total += BB->insts().size();
  EXPECT_GE(Total, 2u + 4u + 13u + 2u + 1u);
  // save, forced read after zero, commit read, forced read after restore.
  EXPECT_EQ(countOps(C, Opcode::RdPic), 4u);
  EXPECT_EQ(countOps(C, Opcode::WrPic), 2u); // zero, restore
}

TEST(Instrumenter, ContextInsertsTheCctProtocolOps) {
  auto M = workloads::buildFig4Module();
  prof::Instrumented Instr = prof::instrument(*M, config(Mode::Context));
  const Function &MProc = *Instr.M->findFunction("M");
  EXPECT_EQ(countOps(MProc, Opcode::CctEnter), 1u);
  EXPECT_EQ(countOps(MProc, Opcode::CctExit), 1u);
  EXPECT_EQ(countOps(MProc, Opcode::CctCall), 2u); // calls A and D
  // cct.call must immediately precede its call.
  for (const auto &BB : MProc.blocks()) {
    const auto &Insts = BB->insts();
    for (size_t Index = 0; Index != Insts.size(); ++Index)
      if (Insts[Index].Op == Opcode::CctCall) {
        ASSERT_LT(Index + 1, Insts.size());
        EXPECT_TRUE(isCall(Insts[Index + 1].Op));
      }
  }
  // Site indices are dense and in order.
  std::vector<int64_t> Sites;
  for (const auto &BB : MProc.blocks())
    for (const Inst &I : BB->insts())
      if (I.Op == Opcode::CctCall)
        Sites.push_back(I.Imm);
  EXPECT_EQ(Sites, (std::vector<int64_t>{0, 1}));
}

TEST(Instrumenter, ContextHwProbesEntryBackedgesAndExit) {
  auto M = workloads::buildLoopModule(5);
  prof::Instrumented Instr = prof::instrument(*M, config(Mode::ContextHw));
  const Function &Main = *Instr.M->main();
  // Probe kinds: one entry (0), one per back edge (1), one per ret (2).
  int Entry = 0, Loop = 0, Exit = 0;
  for (const auto &BB : Main.blocks())
    for (const Inst &I : BB->insts())
      if (I.Op == Opcode::CctHwProbe) {
        if (I.Imm == 0)
          ++Entry;
        else if (I.Imm == 1)
          ++Loop;
        else
          ++Exit;
      }
  EXPECT_EQ(Entry, 1);
  EXPECT_EQ(Loop, 1);
  EXPECT_EQ(Exit, 1);
}

TEST(Instrumenter, EdgeModeAllocatesChordSlots) {
  auto M = workloads::buildLoopModule(5);
  prof::Instrumented Instr = prof::instrument(*M, config(Mode::Edge));
  const prof::FunctionInstrInfo &Info =
      Instr.Functions[Instr.M->main()->id()];
  cfg::Cfg G(*M->main());
  // A spanning tree over V nodes uses V-1 edges; the rest are chords.
  unsigned Reachable = 0;
  for (unsigned Node = 0; Node != G.numNodes(); ++Node)
    Reachable += G.isReachable(Node);
  EXPECT_EQ(Info.ChordEdges.size(), G.numEdges() - (Reachable - 1));
  const ir::Global *Table = Instr.M->findGlobal("__pp.edges.main");
  ASSERT_NE(Table, nullptr);
  EXPECT_EQ(Table->Size, (Info.ChordEdges.size() + 1) * 8);
}

TEST(Instrumenter, SkipsFunctionsByPredicate) {
  auto M = workloads::buildFig4Module();
  prof::ProfileConfig Config = config(Mode::Flow);
  Config.ShouldInstrument = [](const Function &F) {
    return F.name() == "C";
  };
  prof::Instrumented Instr = prof::instrument(*M, Config);
  EXPECT_TRUE(Instr.M->findFunction("C")->isInstrumented());
  EXPECT_FALSE(Instr.M->findFunction("M")->isInstrumented());
  EXPECT_FALSE(Instr.Functions[M->findFunction("M")->id()].HasPathProfile);
  EXPECT_TRUE(Instr.Functions[M->findFunction("C")->id()].HasPathProfile);
}

TEST(Instrumenter, ModeNoneIsIdentityPlusMetadata) {
  auto M = workloads::buildFig1Module();
  prof::Instrumented Instr = prof::instrument(*M, config(Mode::None));
  EXPECT_EQ(ir::printModule(*Instr.M), ir::printModule(*M));
  for (const prof::FunctionInstrInfo &Info : Instr.Functions) {
    EXPECT_FALSE(Info.Instrumented);
    EXPECT_NE(Info.F, nullptr);
  }
}

TEST(Instrumenter, PathOverflowFallsBackGracefully) {
  // 70 chained diamonds overflow the path count; instrumentation must
  // still produce a runnable module without a path profile.
  auto M = std::make_unique<Module>();
  Function *F = M->addFunction("main", 0);
  BasicBlock *Prev = F->addBlock("entry");
  IRBuilder IRB(F, Prev);
  Reg C = IRB.movImm(1);
  for (int Step = 0; Step != 70; ++Step) {
    BasicBlock *Left = F->addBlock("l" + std::to_string(Step));
    BasicBlock *Right = F->addBlock("r" + std::to_string(Step));
    BasicBlock *Join = F->addBlock("j" + std::to_string(Step));
    IRB.setBlock(Prev);
    IRB.condBr(C, Left, Right);
    IRB.setBlock(Left);
    IRB.br(Join);
    IRB.setBlock(Right);
    IRB.br(Join);
    Prev = Join;
  }
  IRB.setBlock(Prev);
  IRB.retImm(0);
  M->setMain(F);

  prof::SessionOptions Options;
  Options.Config.M = Mode::Flow;
  prof::RunOutcome Run = prof::runProfile(*M, Options);
  ASSERT_TRUE(Run.Result.Ok) << Run.Result.Error;
  EXPECT_FALSE(Run.PathProfiles[F->id()].HasProfile);
}
