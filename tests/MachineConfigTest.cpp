//===- tests/MachineConfigTest.cpp - cost model and cache geometry ------------===//
//
// The machine is configurable (cache geometry, penalties); these tests pin
// the knobs' effects: different geometries change miss counts the way
// cache theory says they should, and cost-model changes move cycles
// without changing architectural results.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "prof/Session.h"
#include "workloads/Examples.h"
#include "workloads/Spec.h"

#include <gtest/gtest.h>

using namespace pp;

namespace {

prof::RunOutcome runWith(ir::Module &M, hw::MachineConfig Config) {
  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::None;
  Options.MachineCfg = Config;
  return prof::runProfile(M, Options);
}

} // namespace

TEST(MachineConfig, BiggerDCacheMissesLess) {
  auto M = workloads::buildTurb3d(1); // 64 KB of strided data
  hw::MachineConfig Small;
  Small.DCache = hw::CacheConfig{16 * 1024, 32, 1};
  hw::MachineConfig Big;
  Big.DCache = hw::CacheConfig{128 * 1024, 32, 1};

  prof::RunOutcome SmallRun = runWith(*M, Small);
  prof::RunOutcome BigRun = runWith(*M, Big);
  ASSERT_TRUE(SmallRun.Result.Ok && BigRun.Result.Ok);
  uint64_t SmallMisses = SmallRun.total(hw::Event::DCacheReadMiss) +
                         SmallRun.total(hw::Event::DCacheWriteMiss);
  uint64_t BigMisses = BigRun.total(hw::Event::DCacheReadMiss) +
                       BigRun.total(hw::Event::DCacheWriteMiss);
  EXPECT_LT(BigMisses, SmallMisses / 2);
  // Architectural results are identical.
  EXPECT_EQ(SmallRun.Result.ExitValue, BigRun.Result.ExitValue);
  EXPECT_EQ(SmallRun.Result.ExecutedInsts, BigRun.Result.ExecutedInsts);
  EXPECT_EQ(SmallRun.total(hw::Event::Insts), BigRun.total(hw::Event::Insts));
}

TEST(MachineConfig, AssociativityCutsConflictMisses) {
  // The cache_conflict scenario: two arrays one cache-size apart. Direct
  // mapped ping-pongs; 2-way holds both.
  auto M = std::make_unique<ir::Module>();
  size_t A = M->addGlobal("a", 16 * 1024);
  size_t B = M->addGlobal("b", 8 * 1024);
  uint64_t AAddr = M->global(A).Addr;
  uint64_t BAddr = M->global(B).Addr; // 16 KB after a
  ir::Function *Main = M->addFunction("main", 0);
  ir::IRBuilder IRB(Main, Main->addBlock("entry"));
  ir::BasicBlock *Head = Main->addBlock("head");
  ir::BasicBlock *Body = Main->addBlock("body");
  ir::BasicBlock *Done = Main->addBlock("done");
  ir::Reg I = IRB.movImm(0);
  IRB.br(Head);
  IRB.setBlock(Head);
  ir::Reg More = IRB.cmpLtImm(I, 4000);
  IRB.condBr(More, Body, Done);
  IRB.setBlock(Body);
  ir::Reg Slot = IRB.andImm(I, 255);
  ir::Reg Off = IRB.shlImm(Slot, 3);
  ir::Reg APtr = IRB.addImm(Off, static_cast<int64_t>(AAddr));
  IRB.load(APtr, 0);
  ir::Reg BPtr = IRB.addImm(Off, static_cast<int64_t>(BAddr));
  IRB.load(BPtr, 0);
  ir::Reg Next = IRB.addImm(I, 1);
  IRB.movRegInto(I, Next);
  IRB.br(Head);
  IRB.setBlock(Done);
  IRB.retImm(0);
  M->setMain(Main);

  hw::MachineConfig Direct;
  Direct.DCache = hw::CacheConfig{16 * 1024, 32, 1};
  hw::MachineConfig TwoWay;
  TwoWay.DCache = hw::CacheConfig{16 * 1024, 32, 2};
  prof::RunOutcome DirectRun = runWith(*M, Direct);
  prof::RunOutcome TwoWayRun = runWith(*M, TwoWay);
  uint64_t DirectMisses = DirectRun.total(hw::Event::DCacheReadMiss);
  uint64_t TwoWayMisses = TwoWayRun.total(hw::Event::DCacheReadMiss);
  EXPECT_GT(DirectMisses, 4000u) << "ping-pong every iteration";
  EXPECT_LT(TwoWayMisses, 300u) << "both arrays fit with 2 ways";
}

TEST(MachineConfig, MissPenaltyScalesCycles) {
  auto M = workloads::buildWave5(1); // miss heavy
  hw::MachineConfig Cheap;
  Cheap.Cost.DCacheMissPenalty = 1;
  hw::MachineConfig Dear;
  Dear.Cost.DCacheMissPenalty = 50;
  prof::RunOutcome CheapRun = runWith(*M, Cheap);
  prof::RunOutcome DearRun = runWith(*M, Dear);
  EXPECT_GT(DearRun.total(hw::Event::Cycles),
            CheapRun.total(hw::Event::Cycles));
  // Miss *counts* must be invariant under penalty changes.
  EXPECT_EQ(DearRun.total(hw::Event::DCacheReadMiss),
            CheapRun.total(hw::Event::DCacheReadMiss));
}

TEST(MachineConfig, FpLatencyDrivesFpStalls) {
  auto M = workloads::buildFpppp(1);
  hw::MachineConfig Fast;
  Fast.Cost.FpLatency = 1;
  hw::MachineConfig Slow;
  Slow.Cost.FpLatency = 8;
  prof::RunOutcome FastRun = runWith(*M, Fast);
  prof::RunOutcome SlowRun = runWith(*M, Slow);
  EXPECT_GT(SlowRun.total(hw::Event::FpStall),
            2 * FastRun.total(hw::Event::FpStall));
}

TEST(MachineConfig, ProfilesAreStableAcrossCostModels) {
  // Path *frequencies* are architectural: changing the cost model must not
  // change them (only the metrics measured in cycles).
  auto M = workloads::buildLoopModule(500);
  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::Flow;
  prof::RunOutcome Normal = prof::runProfile(*M, Options);
  Options.MachineCfg.Cost.DCacheMissPenalty = 100;
  Options.MachineCfg.Cost.MispredictPenalty = 40;
  prof::RunOutcome Expensive = prof::runProfile(*M, Options);
  ASSERT_TRUE(Normal.Result.Ok && Expensive.Result.Ok);
  unsigned MainId = M->main()->id();
  ASSERT_EQ(Normal.PathProfiles[MainId].Paths.size(),
            Expensive.PathProfiles[MainId].Paths.size());
  for (size_t Index = 0; Index != Normal.PathProfiles[MainId].Paths.size();
       ++Index) {
    EXPECT_EQ(Normal.PathProfiles[MainId].Paths[Index].PathSum,
              Expensive.PathProfiles[MainId].Paths[Index].PathSum);
    EXPECT_EQ(Normal.PathProfiles[MainId].Paths[Index].Freq,
              Expensive.PathProfiles[MainId].Paths[Index].Freq);
  }
}

TEST(Reorder, BlockReorderPreservesBehaviour) {
  auto M = workloads::buildFig1Module();
  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::None;
  prof::RunOutcome Before = prof::runProfile(*M, Options);

  // Reverse every function's non-entry blocks.
  for (const auto &F : M->functions()) {
    std::vector<ir::BasicBlock *> Order;
    Order.push_back(F->entry());
    for (size_t Index = F->numBlocks(); Index-- > 1;)
      Order.push_back(F->block(Index));
    F->reorderBlocks(Order);
  }
  std::vector<std::string> Errors;
  ASSERT_TRUE(ir::verifyModule(*M, Errors)) << Errors.front();

  prof::RunOutcome After = prof::runProfile(*M, Options);
  ASSERT_TRUE(After.Result.Ok) << After.Result.Error;
  EXPECT_EQ(After.Result.ExitValue, Before.Result.ExitValue);
  EXPECT_EQ(After.Result.ExecutedInsts, Before.Result.ExecutedInsts);
}

TEST(Reorder, IdsStayDenseAndOrdered) {
  auto M = workloads::buildLoopModule(1);
  ir::Function *F = M->main();
  std::vector<ir::BasicBlock *> Order;
  Order.push_back(F->entry());
  for (size_t Index = F->numBlocks(); Index-- > 1;)
    Order.push_back(F->block(Index));
  F->reorderBlocks(Order);
  for (unsigned Index = 0; Index != F->numBlocks(); ++Index)
    EXPECT_EQ(F->block(Index)->id(), Index);
  EXPECT_EQ(F->entry()->name(), "entry");
}

TEST(Reorder, PathProfilesStillMatchOracleAfterReorder) {
  // Reordering renumbers blocks, so the numbering changes — but the
  // instrumented profile must still agree with the oracle on the
  // reordered module.
  auto M = workloads::buildLoopModule(50);
  ir::Function *F = M->main();
  std::vector<ir::BasicBlock *> Order = {F->entry(), F->block(2),
                                         F->block(1), F->block(3)};
  F->reorderBlocks(Order);

  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::Flow;
  prof::RunOutcome Run = prof::runProfile(*M, Options);
  ASSERT_TRUE(Run.Result.Ok);
  uint64_t Total = 0;
  for (const prof::PathEntry &Entry : Run.PathProfiles[F->id()].Paths)
    Total += Entry.Freq;
  EXPECT_EQ(Total, 51u); // 50 iterations + final exit
}
