//===- tests/CrossModeTest.cpp - whole-pipeline property tests -----------------===//
//
// Generates random multi-function programs (loops, recursion, indirect
// calls, switches, memory traffic — all fuel-bounded so they terminate)
// and checks that every profiling mode reports mutually consistent,
// oracle-exact results. This is the repository's strongest end-to-end
// property: instrumentation must never change behaviour, and every
// measured frequency must equal the traced truth.
//
//===----------------------------------------------------------------------===//

#include "analysis/EdgeProjection.h"
#include "prof/Oracle.h"
#include "prof/Session.h"
#include "workloads/Examples.h"

#include "RandomProgram.h"

#include <gtest/gtest.h>

#include <map>

using namespace pp;
using namespace pp::ir;
using prof::Mode;

namespace {

std::unique_ptr<Module> makeProgram(uint64_t Seed) {
  return testutil::makeRandomProgram(Seed);
}

std::map<std::pair<unsigned, uint64_t>, uint64_t>
allPathFreqs(const prof::RunOutcome &Run) {
  std::map<std::pair<unsigned, uint64_t>, uint64_t> Out;
  for (const prof::FunctionPathProfile &Profile : Run.PathProfiles)
    for (const prof::PathEntry &Entry : Profile.Paths)
      Out[{Profile.FuncId, Entry.PathSum}] = Entry.Freq;
  return Out;
}

class CrossModeTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(CrossModeTest, AllModesAgreeWithTheOracle) {
  auto M = makeProgram(GetParam());

  // Oracle run on the pristine module.
  hw::Machine Machine;
  prof::OracleProfiler Oracle(*M);
  vm::Vm VM(*M, Machine);
  VM.setTracer(&Oracle);
  vm::RunResult Truth = VM.run();
  ASSERT_TRUE(Truth.Ok) << Truth.Error;

  prof::SessionOptions Options;

  // --- Flow: exact oracle match per function -------------------------------
  Options.Config.M = Mode::Flow;
  prof::RunOutcome Flow = prof::runProfile(*M, Options);
  ASSERT_TRUE(Flow.Result.Ok) << Flow.Result.Error;
  EXPECT_EQ(Flow.Result.ExitValue, Truth.ExitValue);
  for (size_t Id = 0; Id != M->numFunctions(); ++Id) {
    if (!Flow.PathProfiles[Id].HasProfile)
      continue;
    std::map<uint64_t, uint64_t> Measured;
    for (const prof::PathEntry &Entry : Flow.PathProfiles[Id].Paths)
      Measured[Entry.PathSum] = Entry.Freq;
    std::map<uint64_t, uint64_t> Expected(Oracle.pathFreqs(Id).begin(),
                                          Oracle.pathFreqs(Id).end());
    EXPECT_EQ(Measured, Expected)
        << "function " << M->function(Id)->name() << " seed " << GetParam();
  }

  // --- FlowHw: same frequencies as Flow ------------------------------------
  Options.Config.M = Mode::FlowHw;
  prof::RunOutcome FlowHw = prof::runProfile(*M, Options);
  ASSERT_TRUE(FlowHw.Result.Ok);
  EXPECT_EQ(allPathFreqs(Flow), allPathFreqs(FlowHw));

  // --- Edge: reconstruction matches oracle edge counts ----------------------
  Options.Config.M = Mode::Edge;
  prof::RunOutcome Edge = prof::runProfile(*M, Options);
  ASSERT_TRUE(Edge.Result.Ok);
  for (size_t Id = 0; Id != M->numFunctions(); ++Id) {
    if (!Edge.EdgeProfiles[Id].HasProfile)
      continue;
    EXPECT_EQ(Edge.EdgeProfiles[Id].EdgeCounts, Oracle.edgeCounts(Id))
        << "function " << M->function(Id)->name() << " seed " << GetParam();
  }

  // --- Context: per-function call counts match ------------------------------
  Options.Config.M = Mode::Context;
  prof::RunOutcome Ctx = prof::runProfile(*M, Options);
  ASSERT_TRUE(Ctx.Result.Ok);
  std::map<unsigned, uint64_t> CtxCounts;
  for (const auto &R : Ctx.Tree->records())
    if (R->procId() != cct::RootProcId)
      CtxCounts[R->procId()] += R->Metrics[0];
  for (size_t Id = 0; Id != M->numFunctions(); ++Id)
    EXPECT_EQ(CtxCounts[Id], Oracle.callCount(Id))
        << M->function(Id)->name() << " seed " << GetParam();

  // --- ContextFlow: per-record path tables sum to the flow profile ----------
  Options.Config.M = Mode::ContextFlow;
  prof::RunOutcome CtxFlow = prof::runProfile(*M, Options);
  ASSERT_TRUE(CtxFlow.Result.Ok);
  std::map<std::pair<unsigned, uint64_t>, uint64_t> Summed;
  for (const auto &R : CtxFlow.Tree->records()) {
    if (R->procId() == cct::RootProcId)
      continue;
    for (const auto &[Sum, Cell] : R->PathTable)
      Summed[{R->procId(), Sum}] += Cell.Freq;
  }
  EXPECT_EQ(Summed, allPathFreqs(Flow)) << "seed " << GetParam();

  // --- ContextFlowHw: same frequencies again, now with metrics --------------
  Options.Config.M = Mode::ContextFlowHw;
  prof::RunOutcome CtxFlowHw = prof::runProfile(*M, Options);
  ASSERT_TRUE(CtxFlowHw.Result.Ok);
  std::map<std::pair<unsigned, uint64_t>, uint64_t> SummedHw;
  for (const auto &R : CtxFlowHw.Tree->records()) {
    if (R->procId() == cct::RootProcId)
      continue;
    for (const auto &[Sum, Cell] : R->PathTable) {
      SummedHw[{R->procId(), Sum}] += Cell.Freq;
      EXPECT_GE(Cell.Metric0, Cell.Freq) << "PIC0=Insts per execution";
    }
  }
  EXPECT_EQ(SummedHw, allPathFreqs(Flow)) << "seed " << GetParam();

  // --- Projection theorem: paths refine edges --------------------------------
  // Summing path frequencies over each path's edges must reproduce the
  // exact per-edge counts that both the oracle and Edge mode report.
  for (size_t Id = 0; Id != M->numFunctions(); ++Id) {
    if (!Flow.PathProfiles[Id].HasProfile)
      continue;
    std::vector<uint64_t> Projected =
        analysis::edgeCountsFromPaths(*M, static_cast<unsigned>(Id),
                                      Flow.PathProfiles[Id]);
    EXPECT_EQ(Projected, Oracle.edgeCounts(Id))
        << "projection mismatch in " << M->function(Id)->name() << " seed "
        << GetParam();
    EXPECT_EQ(Projected, Edge.EdgeProfiles[Id].EdgeCounts)
        << "projection vs chord reconstruction in "
        << M->function(Id)->name();
  }
}

// $PP_CROSSMODE_SEEDS widens the sweep for soak runs (default: 10 seeds).
INSTANTIATE_TEST_SUITE_P(
    Seeds, CrossModeTest,
    ::testing::Range<uint64_t>(
        0, testutil::seedCountFromEnv("PP_CROSSMODE_SEEDS", 10)));
