//===- tests/CrossModeTest.cpp - whole-pipeline property tests -----------------===//
//
// Generates random multi-function programs (loops, recursion, indirect
// calls, switches, memory traffic — all fuel-bounded so they terminate)
// and checks that every profiling mode reports mutually consistent,
// oracle-exact results. This is the repository's strongest end-to-end
// property: instrumentation must never change behaviour, and every
// measured frequency must equal the traced truth.
//
//===----------------------------------------------------------------------===//

#include "analysis/EdgeProjection.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "prof/Oracle.h"
#include "prof/Session.h"
#include "support/Prng.h"
#include "workloads/Examples.h"

#include <gtest/gtest.h>

#include <map>

using namespace pp;
using namespace pp::ir;
using prof::Mode;

namespace {

/// Builds a random program with NumFuncs functions. Function k may call
/// functions with larger indices directly, any function indirectly or
/// recursively — every loop and call is guarded by a shared fuel counter
/// in memory, so execution always terminates.
std::unique_ptr<Module> makeProgram(uint64_t Seed) {
  Prng R(Seed);
  auto M = std::make_unique<Module>();
  size_t FuelIndex = M->addGlobal("fuel", 8);
  uint64_t FuelAddr = M->global(FuelIndex).Addr;
  size_t DataIndex = M->addGlobal("data", 32 * 1024);
  uint64_t DataAddr = M->global(DataIndex).Addr;

  unsigned NumFuncs = 3 + static_cast<unsigned>(R.nextBelow(3));
  std::vector<Function *> Funcs;
  for (unsigned Id = 0; Id != NumFuncs; ++Id)
    Funcs.push_back(M->addFunction("f" + std::to_string(Id), 1));

  for (unsigned Id = 0; Id != NumFuncs; ++Id) {
    Function *F = Funcs[Id];
    BasicBlock *Entry = F->addBlock("entry");
    BasicBlock *Work = F->addBlock("work");
    BasicBlock *Out = F->addBlock("out");
    IRBuilder IRB(F, Entry);
    Reg Arg = 0;

    // Fuel gate: decrement shared fuel; bail out when exhausted.
    Reg Fuel = IRB.loadAbs(static_cast<int64_t>(FuelAddr));
    Reg Less = IRB.subImm(Fuel, 1);
    IRB.storeAbs(static_cast<int64_t>(FuelAddr), Less);
    Reg HasFuel = IRB.cmpLtImm(Less, 0);
    IRB.condBr(HasFuel, Out, Work);

    IRB.setBlock(Out);
    IRB.ret(Arg);

    IRB.setBlock(Work);
    Reg Acc = IRB.mov(Arg);
    unsigned NumOps = 2 + static_cast<unsigned>(R.nextBelow(5));
    for (unsigned Op = 0; Op != NumOps; ++Op) {
      switch (R.nextBelow(6)) {
      case 0: { // memory traffic
        Reg Slot = IRB.andImm(Acc, 4095);
        Reg Off = IRB.shlImm(Slot, 3);
        Reg Addr = IRB.addImm(Off, static_cast<int64_t>(DataAddr));
        Reg Val = IRB.load(Addr, 0);
        Reg Sum = IRB.add(Val, Acc);
        IRB.store(Addr, 0, Sum);
        Acc = Sum;
        break;
      }
      case 1: { // direct call (possibly self-recursive; fuel bounds it)
        Function *Callee = Funcs[R.nextBelow(NumFuncs)];
        Reg Masked = IRB.andImm(Acc, 1023);
        Acc = IRB.call(Callee, {Masked});
        break;
      }
      case 2: { // indirect call
        Reg Sel = IRB.remImm(Acc, static_cast<int64_t>(NumFuncs));
        Reg Id0 = IRB.andImm(Sel, 0x7fffffff);
        Reg Masked = IRB.andImm(Acc, 1023);
        Acc = IRB.icall(Id0, {Masked});
        break;
      }
      case 3: { // a small diamond
        BasicBlock *Left = F->addBlock("l" + std::to_string(Op));
        BasicBlock *Right = F->addBlock("r" + std::to_string(Op));
        BasicBlock *Join = F->addBlock("j" + std::to_string(Op));
        Reg Bit = IRB.andImm(Acc, 1);
        IRB.condBr(Bit, Left, Right);
        Reg Merged = F->freshReg();
        IRB.setBlock(Left);
        Reg L = IRB.mulImm(Acc, 3);
        IRB.movRegInto(Merged, L);
        IRB.br(Join);
        IRB.setBlock(Right);
        Reg Rv = IRB.addImm(Acc, 7);
        IRB.movRegInto(Merged, Rv);
        IRB.br(Join);
        IRB.setBlock(Join);
        Acc = Merged;
        break;
      }
      case 4: { // a switch
        BasicBlock *Default = F->addBlock("sd" + std::to_string(Op));
        BasicBlock *Case0 = F->addBlock("s0" + std::to_string(Op));
        BasicBlock *Case1 = F->addBlock("s1" + std::to_string(Op));
        BasicBlock *Join = F->addBlock("sj" + std::to_string(Op));
        Reg Sel = IRB.andImm(Acc, 3);
        Reg Merged = F->freshReg();
        IRB.switchOn(Sel, Default, {Case0, Case1});
        for (BasicBlock *BB : {Case0, Case1, Default}) {
          IRB.setBlock(BB);
          Reg V = IRB.xorImm(Acc, BB == Default ? 0x55 : 0x11);
          IRB.movRegInto(Merged, V);
          IRB.br(Join);
        }
        IRB.setBlock(Join);
        Acc = Merged;
        break;
      }
      default: { // plain arithmetic
        Reg T = IRB.mulImm(Acc, 13);
        Acc = IRB.andImm(T, 0xffffff);
        break;
      }
      }
    }
    IRB.ret(Acc);
  }

  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Reg Budget = IRB.movImm(2000 + static_cast<int64_t>(R.nextBelow(2000)));
    IRB.storeAbs(static_cast<int64_t>(FuelAddr), Budget);
    Reg Seed = IRB.movImm(static_cast<int64_t>(R.nextBelow(1024)));
    Reg Result = IRB.call(Funcs[0], {Seed});
    Reg Masked = IRB.andImm(Result, 0xffffff);
    IRB.ret(Masked);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

std::map<std::pair<unsigned, uint64_t>, uint64_t>
allPathFreqs(const prof::RunOutcome &Run) {
  std::map<std::pair<unsigned, uint64_t>, uint64_t> Out;
  for (const prof::FunctionPathProfile &Profile : Run.PathProfiles)
    for (const prof::PathEntry &Entry : Profile.Paths)
      Out[{Profile.FuncId, Entry.PathSum}] = Entry.Freq;
  return Out;
}

class CrossModeTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(CrossModeTest, AllModesAgreeWithTheOracle) {
  auto M = makeProgram(GetParam());

  // Oracle run on the pristine module.
  hw::Machine Machine;
  prof::OracleProfiler Oracle(*M);
  vm::Vm VM(*M, Machine);
  VM.setTracer(&Oracle);
  vm::RunResult Truth = VM.run();
  ASSERT_TRUE(Truth.Ok) << Truth.Error;

  prof::SessionOptions Options;

  // --- Flow: exact oracle match per function -------------------------------
  Options.Config.M = Mode::Flow;
  prof::RunOutcome Flow = prof::runProfile(*M, Options);
  ASSERT_TRUE(Flow.Result.Ok) << Flow.Result.Error;
  EXPECT_EQ(Flow.Result.ExitValue, Truth.ExitValue);
  for (size_t Id = 0; Id != M->numFunctions(); ++Id) {
    if (!Flow.PathProfiles[Id].HasProfile)
      continue;
    std::map<uint64_t, uint64_t> Measured;
    for (const prof::PathEntry &Entry : Flow.PathProfiles[Id].Paths)
      Measured[Entry.PathSum] = Entry.Freq;
    std::map<uint64_t, uint64_t> Expected(Oracle.pathFreqs(Id).begin(),
                                          Oracle.pathFreqs(Id).end());
    EXPECT_EQ(Measured, Expected)
        << "function " << M->function(Id)->name() << " seed " << GetParam();
  }

  // --- FlowHw: same frequencies as Flow ------------------------------------
  Options.Config.M = Mode::FlowHw;
  prof::RunOutcome FlowHw = prof::runProfile(*M, Options);
  ASSERT_TRUE(FlowHw.Result.Ok);
  EXPECT_EQ(allPathFreqs(Flow), allPathFreqs(FlowHw));

  // --- Edge: reconstruction matches oracle edge counts ----------------------
  Options.Config.M = Mode::Edge;
  prof::RunOutcome Edge = prof::runProfile(*M, Options);
  ASSERT_TRUE(Edge.Result.Ok);
  for (size_t Id = 0; Id != M->numFunctions(); ++Id) {
    if (!Edge.EdgeProfiles[Id].HasProfile)
      continue;
    EXPECT_EQ(Edge.EdgeProfiles[Id].EdgeCounts, Oracle.edgeCounts(Id))
        << "function " << M->function(Id)->name() << " seed " << GetParam();
  }

  // --- Context: per-function call counts match ------------------------------
  Options.Config.M = Mode::Context;
  prof::RunOutcome Ctx = prof::runProfile(*M, Options);
  ASSERT_TRUE(Ctx.Result.Ok);
  std::map<unsigned, uint64_t> CtxCounts;
  for (const auto &R : Ctx.Tree->records())
    if (R->procId() != cct::RootProcId)
      CtxCounts[R->procId()] += R->Metrics[0];
  for (size_t Id = 0; Id != M->numFunctions(); ++Id)
    EXPECT_EQ(CtxCounts[Id], Oracle.callCount(Id))
        << M->function(Id)->name() << " seed " << GetParam();

  // --- ContextFlow: per-record path tables sum to the flow profile ----------
  Options.Config.M = Mode::ContextFlow;
  prof::RunOutcome CtxFlow = prof::runProfile(*M, Options);
  ASSERT_TRUE(CtxFlow.Result.Ok);
  std::map<std::pair<unsigned, uint64_t>, uint64_t> Summed;
  for (const auto &R : CtxFlow.Tree->records()) {
    if (R->procId() == cct::RootProcId)
      continue;
    for (const auto &[Sum, Cell] : R->PathTable)
      Summed[{R->procId(), Sum}] += Cell.Freq;
  }
  EXPECT_EQ(Summed, allPathFreqs(Flow)) << "seed " << GetParam();

  // --- ContextFlowHw: same frequencies again, now with metrics --------------
  Options.Config.M = Mode::ContextFlowHw;
  prof::RunOutcome CtxFlowHw = prof::runProfile(*M, Options);
  ASSERT_TRUE(CtxFlowHw.Result.Ok);
  std::map<std::pair<unsigned, uint64_t>, uint64_t> SummedHw;
  for (const auto &R : CtxFlowHw.Tree->records()) {
    if (R->procId() == cct::RootProcId)
      continue;
    for (const auto &[Sum, Cell] : R->PathTable) {
      SummedHw[{R->procId(), Sum}] += Cell.Freq;
      EXPECT_GE(Cell.Metric0, Cell.Freq) << "PIC0=Insts per execution";
    }
  }
  EXPECT_EQ(SummedHw, allPathFreqs(Flow)) << "seed " << GetParam();

  // --- Projection theorem: paths refine edges --------------------------------
  // Summing path frequencies over each path's edges must reproduce the
  // exact per-edge counts that both the oracle and Edge mode report.
  for (size_t Id = 0; Id != M->numFunctions(); ++Id) {
    if (!Flow.PathProfiles[Id].HasProfile)
      continue;
    std::vector<uint64_t> Projected =
        analysis::edgeCountsFromPaths(*M, static_cast<unsigned>(Id),
                                      Flow.PathProfiles[Id]);
    EXPECT_EQ(Projected, Oracle.edgeCounts(Id))
        << "projection mismatch in " << M->function(Id)->name() << " seed "
        << GetParam();
    EXPECT_EQ(Projected, Edge.EdgeProfiles[Id].EdgeCounts)
        << "projection vs chord reconstruction in "
        << M->function(Id)->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossModeTest,
                         ::testing::Range<uint64_t>(0, 10));
