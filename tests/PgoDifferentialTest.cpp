//===- tests/PgoDifferentialTest.cpp - optimized-vs-original differential -----===//
//
// The optimizer's safety net, in the EngineEquivalenceTest mold: for a
// wide sweep of random programs (recursion, indirect calls, switches, FP,
// setjmp/longjmp), run the full PGO loop — profile, package the artifact,
// resolve a ProfileView against a fresh copy, run every pass — and prove
// the optimized program behaves bit-identically to the original on BOTH
// VM engines. A transform that miscompiles one seed's corner case fails
// here, with the seed in the test name.
//
// $PP_PGO_DIFF_SEEDS widens the sweep (default: 64 seeds).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "opt/Pass.h"
#include "prof/Session.h"
#include "profdb/Artifact.h"

#include "RandomProgram.h"

#include <gtest/gtest.h>

using namespace pp;
using prof::Mode;

namespace {

testutil::RandomProgramOptions coverage() {
  testutil::RandomProgramOptions Opts;
  Opts.WithFp = true;
  Opts.WithSetjmp = true; // exercises the inliner's setjmp refusal
  return Opts;
}

prof::RunOutcome runPlain(ir::Module &M, vm::Engine Eng) {
  prof::SessionOptions Options;
  Options.Config.M = Mode::None;
  Options.Engine = Eng;
  return prof::runProfile(M, Options);
}

class PgoDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(PgoDifferentialTest, OptimizedProgramIsBitIdenticalOnBothEngines) {
  const uint64_t Seed = GetParam();
  auto Pristine = testutil::makeRandomProgram(Seed, coverage());

  prof::RunOutcome BaseRef = runPlain(*Pristine, vm::Engine::Reference);
  prof::RunOutcome BaseThr = runPlain(*Pristine, vm::Engine::Threaded);
  ASSERT_TRUE(BaseRef.Result.Ok) << BaseRef.Result.Error;
  ASSERT_EQ(BaseRef.Result.ExitValue, BaseThr.Result.ExitValue);

  // Profile exactly as the production loop does: context + flow + the two
  // events the optimizer is denominated in, packaged as a .ppa artifact.
  prof::SessionOptions ProfOptions;
  ProfOptions.Config.M = Mode::ContextFlowHw;
  ProfOptions.Config.Pic0 = hw::Event::Cycles;
  ProfOptions.Config.Pic1 = hw::Event::ICacheMiss;
  prof::RunOutcome Profile = prof::runProfile(*Pristine, ProfOptions);
  ASSERT_TRUE(Profile.Result.Ok) << Profile.Result.Error;
  profdb::Artifact A = profdb::artifactFromOutcome(
      Profile, *Pristine, "pgo-diff", "random", 1, ProfOptions.Config);

  // Resolve against a fresh build of the same seed and run every pass.
  auto M = testutil::makeRandomProgram(Seed, coverage());
  opt::ProfileView View;
  ASSERT_EQ(opt::ProfileView::build(A, *M, View), opt::ViewStatus::Ok)
      << "seed " << Seed;
  opt::PipelineResult Result = opt::runPipeline(
      *M, View,
      {opt::PassKind::Layout, opt::PassKind::Superblock, opt::PassKind::Inline},
      opt::PassOptions());
  ASSERT_TRUE(Result.Ok) << "seed " << Seed << ": " << Result.Error;
  std::vector<std::string> Errors;
  ASSERT_TRUE(ir::verifyModule(*M, Errors)) << "seed " << Seed << ": "
                                            << Errors.front();

  // The optimized program must compute what the original computed, and
  // the two engines must agree on it bit for bit — including the
  // ground-truth event totals of the transformed code.
  prof::RunOutcome OptRef = runPlain(*M, vm::Engine::Reference);
  prof::RunOutcome OptThr = runPlain(*M, vm::Engine::Threaded);
  ASSERT_TRUE(OptRef.Result.Ok) << "seed " << Seed << ": "
                                << OptRef.Result.Error;
  EXPECT_EQ(OptRef.Result.ExitValue, BaseRef.Result.ExitValue)
      << "seed " << Seed;

  EXPECT_EQ(OptRef.Result.Ok, OptThr.Result.Ok) << "seed " << Seed;
  EXPECT_EQ(OptRef.Result.Error, OptThr.Result.Error) << "seed " << Seed;
  EXPECT_EQ(OptRef.Result.ExitValue, OptThr.Result.ExitValue)
      << "seed " << Seed;
  EXPECT_EQ(OptRef.Result.ExecutedInsts, OptThr.Result.ExecutedInsts)
      << "seed " << Seed;
  for (unsigned E = 0; E != hw::NumEvents; ++E)
    EXPECT_EQ(OptRef.Totals[E], OptThr.Totals[E])
        << "seed " << Seed << " event "
        << hw::eventName(static_cast<hw::Event>(E));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PgoDifferentialTest,
    ::testing::Range<uint64_t>(
        0, testutil::seedCountFromEnv("PP_PGO_DIFF_SEEDS", 64)));
