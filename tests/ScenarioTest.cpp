//===- tests/ScenarioTest.cpp - the examples' claims, pinned -------------------===//
//
// The three scenario examples make quantitative claims (conflict paths
// dominate misses; call-count attribution inverts the truth; hot-path
// layout slashes I-cache misses). These tests pin smaller versions of
// each so the claims cannot silently rot.
//
//===----------------------------------------------------------------------===//

#include "bl/PathNumbering.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "opt/Layout.h"
#include "prof/Session.h"

#include <gtest/gtest.h>

using namespace pp;
using namespace pp::ir;

TEST(Scenario, ConflictPathOwnsTheMisses) {
  // Two arrays one cache-size apart; one path touches both (ping-pong),
  // the other touches one. Flow profiling must attribute the conflict.
  auto M = std::make_unique<Module>();
  size_t A = M->addGlobal("a", 16 * 1024);
  size_t B = M->addGlobal("b", 8 * 1024);
  uint64_t AAddr = M->global(A).Addr;
  uint64_t BAddr = M->global(B).Addr;

  Function *Process = M->addFunction("process", 2);
  {
    BasicBlock *Entry = Process->addBlock("entry");
    BasicBlock *Both = Process->addBlock("both");
    BasicBlock *OnlyA = Process->addBlock("onlyA");
    BasicBlock *Done = Process->addBlock("done");
    IRBuilder IRB(Process, Entry);
    // One cache line per slot, so consecutive calls (which alternate
    // paths) touch different lines and only the conflict evicts.
    Reg Slot = IRB.andImm(0, 255);
    Reg Off = IRB.shlImm(Slot, 5);
    Reg APtr = IRB.addImm(Off, static_cast<int64_t>(AAddr));
    Reg AVal = IRB.load(APtr, 0);
    Reg Out = Process->freshReg();
    IRB.condBr(1, Both, OnlyA);
    IRB.setBlock(OnlyA);
    IRB.movRegInto(Out, AVal);
    IRB.br(Done);
    IRB.setBlock(Both);
    Reg BPtr = IRB.addImm(Off, static_cast<int64_t>(BAddr));
    Reg BVal = IRB.load(BPtr, 0);
    Reg Sum = IRB.add(AVal, BVal);
    IRB.movRegInto(Out, Sum);
    IRB.br(Done);
    IRB.setBlock(Done);
    IRB.ret(Out);
  }
  Function *Main = M->addFunction("main", 0);
  {
    BasicBlock *Entry = Main->addBlock("entry");
    BasicBlock *Head = Main->addBlock("head");
    BasicBlock *Body = Main->addBlock("body");
    BasicBlock *Done = Main->addBlock("done");
    IRBuilder IRB(Main, Entry);
    Reg I = IRB.movImm(0);
    IRB.br(Head);
    IRB.setBlock(Head);
    Reg More = IRB.cmpLtImm(I, 4000);
    IRB.condBr(More, Body, Done);
    IRB.setBlock(Body);
    Reg Mod = IRB.andImm(I, 1);
    IRB.call(Process, {I, Mod});
    Reg Next = IRB.addImm(I, 1);
    IRB.movRegInto(I, Next);
    IRB.br(Head);
    IRB.setBlock(Done);
    IRB.retImm(0);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);

  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::FlowHw;
  prof::RunOutcome Run = prof::runProfile(*M, Options);
  ASSERT_TRUE(Run.Result.Ok);

  cfg::Cfg G(*M->function(Process->id()));
  bl::PathNumbering PN(G);
  double ConflictRate = 0, CleanRate = 0;
  for (const prof::PathEntry &Entry :
       Run.PathProfiles[Process->id()].Paths) {
    bl::RegeneratedPath Path = PN.regenerate(Entry.PathSum);
    bool IsBoth = false;
    for (unsigned Node : Path.Nodes)
      IsBoth |= G.block(Node)->name() == "both";
    double Rate = double(Entry.Metric1) / double(Entry.Freq);
    (IsBoth ? ConflictRate : CleanRate) = Rate;
  }
  EXPECT_GT(ConflictRate, 3 * CleanRate + 0.5)
      << "the conflict path must miss far more per execution";
}

TEST(Scenario, CallCountAttributionInverts) {
  // work(n) costs ~n; cheap caller makes 20x the calls with 1/100 the
  // argument. The CCT's measured cycles must invert the call-count story.
  auto M = std::make_unique<Module>();
  Function *Work = M->addFunction("work", 1);
  {
    BasicBlock *Entry = Work->addBlock("entry");
    BasicBlock *Head = Work->addBlock("head");
    BasicBlock *Body = Work->addBlock("body");
    BasicBlock *Done = Work->addBlock("done");
    IRBuilder IRB(Work, Entry);
    Reg Acc = IRB.movImm(0);
    Reg I = IRB.movImm(0);
    IRB.br(Head);
    IRB.setBlock(Head);
    Reg More = IRB.cmpLt(I, 0);
    IRB.condBr(More, Body, Done);
    IRB.setBlock(Body);
    Reg T = IRB.addImm(Acc, 3);
    IRB.movRegInto(Acc, T);
    Reg Next = IRB.addImm(I, 1);
    IRB.movRegInto(I, Next);
    IRB.br(Head);
    IRB.setBlock(Done);
    IRB.ret(Acc);
  }
  auto MakeCaller = [&](const char *Name, int64_t Calls, int64_t Arg) {
    Function *Caller = M->addFunction(Name, 0);
    BasicBlock *Entry = Caller->addBlock("entry");
    BasicBlock *Head = Caller->addBlock("head");
    BasicBlock *Body = Caller->addBlock("body");
    BasicBlock *Done = Caller->addBlock("done");
    IRBuilder IRB(Caller, Entry);
    Reg I = IRB.movImm(0);
    IRB.br(Head);
    IRB.setBlock(Head);
    Reg More = IRB.cmpLtImm(I, Calls);
    IRB.condBr(More, Body, Done);
    IRB.setBlock(Body);
    Reg N = IRB.movImm(Arg);
    IRB.call(Work, {N});
    Reg Next = IRB.addImm(I, 1);
    IRB.movRegInto(I, Next);
    IRB.br(Head);
    IRB.setBlock(Done);
    IRB.retImm(0);
    return Caller;
  };
  Function *Cheap = MakeCaller("cheap", 400, 5);
  Function *Expensive = MakeCaller("expensive", 20, 500);
  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    IRB.call(Cheap, {});
    IRB.call(Expensive, {});
    IRB.retImm(0);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);

  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::ContextHw;
  Options.Config.Pic0 = hw::Event::Cycles;
  prof::RunOutcome Run = prof::runProfile(*M, Options);
  ASSERT_TRUE(Run.Result.Ok);

  uint64_t CheapCalls = 0, CheapCycles = 0, ExpCalls = 0, ExpCycles = 0;
  for (const auto &R : Run.Tree->records()) {
    if (R->procId() != Work->id() || !R->parent())
      continue;
    if (R->parent()->procId() == Cheap->id()) {
      CheapCalls = R->Metrics[0];
      CheapCycles = R->Metrics[1];
    } else if (R->parent()->procId() == Expensive->id()) {
      ExpCalls = R->Metrics[0];
      ExpCycles = R->Metrics[1];
    }
  }
  EXPECT_GT(CheapCalls, 10 * ExpCalls) << "call counts favour cheap";
  EXPECT_GT(ExpCycles, 3 * CheapCycles) << "cycles favour expensive";
}

TEST(Scenario, HotPathLayoutCutsICacheMisses) {
  // One function with the hot path interleaved between fat cold blocks,
  // run alternately with a copy so the two overflow the I-cache together.
  auto M = std::make_unique<Module>();
  size_t DataIndex = M->addGlobal("data", 4096 * 8);
  uint64_t Data = M->global(DataIndex).Addr;
  // Mirrors examples/hot_path_optimizer.cpp: hot blocks (with a data
  // load) interleaved with fat straight-line cold blocks.
  auto MakeStage = [&](const char *Name, int Seed) {
    Function *F = M->addFunction(Name, 1);
    BasicBlock *Cursor = F->addBlock("entry");
    IRBuilder IRB(F, Cursor);
    Reg Value = 0;
    Reg Acc = IRB.movImm(Seed);
    for (int Stage = 0; Stage != 8; ++Stage) {
      BasicBlock *Hot = F->addBlock("hot" + std::to_string(Stage));
      BasicBlock *Cold = F->addBlock("cold" + std::to_string(Stage));
      BasicBlock *Join = F->addBlock("join" + std::to_string(Stage));
      IRB.setBlock(Cursor);
      Reg Masked = IRB.andImm(Value, 1023);
      Reg IsError = IRB.cmpEqImm(Masked, 999 - Stage);
      IRB.condBr(IsError, Cold, Hot);
      IRB.setBlock(Hot);
      Reg Slot = IRB.andImm(Acc, 511);
      Reg Offset = IRB.shlImm(Slot, 3);
      Reg Addr = IRB.addImm(Offset, static_cast<int64_t>(Data));
      Reg Loaded = IRB.load(Addr, 0);
      Reg Mixed = IRB.add(Acc, Loaded);
      Reg Rotated = IRB.mulImm(Mixed, 33);
      Reg Clipped = IRB.andImm(Rotated, 0xfffff);
      IRB.movRegInto(Acc, Clipped);
      IRB.br(Join);
      IRB.setBlock(Cold);
      Reg C = IRB.movImm(Stage);
      for (int Filler = 0; Filler != 220; ++Filler) {
        Reg T = IRB.addImm(C, Filler);
        C = IRB.xorImm(T, 0x5a5a);
      }
      IRB.movRegInto(Acc, C);
      IRB.br(Join);
      Cursor = Join;
    }
    IRB.setBlock(Cursor);
    IRB.ret(Acc);
    return F;
  };
  Function *StageA = MakeStage("stage_a", 17);
  Function *StageB = MakeStage("stage_b", 71);
  Function *StageC = MakeStage("stage_c", 131);
  Function *Main = M->addFunction("main", 0);
  {
    BasicBlock *Entry = Main->addBlock("entry");
    BasicBlock *Head = Main->addBlock("head");
    BasicBlock *Body = Main->addBlock("body");
    BasicBlock *Done = Main->addBlock("done");
    IRBuilder IRB(Main, Entry);
    Reg I = IRB.movImm(0);
    IRB.br(Head);
    IRB.setBlock(Head);
    Reg More = IRB.cmpLtImm(I, 1200);
    IRB.condBr(More, Body, Done);
    IRB.setBlock(Body);
    Reg A = IRB.call(StageA, {I});
    Reg B = IRB.call(StageB, {A});
    IRB.call(StageC, {B});
    Reg Next = IRB.addImm(I, 1);
    IRB.movRegInto(I, Next);
    IRB.br(Head);
    IRB.setBlock(Done);
    IRB.retImm(0);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  ASSERT_GT(M->numInsts() * 4, 16u * 1024) << "must overflow the I-cache";

  prof::SessionOptions Base;
  Base.Config.M = prof::Mode::None;
  prof::RunOutcome Before = prof::runProfile(*M, Base);

  prof::SessionOptions FlowOptions;
  FlowOptions.Config.M = prof::Mode::FlowHw;
  prof::RunOutcome Profile = prof::runProfile(*M, FlowOptions);
  opt::layoutHotPathsFirst(*M, Profile);

  prof::RunOutcome After = prof::runProfile(*M, Base);
  ASSERT_TRUE(After.Result.Ok);
  EXPECT_EQ(After.Result.ExitValue, Before.Result.ExitValue);
  EXPECT_LT(After.total(hw::Event::ICacheMiss),
            Before.total(hw::Event::ICacheMiss) / 2)
      << "hot-path-first layout must at least halve I-cache misses";
  EXPECT_LT(After.total(hw::Event::Cycles),
            Before.total(hw::Event::Cycles));
}
