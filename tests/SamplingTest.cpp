//===- tests/SamplingTest.cpp - the §7.2 sampling baseline ---------------------===//

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "prof/SamplingProfiler.h"
#include "prof/Session.h"
#include "workloads/Examples.h"
#include "workloads/Spec.h"

#include <gtest/gtest.h>

using namespace pp;

namespace {

struct SampledRun {
  vm::RunResult Result;
  std::unique_ptr<prof::SamplingProfiler> Sampler;
};

SampledRun runSampled(ir::Module &M, uint64_t Interval) {
  SampledRun Out;
  hw::Machine Machine;
  Out.Sampler = std::make_unique<prof::SamplingProfiler>(Machine, Interval);
  vm::Vm VM(M, Machine);
  VM.setTracer(Out.Sampler.get());
  Out.Result = VM.run();
  return Out;
}

} // namespace

TEST(Sampling, SampleCountTracksRunLengthAndInterval) {
  auto Short = workloads::buildLoopModule(1000);
  auto Long = workloads::buildLoopModule(4000);
  SampledRun ShortRun = runSampled(*Short, 500);
  SampledRun LongRun = runSampled(*Long, 500);
  ASSERT_TRUE(ShortRun.Result.Ok && LongRun.Result.Ok);
  // The log is unbounded: it grows with execution length.
  EXPECT_GT(LongRun.Sampler->numSamples(),
            2 * ShortRun.Sampler->numSamples());

  SampledRun Sparse = runSampled(*Long, 5000);
  EXPECT_LT(Sparse.Sampler->numSamples(), LongRun.Sampler->numSamples());
}

TEST(Sampling, SamplesObserveRealContexts) {
  auto M = workloads::buildFig4Module();
  SampledRun Run = runSampled(*M, 5);
  ASSERT_TRUE(Run.Result.Ok);
  ASSERT_GT(Run.Sampler->numSamples(), 0u);

  // Every sampled stack must be a prefix-consistent real context:
  // main at the bottom, no empty frames.
  unsigned MainId = M->findFunction("main")->id();
  for (const std::vector<uint32_t> &Sample : Run.Sampler->samples()) {
    if (Sample.empty())
      continue; // interrupt before main entered
    EXPECT_EQ(Sample.front(), MainId);
    EXPECT_LE(Sample.size(), 5u); // main M A B C is the deepest chain
  }
}

TEST(Sampling, DenseSamplingFindsAllContextsOfTinyProgram) {
  auto M = workloads::buildFig4Module();
  SampledRun Run = runSampled(*M, 1);
  ASSERT_TRUE(Run.Result.Ok);

  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::Context;
  prof::RunOutcome Ctx = prof::runProfile(*M, Options);
  // Sampling every cycle sees every context that is ever on the stack,
  // minus the empty pre-main context.
  EXPECT_GE(Run.Sampler->numDistinctContexts() + 1,
            Ctx.Tree->numRecords() - 1);
}

TEST(Sampling, SparseSamplingMissesContextsTheCctKeeps) {
  // The statistical failure the CCT avoids: rarely-active contexts fall
  // between samples.
  auto M = workloads::buildWorkload("130.li", 1);
  SampledRun Run = runSampled(*M, 50000);
  ASSERT_TRUE(Run.Result.Ok);

  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::Context;
  prof::RunOutcome Ctx = prof::runProfile(*M, Options);
  size_t Total = Ctx.Tree->numRecords() - 1;
  EXPECT_LT(Run.Sampler->numDistinctContexts(), Total)
      << "sparse sampling should miss some contexts";
}

TEST(Sampling, LogGrowsWhileCctStaysBounded) {
  // Double the run length: the sample log roughly doubles, the CCT does
  // not grow at all (same program structure).
  auto Small = workloads::buildWorkload("102.swim", 1);
  auto Big = workloads::buildWorkload("102.swim", 2);

  SampledRun SmallRun = runSampled(*Small, 2000);
  SampledRun BigRun = runSampled(*Big, 2000);
  ASSERT_TRUE(SmallRun.Result.Ok && BigRun.Result.Ok);
  EXPECT_GT(BigRun.Sampler->logBytes(),
            SmallRun.Sampler->logBytes() * 3 / 2);

  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::Context;
  prof::RunOutcome SmallCtx = prof::runProfile(*Small, Options);
  prof::RunOutcome BigCtx = prof::runProfile(*Big, Options);
  EXPECT_EQ(SmallCtx.Tree->numRecords(), BigCtx.Tree->numRecords());
  EXPECT_EQ(SmallCtx.Tree->heapBytes(), BigCtx.Tree->heapBytes());
}

TEST(Sampling, UnmatchedExitAndUnwindDoNotUnderflow) {
  // A tracer attached mid-execution (or a longjmp past frames it never
  // saw entered) delivers exits with no matching enter. The shadow stack
  // must absorb them instead of popping an empty vector (UB).
  auto M = workloads::buildFig4Module();
  const ir::Function &Main = *M->findFunction("main");
  hw::Machine Machine;
  prof::SamplingProfiler Sampler(Machine, 1000);

  Sampler.onExitFunction(Main);   // unmatched: stack is empty
  Sampler.onUnwindFunction(Main); // unmatched: still empty
  EXPECT_EQ(Sampler.numDistinctContexts(), 0u);

  Sampler.onEnterFunction(Main);
  Sampler.onExitFunction(Main); // matched
  Sampler.onExitFunction(Main); // unmatched again — still safe
  Sampler.onUnwindFunction(Main);
  EXPECT_EQ(Sampler.numSamples(), 0u); // interval never elapsed
}

TEST(Sampling, SurvivesLongjmpOutOfSignalHandler) {
  // The end-to-end shape behind the guard: a signal handler longjmps back
  // into main, unwinding handler/caller frames non-locally while the
  // sampler's shadow stack tracks them. The run must finish and every
  // sampled stack must still be rooted at main.
  auto M = std::make_unique<ir::Module>();
  ir::Function *Handler = M->addFunction("handler", 0);
  {
    ir::BasicBlock *Entry = Handler->addBlock("entry");
    ir::BasicBlock *Jump = Handler->addBlock("jump");
    ir::BasicBlock *Normal = Handler->addBlock("normal");
    ir::IRBuilder IRB(Handler, Entry);
    uint64_t FlagAddr = layout::GlobalBase;
    ir::Reg Armed = IRB.loadAbs(static_cast<int64_t>(FlagAddr));
    IRB.condBr(Armed, Jump, Normal);
    IRB.setBlock(Jump);
    ir::Reg V = IRB.movImm(123);
    IRB.longjmp(4, V);
    IRB.setBlock(Normal);
    IRB.retImm(0);
  }
  ir::Function *Main = M->addFunction("main", 0);
  {
    ir::BasicBlock *Entry = Main->addBlock("entry");
    ir::BasicBlock *First = Main->addBlock("first");
    ir::BasicBlock *Spin = Main->addBlock("spin");
    ir::BasicBlock *After = Main->addBlock("after");
    ir::IRBuilder IRB(Main, Entry);
    uint64_t FlagAddr = layout::GlobalBase;
    ir::Reg One = IRB.movImm(1);
    IRB.storeAbs(static_cast<int64_t>(FlagAddr), One); // arm the handler
    ir::Reg Jumped = IRB.setjmp(4);
    ir::Reg IsZero = IRB.cmpEqImm(Jumped, 0);
    IRB.condBr(IsZero, First, After);
    IRB.setBlock(First);
    IRB.br(Spin);
    IRB.setBlock(Spin);
    IRB.br(Spin); // spin until the handler longjmps out
    IRB.setBlock(After);
    IRB.ret(Jumped);
  }
  M->setMain(Main);
  ir::verifyModuleOrDie(*M);

  hw::Machine Machine;
  prof::SamplingProfiler Sampler(Machine, 25);
  vm::Vm VM(*M, Machine);
  VM.setTracer(&Sampler);
  VM.setSignal(Handler, 50);
  VM.setMaxInsts(1 << 20);
  vm::RunResult Result = VM.run();
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_EQ(Result.ExitValue, 123u);
  EXPECT_GT(VM.signalsDelivered(), 0u);

  unsigned MainId = Main->id();
  for (const std::vector<uint32_t> &Sample : Sampler.samples()) {
    if (Sample.empty())
      continue; // interrupt before main entered
    EXPECT_EQ(Sample.front(), MainId);
    EXPECT_LE(Sample.size(), 2u); // main, possibly the handler
  }
}
