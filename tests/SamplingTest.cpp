//===- tests/SamplingTest.cpp - the §7.2 sampling baseline ---------------------===//

#include "prof/SamplingProfiler.h"
#include "prof/Session.h"
#include "workloads/Examples.h"
#include "workloads/Spec.h"

#include <gtest/gtest.h>

using namespace pp;

namespace {

struct SampledRun {
  vm::RunResult Result;
  std::unique_ptr<prof::SamplingProfiler> Sampler;
};

SampledRun runSampled(ir::Module &M, uint64_t Interval) {
  SampledRun Out;
  hw::Machine Machine;
  Out.Sampler = std::make_unique<prof::SamplingProfiler>(Machine, Interval);
  vm::Vm VM(M, Machine);
  VM.setTracer(Out.Sampler.get());
  Out.Result = VM.run();
  return Out;
}

} // namespace

TEST(Sampling, SampleCountTracksRunLengthAndInterval) {
  auto Short = workloads::buildLoopModule(1000);
  auto Long = workloads::buildLoopModule(4000);
  SampledRun ShortRun = runSampled(*Short, 500);
  SampledRun LongRun = runSampled(*Long, 500);
  ASSERT_TRUE(ShortRun.Result.Ok && LongRun.Result.Ok);
  // The log is unbounded: it grows with execution length.
  EXPECT_GT(LongRun.Sampler->numSamples(),
            2 * ShortRun.Sampler->numSamples());

  SampledRun Sparse = runSampled(*Long, 5000);
  EXPECT_LT(Sparse.Sampler->numSamples(), LongRun.Sampler->numSamples());
}

TEST(Sampling, SamplesObserveRealContexts) {
  auto M = workloads::buildFig4Module();
  SampledRun Run = runSampled(*M, 5);
  ASSERT_TRUE(Run.Result.Ok);
  ASSERT_GT(Run.Sampler->numSamples(), 0u);

  // Every sampled stack must be a prefix-consistent real context:
  // main at the bottom, no empty frames.
  unsigned MainId = M->findFunction("main")->id();
  for (const std::vector<uint32_t> &Sample : Run.Sampler->samples()) {
    if (Sample.empty())
      continue; // interrupt before main entered
    EXPECT_EQ(Sample.front(), MainId);
    EXPECT_LE(Sample.size(), 5u); // main M A B C is the deepest chain
  }
}

TEST(Sampling, DenseSamplingFindsAllContextsOfTinyProgram) {
  auto M = workloads::buildFig4Module();
  SampledRun Run = runSampled(*M, 1);
  ASSERT_TRUE(Run.Result.Ok);

  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::Context;
  prof::RunOutcome Ctx = prof::runProfile(*M, Options);
  // Sampling every cycle sees every context that is ever on the stack,
  // minus the empty pre-main context.
  EXPECT_GE(Run.Sampler->numDistinctContexts() + 1,
            Ctx.Tree->numRecords() - 1);
}

TEST(Sampling, SparseSamplingMissesContextsTheCctKeeps) {
  // The statistical failure the CCT avoids: rarely-active contexts fall
  // between samples.
  auto M = workloads::buildWorkload("130.li", 1);
  SampledRun Run = runSampled(*M, 50000);
  ASSERT_TRUE(Run.Result.Ok);

  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::Context;
  prof::RunOutcome Ctx = prof::runProfile(*M, Options);
  size_t Total = Ctx.Tree->numRecords() - 1;
  EXPECT_LT(Run.Sampler->numDistinctContexts(), Total)
      << "sparse sampling should miss some contexts";
}

TEST(Sampling, LogGrowsWhileCctStaysBounded) {
  // Double the run length: the sample log roughly doubles, the CCT does
  // not grow at all (same program structure).
  auto Small = workloads::buildWorkload("102.swim", 1);
  auto Big = workloads::buildWorkload("102.swim", 2);

  SampledRun SmallRun = runSampled(*Small, 2000);
  SampledRun BigRun = runSampled(*Big, 2000);
  ASSERT_TRUE(SmallRun.Result.Ok && BigRun.Result.Ok);
  EXPECT_GT(BigRun.Sampler->logBytes(),
            SmallRun.Sampler->logBytes() * 3 / 2);

  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::Context;
  prof::RunOutcome SmallCtx = prof::runProfile(*Small, Options);
  prof::RunOutcome BigCtx = prof::runProfile(*Big, Options);
  EXPECT_EQ(SmallCtx.Tree->numRecords(), BigCtx.Tree->numRecords());
  EXPECT_EQ(SmallCtx.Tree->heapBytes(), BigCtx.Tree->heapBytes());
}
