//===- tests/SamplingTest.cpp - the overflow-sampling acquisition engine -------===//
//
// §7.2's sampling baseline, now acquired through counter-overflow traps:
// prof::OverflowSampling arms a PIC to wrap after a period of events and
// reconstructs approximate profiles from the trapped PCs plus a shadow
// call stack. The tests cover the paper's statistical arguments (log
// growth, missed contexts), the trap edge cases (wrap at a call
// boundary, traps during signal handlers, traps with an empty shadow
// stack), and the determinism contract (same sampled profile from both
// VM engines and any scheduler width).
//
//===----------------------------------------------------------------------===//

#include "cct/Export.h"
#include "driver/RunCache.h"
#include "driver/RunScheduler.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "prof/OverflowSampling.h"
#include "prof/Session.h"
#include "workloads/Examples.h"
#include "workloads/Spec.h"

#include <gtest/gtest.h>

using namespace pp;

namespace {

/// One standalone sampled run: engine, prepared module, machine, VM.
struct SampledRun {
  vm::RunResult Result;
  std::unique_ptr<prof::OverflowSampling> Sampler;
  prof::Instrumented Instr;
  std::unique_ptr<hw::Machine> Machine;
  std::unique_ptr<vm::Vm> VM;

  prof::RunOutcome extract() {
    prof::RunOutcome Outcome;
    Sampler->extract(Outcome, *Machine);
    return Outcome;
  }
};

/// Runs \p M with the overflow engine trapping every \p Period cycles
/// (PIC0 = Cycles), under \p Mode's reconstruction.
SampledRun runSampled(ir::Module &M, uint64_t Period,
                      prof::Mode Mode = prof::Mode::Context) {
  SampledRun Out;
  prof::ProfileConfig Config;
  Config.M = Mode;
  Config.Pic0 = hw::Event::Cycles;
  prof::AcquisitionOptions Acq;
  Acq.Kind = prof::Acquisition::Overflow;
  Acq.Pic = 0;
  Acq.Period = Period;
  Out.Sampler = std::make_unique<prof::OverflowSampling>(M, Config, Acq);
  Out.Instr = Out.Sampler->prepare();
  Out.Machine = std::make_unique<hw::Machine>();
  Out.Machine->counters().selectPicEvents(Config.Pic0, Config.Pic1);
  Out.VM = std::make_unique<vm::Vm>(*Out.Instr.M, *Out.Machine);
  Out.Sampler->attach(*Out.Machine, *Out.VM, Out.Instr);
  Out.Result = Out.VM->run();
  return Out;
}

} // namespace

TEST(Sampling, SampleCountTracksRunLengthAndInterval) {
  auto Short = workloads::buildLoopModule(1000);
  auto Long = workloads::buildLoopModule(4000);
  SampledRun ShortRun = runSampled(*Short, 500);
  SampledRun LongRun = runSampled(*Long, 500);
  ASSERT_TRUE(ShortRun.Result.Ok && LongRun.Result.Ok);
  // The log is unbounded: it grows with execution length.
  EXPECT_GT(LongRun.Sampler->numSamples(),
            2 * ShortRun.Sampler->numSamples());

  SampledRun Sparse = runSampled(*Long, 5000);
  EXPECT_LT(Sparse.Sampler->numSamples(), LongRun.Sampler->numSamples());
}

TEST(Sampling, SamplesObserveRealContexts) {
  auto M = workloads::buildFig4Module();
  SampledRun Run = runSampled(*M, 5);
  ASSERT_TRUE(Run.Result.Ok);
  ASSERT_GT(Run.Sampler->numSamples(), 0u);

  // Every sampled stack must be a prefix-consistent real context:
  // main at the bottom, no empty frames.
  unsigned MainId = M->findFunction("main")->id();
  for (const std::vector<uint32_t> &Sample : Run.Sampler->samples()) {
    if (Sample.empty())
      continue; // trap before main entered
    EXPECT_EQ(Sample.front(), MainId);
    EXPECT_LE(Sample.size(), 5u); // main M A B C is the deepest chain
  }
}

TEST(Sampling, DenseSamplingFindsAllContextsOfTinyProgram) {
  auto M = workloads::buildFig4Module();
  SampledRun Run = runSampled(*M, 1);
  ASSERT_TRUE(Run.Result.Ok);

  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::Context;
  prof::RunOutcome Ctx = prof::runProfile(*M, Options);
  // Trapping every cycle sees every context that is ever on the stack,
  // minus the empty pre-main context.
  EXPECT_GE(Run.Sampler->numDistinctContexts() + 1,
            Ctx.Tree->numRecords() - 1);
}

TEST(Sampling, SparseSamplingMissesContextsTheCctKeeps) {
  // The statistical failure the CCT avoids: rarely-active contexts fall
  // between samples.
  auto M = workloads::buildWorkload("130.li", 1);
  SampledRun Run = runSampled(*M, 50000);
  ASSERT_TRUE(Run.Result.Ok);

  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::Context;
  prof::RunOutcome Ctx = prof::runProfile(*M, Options);
  size_t Total = Ctx.Tree->numRecords() - 1;
  EXPECT_LT(Run.Sampler->numDistinctContexts(), Total)
      << "sparse sampling should miss some contexts";
}

TEST(Sampling, LogGrowsWhileCctStaysBounded) {
  // Double the run length: the sample log roughly doubles, the CCT does
  // not grow at all (same program structure).
  auto Small = workloads::buildWorkload("102.swim", 1);
  auto Big = workloads::buildWorkload("102.swim", 2);

  SampledRun SmallRun = runSampled(*Small, 2000);
  SampledRun BigRun = runSampled(*Big, 2000);
  ASSERT_TRUE(SmallRun.Result.Ok && BigRun.Result.Ok);
  EXPECT_GT(BigRun.Sampler->logBytes(),
            SmallRun.Sampler->logBytes() * 3 / 2);

  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::Context;
  prof::RunOutcome SmallCtx = prof::runProfile(*Small, Options);
  prof::RunOutcome BigCtx = prof::runProfile(*Big, Options);
  EXPECT_EQ(SmallCtx.Tree->numRecords(), BigCtx.Tree->numRecords());
  EXPECT_EQ(SmallCtx.Tree->heapBytes(), BigCtx.Tree->heapBytes());
}

TEST(Sampling, UnmatchedExitAndUnwindDoNotUnderflow) {
  // A tracer attached mid-execution (or a longjmp past frames it never
  // saw entered) delivers exits with no matching enter. The shadow stack
  // must absorb them instead of popping an empty vector (UB).
  auto M = workloads::buildFig4Module();
  const ir::Function &Main = *M->findFunction("main");
  prof::ProfileConfig Config;
  Config.M = prof::Mode::Context;
  prof::AcquisitionOptions Acq;
  Acq.Kind = prof::Acquisition::Overflow;
  Acq.Period = 1000;
  prof::OverflowSampling Sampler(*M, Config, Acq);

  Sampler.onExitFunction(Main);   // unmatched: stack is empty
  Sampler.onUnwindFunction(Main); // unmatched: still empty
  EXPECT_EQ(Sampler.numDistinctContexts(), 0u);

  Sampler.onEnterFunction(Main);
  Sampler.onExitFunction(Main); // matched
  Sampler.onExitFunction(Main); // unmatched again — still safe
  Sampler.onUnwindFunction(Main);
  EXPECT_EQ(Sampler.numSamples(), 0u); // no trap ever delivered
}

TEST(Sampling, TrapWithEmptyShadowStackIsRecordedSafely) {
  // A trap can land before main's frame exists (or after every frame
  // unwound). The handler must log an empty stack, bump no context, and
  // re-arm without touching the tree.
  auto M = workloads::buildFig4Module();
  prof::ProfileConfig Config;
  Config.M = prof::Mode::Context;
  prof::AcquisitionOptions Acq;
  Acq.Kind = prof::Acquisition::Overflow;
  Acq.Period = 64;
  prof::OverflowSampling Sampler(*M, Config, Acq);
  prof::Instrumented Instr = Sampler.prepare();
  hw::Machine Machine;
  Machine.counters().selectPicEvents(Config.Pic0, Config.Pic1);
  vm::Vm VM(*Instr.M, Machine);
  Sampler.attach(Machine, VM, Instr);

  Sampler.onOverflowTrap(VM, 0); // shadow stack is empty
  EXPECT_EQ(Sampler.stats().Traps, 1u);
  EXPECT_EQ(Sampler.numSamples(), 1u);
  EXPECT_TRUE(Sampler.samples().front().empty());
  EXPECT_EQ(Sampler.numDistinctContexts(), 0u); // tree untouched
  EXPECT_TRUE(Machine.counters().overflowArmed()) << "handler re-arms";
}

TEST(Sampling, WrapExactlyAtCallBoundary) {
  // Arm the instruction counter so the wrap lands exactly on a call
  // instruction: the trap is delivered at the next dispatch boundary,
  // which is the callee's first instruction — the sample must attribute
  // to the callee's context, with the shadow stack already consistent.
  //
  // Instruction stream: main.mov(1) main.call(2) A.ret(3) main.ret(4).
  auto Build = [] {
    auto M = std::make_unique<ir::Module>();
    ir::Function *A = M->addFunction("A", 0);
    {
      ir::IRBuilder IRB(A, A->addBlock("entry"));
      IRB.retImm(7);
    }
    ir::Function *Main = M->addFunction("main", 0);
    {
      ir::IRBuilder IRB(Main, Main->addBlock("entry"));
      IRB.movImm(1);
      IRB.call(A, {});
      IRB.retImm(0);
    }
    M->setMain(Main);
    ir::verifyModuleOrDie(*M);
    return M;
  };

  auto RunWithInstPeriod = [&Build](uint64_t Period) {
    auto M = Build();
    prof::ProfileConfig Config;
    Config.M = prof::Mode::Context;
    Config.Pic0 = hw::Event::Insts;
    prof::AcquisitionOptions Acq;
    Acq.Kind = prof::Acquisition::Overflow;
    Acq.Pic = 0;
    Acq.Period = Period;
    auto Sampler = std::make_unique<prof::OverflowSampling>(*M, Config, Acq);
    prof::Instrumented Instr = Sampler->prepare();
    hw::Machine Machine;
    Machine.counters().selectPicEvents(Config.Pic0, Config.Pic1);
    vm::Vm VM(*Instr.M, Machine);
    Sampler->attach(Machine, VM, Instr);
    vm::RunResult Result = VM.run();
    EXPECT_TRUE(Result.Ok) << Result.Error;
    return Sampler;
  };

  // Wrap on the call instruction itself: delivery happens with A's frame
  // already pushed, so the first sample's stack is [main, A].
  auto OnCall = RunWithInstPeriod(2);
  ASSERT_GE(OnCall->numSamples(), 1u);
  ASSERT_EQ(OnCall->samples().front().size(), 2u);
  EXPECT_EQ(OnCall->samples().front().back(), 0u);  // A is function 0
  EXPECT_EQ(OnCall->samples().front().front(), 1u); // main below it

  // Wrap on A's return: delivery happens back in main, after the callee
  // frame popped — the sample must not still show A.
  auto OnRet = RunWithInstPeriod(3);
  ASSERT_GE(OnRet->numSamples(), 1u);
  ASSERT_EQ(OnRet->samples().front().size(), 1u);
  EXPECT_EQ(OnRet->samples().front().front(), 1u); // just main
}

TEST(Sampling, TrapDuringSignalHandlerReRootsTheContext) {
  // Traps that land while a signal handler runs must attribute to the
  // handler's re-rooted context (root -> SignalSlot -> handler), not to
  // an interrupted-call child — the same multiple-roots answer the exact
  // CCT gives (§4.2).
  auto M = workloads::buildLoopModule(20000);
  ir::Function *Handler = M->addFunction("handler", 0);
  {
    ir::BasicBlock *Entry = Handler->addBlock("entry");
    ir::IRBuilder IRB(Handler, Entry);
    // Enough work that a period-64 cycle trap regularly lands inside.
    ir::Reg V = IRB.movImm(0);
    for (int Step = 0; Step != 24; ++Step)
      V = IRB.addImm(V, 1);
    IRB.ret(V);
  }
  ir::verifyModuleOrDie(*M);

  prof::ProfileConfig Config;
  Config.M = prof::Mode::Context;
  Config.Pic0 = hw::Event::Cycles;
  prof::AcquisitionOptions Acq;
  Acq.Kind = prof::Acquisition::Overflow;
  Acq.Pic = 0;
  Acq.Period = 64;
  prof::OverflowSampling Sampler(*M, Config, Acq);
  prof::Instrumented Instr = Sampler.prepare();
  hw::Machine Machine;
  Machine.counters().selectPicEvents(Config.Pic0, Config.Pic1);
  vm::Vm VM(*Instr.M, Machine);
  VM.setSignal(Instr.M->findFunction("handler"), 100);
  Sampler.attach(Machine, VM, Instr);
  vm::RunResult Result = VM.run();
  ASSERT_TRUE(Result.Ok) << Result.Error;
  ASSERT_GT(VM.signalsDelivered(), 0u);

  prof::RunOutcome Outcome;
  Sampler.extract(Outcome, Machine);
  ASSERT_TRUE(Outcome.Tree);

  // Some trap landed inside the handler, and its record hangs off the
  // root's signal slot rather than off main's frame.
  unsigned HandlerId = M->findFunction("handler")->id();
  bool SampledHandlerUnderRoot = false;
  for (const auto &Record : Outcome.Tree->records()) {
    if (Record->procId() != HandlerId || Record->Metrics[0] == 0)
      continue;
    ASSERT_NE(Record->parent(), nullptr);
    EXPECT_EQ(Record->parent()->procId(), cct::RootProcId);
    SampledHandlerUnderRoot = true;
  }
  EXPECT_TRUE(SampledHandlerUnderRoot)
      << "no trap sampled the handler's re-rooted context";
}

TEST(Sampling, SurvivesLongjmpOutOfSignalHandler) {
  // The end-to-end shape behind the guard: a signal handler longjmps back
  // into main, unwinding handler/caller frames non-locally while the
  // sampler's shadow stack tracks them. The run must finish and every
  // sampled stack must still be rooted at main.
  auto M = std::make_unique<ir::Module>();
  ir::Function *Handler = M->addFunction("handler", 0);
  {
    ir::BasicBlock *Entry = Handler->addBlock("entry");
    ir::BasicBlock *Jump = Handler->addBlock("jump");
    ir::BasicBlock *Normal = Handler->addBlock("normal");
    ir::IRBuilder IRB(Handler, Entry);
    uint64_t FlagAddr = layout::GlobalBase;
    ir::Reg Armed = IRB.loadAbs(static_cast<int64_t>(FlagAddr));
    IRB.condBr(Armed, Jump, Normal);
    IRB.setBlock(Jump);
    ir::Reg V = IRB.movImm(123);
    IRB.longjmp(4, V);
    IRB.setBlock(Normal);
    IRB.retImm(0);
  }
  ir::Function *Main = M->addFunction("main", 0);
  {
    ir::BasicBlock *Entry = Main->addBlock("entry");
    ir::BasicBlock *First = Main->addBlock("first");
    ir::BasicBlock *Spin = Main->addBlock("spin");
    ir::BasicBlock *After = Main->addBlock("after");
    ir::IRBuilder IRB(Main, Entry);
    uint64_t FlagAddr = layout::GlobalBase;
    ir::Reg One = IRB.movImm(1);
    IRB.storeAbs(static_cast<int64_t>(FlagAddr), One); // arm the handler
    ir::Reg Jumped = IRB.setjmp(4);
    ir::Reg IsZero = IRB.cmpEqImm(Jumped, 0);
    IRB.condBr(IsZero, First, After);
    IRB.setBlock(First);
    IRB.br(Spin);
    IRB.setBlock(Spin);
    IRB.br(Spin); // spin until the handler longjmps out
    IRB.setBlock(After);
    IRB.ret(Jumped);
  }
  M->setMain(Main);
  ir::verifyModuleOrDie(*M);

  prof::ProfileConfig Config;
  Config.M = prof::Mode::Context;
  Config.Pic0 = hw::Event::Cycles;
  prof::AcquisitionOptions Acq;
  Acq.Kind = prof::Acquisition::Overflow;
  Acq.Pic = 0;
  Acq.Period = 25;
  prof::OverflowSampling Sampler(*M, Config, Acq);
  prof::Instrumented Instr = Sampler.prepare();
  hw::Machine Machine;
  Machine.counters().selectPicEvents(Config.Pic0, Config.Pic1);
  vm::Vm VM(*Instr.M, Machine);
  VM.setSignal(Instr.M->findFunction("handler"), 50);
  VM.setMaxInsts(1 << 20);
  Sampler.attach(Machine, VM, Instr);
  vm::RunResult Result = VM.run();
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_EQ(Result.ExitValue, 123u);
  EXPECT_GT(VM.signalsDelivered(), 0u);

  unsigned MainId = Main->id();
  for (const std::vector<uint32_t> &Sample : Sampler.samples()) {
    if (Sample.empty())
      continue; // trap before main entered
    EXPECT_EQ(Sample.front(), MainId);
    EXPECT_LE(Sample.size(), 2u); // main, possibly the handler
  }
}

namespace {

/// Everything the sampled profile contains, in comparable form.
struct SampledProfile {
  std::array<uint64_t, hw::NumEvents> Totals{};
  uint64_t Traps = 0;
  std::vector<std::tuple<unsigned, uint64_t, uint64_t, uint64_t, uint64_t>>
      Paths; // (func, sum, freq, m0, m1)
  std::vector<uint8_t> TreeBytes;
};

SampledProfile profileOf(const prof::RunOutcome &Outcome) {
  SampledProfile P;
  P.Totals = Outcome.Totals;
  P.Traps = Outcome.Acq.Traps;
  for (const prof::FunctionPathProfile &Profile : Outcome.PathProfiles)
    for (const prof::PathEntry &Entry : Profile.Paths)
      P.Paths.emplace_back(Profile.FuncId, Entry.PathSum, Entry.Freq,
                           Entry.Metric0, Entry.Metric1);
  if (Outcome.Tree)
    P.TreeBytes = cct::serialize(*Outcome.Tree);
  return P;
}

} // namespace

TEST(Sampling, DeterministicAcrossVmEngines) {
  // The determinism contract: trap points depend only on event totals,
  // which are engine-invariant — so a fixed (seed, period, workload)
  // yields the same sampled profile from the reference and threaded VMs,
  // jittered or not.
  for (uint64_t Seed : {uint64_t(0), uint64_t(42)}) {
    auto Run = [Seed](vm::Engine Engine) {
      auto M = workloads::buildWorkload("130.li", 1);
      prof::SessionOptions Options;
      Options.Config.M = prof::Mode::ContextFlow;
      Options.Engine = Engine;
      Options.Acq.Kind = prof::Acquisition::Overflow;
      Options.Acq.Pic = 0;
      Options.Acq.Period = 500;
      Options.Acq.Seed = Seed;
      return profileOf(prof::runProfile(*M, Options));
    };
    SampledProfile Ref = Run(vm::Engine::Reference);
    SampledProfile Thr = Run(vm::Engine::Threaded);
    EXPECT_EQ(Ref.Totals, Thr.Totals) << "seed " << Seed;
    EXPECT_EQ(Ref.Traps, Thr.Traps) << "seed " << Seed;
    EXPECT_EQ(Ref.Paths, Thr.Paths) << "seed " << Seed;
    EXPECT_EQ(Ref.TreeBytes, Thr.TreeBytes) << "seed " << Seed;
    EXPECT_GT(Ref.Traps, 0u);
  }
}

TEST(Sampling, DeterministicAcrossSchedulerWidths) {
  // Same contract across the driver: a serial scheduler and a 4-worker
  // pool produce identical sampled outcomes (the engine is per-run state;
  // nothing leaks across concurrently executing runs).
  auto Run = [](unsigned Threads) {
    driver::RunCache Cache("");
    driver::RunScheduler Sched(&Cache, Threads);
    std::vector<size_t> Tickets;
    for (const char *Name : {"130.li", "129.compress", "134.perl"}) {
      driver::RunPlan Plan;
      Plan.Workload = Name;
      Plan.Scale = 1;
      Plan.Options.Config.M = prof::Mode::FlowHw;
      Plan.Options.Acq.Kind = prof::Acquisition::Overflow;
      Plan.Options.Acq.Pic = 1;
      Plan.Options.Acq.Period = 200;
      Tickets.push_back(Sched.submit(std::move(Plan)));
    }
    std::vector<SampledProfile> Out;
    for (size_t Ticket : Tickets) {
      driver::OutcomePtr Outcome = Sched.get(Ticket);
      EXPECT_TRUE(Outcome && Outcome->Result.Ok);
      Out.push_back(profileOf(*Outcome));
    }
    return Out;
  };
  std::vector<SampledProfile> Serial = Run(0);
  std::vector<SampledProfile> Pooled = Run(4);
  ASSERT_EQ(Serial.size(), Pooled.size());
  for (size_t Index = 0; Index != Serial.size(); ++Index) {
    EXPECT_EQ(Serial[Index].Totals, Pooled[Index].Totals);
    EXPECT_EQ(Serial[Index].Traps, Pooled[Index].Traps);
    EXPECT_EQ(Serial[Index].Paths, Pooled[Index].Paths);
    EXPECT_EQ(Serial[Index].TreeBytes, Pooled[Index].TreeBytes);
  }
}
