//===- tests/VmTest.cpp - interpreter semantics --------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "vm/Vm.h"
#include "workloads/Examples.h"

#include <gtest/gtest.h>

using namespace pp;
using namespace pp::ir;

namespace {

vm::RunResult runModule(Module &M, uint64_t MaxInsts = 1 << 24) {
  hw::Machine Machine;
  vm::Vm VM(M, Machine);
  VM.setMaxInsts(MaxInsts);
  return VM.run();
}

} // namespace

TEST(Vm, ArithmeticAndComparisons) {
  Module M;
  Function *F = M.addFunction("main", 0);
  IRBuilder IRB(F, F->addBlock("entry"));
  Reg A = IRB.movImm(20);
  Reg B = IRB.movImm(-6);
  Reg Sum = IRB.add(A, B);          // 14
  Reg Product = IRB.mulImm(Sum, 3); // 42
  Reg Quotient = IRB.divImm(Product, 5); // 8
  Reg Remainder = IRB.remImm(Product, 5); // 2
  Reg Shifted = IRB.shlImm(Remainder, 4); // 32
  Reg Combined = IRB.add(Quotient, Shifted); // 40
  Reg Less = IRB.cmpLtImm(Combined, 41); // 1
  Reg Final = IRB.add(Combined, Less); // 41
  IRB.ret(Final);
  M.setMain(F);
  verifyModuleOrDie(M);

  vm::RunResult Result = runModule(M);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_EQ(Result.ExitValue, 41u);
}

TEST(Vm, SignedDivisionEdgeCases) {
  Module M;
  Function *F = M.addFunction("main", 0);
  IRBuilder IRB(F, F->addBlock("entry"));
  Reg A = IRB.movImm(-7);
  Reg Q = IRB.divImm(A, 2); // -3 (trunc toward zero)
  Reg Zero = IRB.movImm(0);
  Reg DivZero = IRB.divOp(A, Zero); // defined as 0
  Reg Sum = IRB.add(Q, DivZero);
  IRB.ret(Sum);
  M.setMain(F);
  vm::RunResult Result = runModule(M);
  ASSERT_TRUE(Result.Ok);
  EXPECT_EQ(static_cast<int64_t>(Result.ExitValue), -3);
}

TEST(Vm, LoadsStoresAndGlobals) {
  auto M = workloads::buildLoopModule(100);
  vm::RunResult Result = runModule(*M);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  // data[] starts zeroed; body adds i into slot i & 1023 and accumulates.
  // Sum over i of i = 4950.
  EXPECT_EQ(Result.ExitValue, 4950u);
}

TEST(Vm, RecursiveFactorial) {
  Module M;
  Function *Fact = M.addFunction("fact", 1);
  {
    BasicBlock *Entry = Fact->addBlock("entry");
    BasicBlock *Base = Fact->addBlock("base");
    BasicBlock *Recurse = Fact->addBlock("rec");
    IRBuilder IRB(Fact, Entry);
    Reg IsBase = IRB.cmpLeImm(0, 1);
    IRB.condBr(IsBase, Base, Recurse);
    IRB.setBlock(Base);
    IRB.retImm(1);
    IRB.setBlock(Recurse);
    Reg NMinus1 = IRB.subImm(0, 1);
    Reg Sub = IRB.call(Fact, {NMinus1});
    Reg Result = IRB.mul(0, Sub);
    IRB.ret(Result);
  }
  Function *Main = M.addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Reg N = IRB.movImm(10);
    Reg Result = IRB.call(Fact, {N});
    IRB.ret(Result);
  }
  M.setMain(Main);
  verifyModuleOrDie(M);
  vm::RunResult Result = runModule(M);
  ASSERT_TRUE(Result.Ok);
  EXPECT_EQ(Result.ExitValue, 3628800u);
}

TEST(Vm, IndirectCallsDispatchById) {
  Module M;
  Function *FortyTwo = M.addFunction("f42", 0);
  IRBuilder B42(FortyTwo, FortyTwo->addBlock("entry"));
  B42.retImm(42);
  Function *Seven = M.addFunction("f7", 0);
  IRBuilder B7(Seven, Seven->addBlock("entry"));
  B7.retImm(7);

  Function *Main = M.addFunction("main", 0);
  IRBuilder IRB(Main, Main->addBlock("entry"));
  Reg Id0 = IRB.movImm(FortyTwo->id());
  Reg V0 = IRB.icall(Id0);
  Reg Id1 = IRB.movImm(Seven->id());
  Reg V1 = IRB.icall(Id1);
  Reg Sum = IRB.add(V0, V1);
  IRB.ret(Sum);
  M.setMain(Main);
  vm::RunResult Result = runModule(M);
  ASSERT_TRUE(Result.Ok);
  EXPECT_EQ(Result.ExitValue, 49u);
}

TEST(Vm, IndirectCallToBadIdFails) {
  Module M;
  Function *Main = M.addFunction("main", 0);
  IRBuilder IRB(Main, Main->addBlock("entry"));
  Reg Id = IRB.movImm(99);
  IRB.icall(Id);
  IRB.retImm(0);
  M.setMain(Main);
  vm::RunResult Result = runModule(M);
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("invalid function id"), std::string::npos);
}

TEST(Vm, SwitchSelectsCaseAndDefault) {
  Module M;
  Function *F = M.addFunction("pick", 1);
  {
    BasicBlock *Entry = F->addBlock("entry");
    BasicBlock *Default = F->addBlock("default");
    BasicBlock *Case0 = F->addBlock("case0");
    BasicBlock *Case1 = F->addBlock("case1");
    IRBuilder IRB(F, Entry);
    IRB.switchOn(0, Default, {Case0, Case1});
    IRB.setBlock(Case0);
    IRB.retImm(100);
    IRB.setBlock(Case1);
    IRB.retImm(200);
    IRB.setBlock(Default);
    IRB.retImm(999);
  }
  Function *Main = M.addFunction("main", 0);
  IRBuilder IRB(Main, Main->addBlock("entry"));
  Reg V0 = IRB.movImm(0);
  Reg R0 = IRB.call(F, {V0});
  Reg V1 = IRB.movImm(1);
  Reg R1 = IRB.call(F, {V1});
  Reg V9 = IRB.movImm(9);
  Reg R9 = IRB.call(F, {V9});
  Reg Sum = IRB.add(R0, R1);
  Reg Total = IRB.add(Sum, R9);
  IRB.ret(Total);
  M.setMain(Main);
  vm::RunResult Result = runModule(M);
  ASSERT_TRUE(Result.Ok);
  EXPECT_EQ(Result.ExitValue, 1299u);
}

TEST(Vm, FloatingPointPipeline) {
  Module M;
  Function *Main = M.addFunction("main", 0);
  IRBuilder IRB(Main, Main->addBlock("entry"));
  Reg A = IRB.movFpImm(1.5);
  Reg B = IRB.movFpImm(2.25);
  Reg Sum = IRB.fadd(A, B);        // 3.75
  Reg Product = IRB.fmul(Sum, Sum); // 14.0625
  Reg Quotient = IRB.fdiv(Product, B); // 6.25
  Reg AsInt = IRB.fpToInt(Quotient);   // 6
  IRB.ret(AsInt);
  M.setMain(Main);

  hw::Machine Machine;
  vm::Vm VM(M, Machine);
  vm::RunResult Result = VM.run();
  ASSERT_TRUE(Result.Ok);
  EXPECT_EQ(Result.ExitValue, 6u);
  // Chained FP ops must have produced scoreboard stalls.
  EXPECT_GT(Machine.counters().total(hw::Event::FpStall), 0u);
}

TEST(Vm, AllocServesDistinctChunks) {
  Module M;
  Function *Main = M.addFunction("main", 0);
  IRBuilder IRB(Main, Main->addBlock("entry"));
  Reg P1 = IRB.allocImm(64);
  Reg P2 = IRB.allocImm(64);
  Reg V = IRB.movImm(11);
  IRB.store(P1, 0, V);
  Reg W = IRB.movImm(22);
  IRB.store(P2, 0, W);
  Reg L1 = IRB.load(P1, 0);
  Reg L2 = IRB.load(P2, 0);
  Reg Sum = IRB.add(L1, L2);
  IRB.ret(Sum);
  M.setMain(Main);
  vm::RunResult Result = runModule(M);
  ASSERT_TRUE(Result.Ok);
  EXPECT_EQ(Result.ExitValue, 33u);
}

TEST(Vm, SetjmpLongjmpUnwinds) {
  // main: setjmp; if first time call deep(3), else return the longjmp
  // value. deep(n) recurses then longjmps with 77.
  Module M;
  Function *Deep = M.addFunction("deep", 1);
  {
    BasicBlock *Entry = Deep->addBlock("entry");
    BasicBlock *Down = Deep->addBlock("down");
    BasicBlock *Jump = Deep->addBlock("jump");
    IRBuilder IRB(Deep, Entry);
    Reg AtBottom = IRB.cmpLeImm(0, 0);
    IRB.condBr(AtBottom, Jump, Down);
    IRB.setBlock(Down);
    Reg Next = IRB.subImm(0, 1);
    IRB.call(Deep, {Next});
    IRB.retImm(0); // unreachable if longjmp fires
    IRB.setBlock(Jump);
    Reg Value = IRB.movImm(77);
    IRB.longjmp(1, Value);
  }
  Function *Main = M.addFunction("main", 0);
  {
    BasicBlock *Entry = Main->addBlock("entry");
    BasicBlock *First = Main->addBlock("first");
    BasicBlock *Again = Main->addBlock("again");
    IRBuilder IRB(Main, Entry);
    Reg Jumped = IRB.setjmp(1);
    Reg IsZero = IRB.cmpEqImm(Jumped, 0);
    IRB.condBr(IsZero, First, Again);
    IRB.setBlock(First);
    Reg N = IRB.movImm(3);
    IRB.call(Deep, {N});
    IRB.retImm(0); // skipped: longjmp lands at the setjmp
    IRB.setBlock(Again);
    IRB.ret(Jumped);
  }
  M.setMain(Main);
  verifyModuleOrDie(M);
  vm::RunResult Result = runModule(M);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_EQ(Result.ExitValue, 77u);
}

TEST(Vm, LongjmpToDeadFrameFails) {
  Module M;
  Function *Setter = M.addFunction("setter", 0);
  {
    IRBuilder IRB(Setter, Setter->addBlock("entry"));
    IRB.setjmp(5);
    IRB.retImm(0);
  }
  Function *Main = M.addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    IRB.call(Setter, {});
    Reg V = IRB.movImm(1);
    IRB.longjmp(5, V); // setter's frame is gone
  }
  M.setMain(Main);
  vm::RunResult Result = runModule(M);
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("dead frame"), std::string::npos);
}

TEST(Vm, InstructionBudgetStopsInfiniteLoops) {
  Module M;
  Function *Main = M.addFunction("main", 0);
  BasicBlock *Entry = Main->addBlock("entry");
  IRBuilder IRB(Main, Entry);
  IRB.br(Entry);
  M.setMain(Main);
  vm::RunResult Result = runModule(M, 1000);
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("budget"), std::string::npos);
  EXPECT_LE(Result.ExecutedInsts, 1001u);
}

TEST(Vm, NullishAccessFails) {
  Module M;
  Function *Main = M.addFunction("main", 0);
  IRBuilder IRB(Main, Main->addBlock("entry"));
  IRB.loadAbs(8); // below the mapped region
  IRB.retImm(0);
  M.setMain(Main);
  vm::RunResult Result = runModule(M);
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("unmapped"), std::string::npos);
}

TEST(Vm, TracerSeesControlFlow) {
  struct CountingTracer : vm::Tracer {
    int Edges = 0, Enters = 0, Exits = 0, Calls = 0;
    void onEdgeTaken(const BasicBlock &, int) override { ++Edges; }
    void onEnterFunction(const Function &) override { ++Enters; }
    void onExitFunction(const Function &) override { ++Exits; }
    void onCall(const Function &, const Inst &, const Function &) override {
      ++Calls;
    }
  };
  auto M = workloads::buildFig1Module();
  hw::Machine Machine;
  vm::Vm VM(*M, Machine);
  CountingTracer Tracer;
  VM.setTracer(&Tracer);
  vm::RunResult Result = VM.run();
  ASSERT_TRUE(Result.Ok);
  EXPECT_EQ(Tracer.Enters, 9);  // main + 8 fig1 calls
  EXPECT_EQ(Tracer.Exits, 9);
  EXPECT_EQ(Tracer.Calls, 8);
  EXPECT_GT(Tracer.Edges, 30);
}

TEST(Vm, CodeLayoutAssignsSequentialAddresses) {
  auto M = workloads::buildFig1Module();
  hw::Machine Machine;
  vm::Vm VM(*M, Machine);
  uint64_t Prev = 0;
  for (const auto &F : M->functions())
    for (const auto &BB : F->blocks())
      for (const Inst &I : BB->insts()) {
        EXPECT_GT(I.Addr, Prev);
        Prev = I.Addr;
      }
  EXPECT_EQ(VM.functionEntryAddr(*M->function(0)), layout::CodeBase);
}

TEST(Vm, RuntimeOpWithoutRuntimeFails) {
  Module M;
  Function *Main = M.addFunction("main", 0);
  IRBuilder IRB(Main, Main->addBlock("entry"));
  Inst Op;
  Op.Op = Opcode::CctEnter;
  IRB.append(Op);
  IRB.retImm(0);
  M.setMain(Main);
  vm::RunResult Result = runModule(M);
  EXPECT_FALSE(Result.Ok);
}
