//===- tests/RandomProgram.h - Shared random-program generator -*- C++ -*-===//
//
// The random multi-function program generator behind the whole-pipeline
// property tests (CrossModeTest) and the engine-equivalence differential
// harness (EngineEquivalenceTest). Programs have loops, recursion, direct
// and indirect calls, diamonds, switches, and memory traffic, all bounded
// by a shared fuel counter in simulated memory so they terminate.
//
// With default options the generated module is byte-for-byte the program
// CrossModeTest has always used for a given seed (the option-gated extras
// draw no randomness unless enabled). EngineEquivalenceTest turns on the
// extras to also cover the FP scoreboard, setjmp/longjmp unwinding, and
// signal delivery.
//
//===----------------------------------------------------------------------===//

#ifndef PP_TESTS_RANDOM_PROGRAM_H
#define PP_TESTS_RANDOM_PROGRAM_H

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/Env.h"
#include "support/Prng.h"

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

namespace pp {
namespace testutil {

struct RandomProgramOptions {
  /// Adds an FP op-mix case (intToFp/fadd/fmul/fdiv/fcmp/fpToInt chains),
  /// exercising the FP scoreboard's stall accounting.
  bool WithFp = false;
  /// main() arms setjmp buffer 1, and work blocks may longjmp back to it,
  /// unwinding whatever frames are live at that point.
  bool WithSetjmp = false;
  /// Adds a zero-argument "sighandler" function (bumping a dedicated
  /// global) for callers that wire up SessionOptions::SignalHandler.
  bool WithSignalHandler = false;
};

/// The longjmp buffer key main() arms when WithSetjmp is set.
inline constexpr int64_t RandomProgramJmpBuf = 1;

/// Builds a random program with NumFuncs functions. Function k may call
/// functions with larger indices directly, any function indirectly or
/// recursively — every loop and call is guarded by a shared fuel counter
/// in memory, so execution always terminates.
inline std::unique_ptr<ir::Module>
makeRandomProgram(uint64_t Seed, const RandomProgramOptions &Opts = {}) {
  using namespace ir;
  Prng R(Seed);
  auto M = std::make_unique<Module>();
  size_t FuelIndex = M->addGlobal("fuel", 8);
  uint64_t FuelAddr = M->global(FuelIndex).Addr;
  size_t DataIndex = M->addGlobal("data", 32 * 1024);
  uint64_t DataAddr = M->global(DataIndex).Addr;

  unsigned NumFuncs = 3 + static_cast<unsigned>(R.nextBelow(3));
  std::vector<Function *> Funcs;
  for (unsigned Id = 0; Id != NumFuncs; ++Id)
    Funcs.push_back(M->addFunction("f" + std::to_string(Id), 1));

  // Op-mix cases 0-5 are the historical fixed set; the option-gated extras
  // append so default-option programs are unchanged for a given seed.
  unsigned NumCases = 6;
  int FpCase = Opts.WithFp ? static_cast<int>(NumCases++) : -1;
  int LongjmpCase = Opts.WithSetjmp ? static_cast<int>(NumCases++) : -1;

  for (unsigned Id = 0; Id != NumFuncs; ++Id) {
    Function *F = Funcs[Id];
    BasicBlock *Entry = F->addBlock("entry");
    BasicBlock *Work = F->addBlock("work");
    BasicBlock *Out = F->addBlock("out");
    IRBuilder IRB(F, Entry);
    Reg Arg = 0;

    // Fuel gate: decrement shared fuel; bail out when exhausted.
    Reg Fuel = IRB.loadAbs(static_cast<int64_t>(FuelAddr));
    Reg Less = IRB.subImm(Fuel, 1);
    IRB.storeAbs(static_cast<int64_t>(FuelAddr), Less);
    Reg HasFuel = IRB.cmpLtImm(Less, 0);
    IRB.condBr(HasFuel, Out, Work);

    IRB.setBlock(Out);
    IRB.ret(Arg);

    IRB.setBlock(Work);
    Reg Acc = IRB.mov(Arg);
    unsigned NumOps = 2 + static_cast<unsigned>(R.nextBelow(5));
    for (unsigned Op = 0; Op != NumOps; ++Op) {
      int Case = static_cast<int>(R.nextBelow(NumCases));
      if (Case == FpCase) {
        // Bounded FP chain: every intermediate stays small enough that
        // fpToInt is well defined.
        Reg Ai = IRB.andImm(Acc, 0xfffff);
        Reg Bi = IRB.addImm(Ai, 3);
        Reg Fa = IRB.intToFp(Ai);
        Reg Fb = IRB.intToFp(Bi);
        Reg Prod = IRB.fmul(Fa, Fb);
        Reg Quot = IRB.fdiv(Prod, Fb);
        Reg Sum = IRB.fadd(Quot, Fb);
        Reg Lt = IRB.fcmpLt(Fa, Sum);
        Reg Int = IRB.fpToInt(Sum);
        Reg Mixed = IRB.add(Int, Lt);
        Acc = IRB.andImm(Mixed, 0xffffff);
        continue;
      }
      if (Case == LongjmpCase) {
        // Rare non-local exit straight back to main's setjmp.
        BasicBlock *Jump = F->addBlock("lj" + std::to_string(Op));
        BasicBlock *Cont = F->addBlock("lc" + std::to_string(Op));
        Reg Bits = IRB.andImm(Acc, 63);
        Reg IsHit = IRB.cmpEqImm(Bits, 42);
        IRB.condBr(IsHit, Jump, Cont);
        IRB.setBlock(Jump);
        Reg Payload = IRB.orImm(Acc, 1); // longjmp value must be non-zero
        IRB.longjmp(RandomProgramJmpBuf, Payload);
        IRB.setBlock(Cont);
        continue;
      }
      switch (Case) {
      case 0: { // memory traffic
        Reg Slot = IRB.andImm(Acc, 4095);
        Reg Off = IRB.shlImm(Slot, 3);
        Reg Addr = IRB.addImm(Off, static_cast<int64_t>(DataAddr));
        Reg Val = IRB.load(Addr, 0);
        Reg Sum = IRB.add(Val, Acc);
        IRB.store(Addr, 0, Sum);
        Acc = Sum;
        break;
      }
      case 1: { // direct call (possibly self-recursive; fuel bounds it)
        Function *Callee = Funcs[R.nextBelow(NumFuncs)];
        Reg Masked = IRB.andImm(Acc, 1023);
        Acc = IRB.call(Callee, {Masked});
        break;
      }
      case 2: { // indirect call
        Reg Sel = IRB.remImm(Acc, static_cast<int64_t>(NumFuncs));
        Reg Id0 = IRB.andImm(Sel, 0x7fffffff);
        Reg Masked = IRB.andImm(Acc, 1023);
        Acc = IRB.icall(Id0, {Masked});
        break;
      }
      case 3: { // a small diamond
        BasicBlock *Left = F->addBlock("l" + std::to_string(Op));
        BasicBlock *Right = F->addBlock("r" + std::to_string(Op));
        BasicBlock *Join = F->addBlock("j" + std::to_string(Op));
        Reg Bit = IRB.andImm(Acc, 1);
        IRB.condBr(Bit, Left, Right);
        Reg Merged = F->freshReg();
        IRB.setBlock(Left);
        Reg L = IRB.mulImm(Acc, 3);
        IRB.movRegInto(Merged, L);
        IRB.br(Join);
        IRB.setBlock(Right);
        Reg Rv = IRB.addImm(Acc, 7);
        IRB.movRegInto(Merged, Rv);
        IRB.br(Join);
        IRB.setBlock(Join);
        Acc = Merged;
        break;
      }
      case 4: { // a switch
        BasicBlock *Default = F->addBlock("sd" + std::to_string(Op));
        BasicBlock *Case0 = F->addBlock("s0" + std::to_string(Op));
        BasicBlock *Case1 = F->addBlock("s1" + std::to_string(Op));
        BasicBlock *Join = F->addBlock("sj" + std::to_string(Op));
        Reg Sel = IRB.andImm(Acc, 3);
        Reg Merged = F->freshReg();
        IRB.switchOn(Sel, Default, {Case0, Case1});
        for (BasicBlock *BB : {Case0, Case1, Default}) {
          IRB.setBlock(BB);
          Reg V = IRB.xorImm(Acc, BB == Default ? 0x55 : 0x11);
          IRB.movRegInto(Merged, V);
          IRB.br(Join);
        }
        IRB.setBlock(Join);
        Acc = Merged;
        break;
      }
      default: { // plain arithmetic
        Reg T = IRB.mulImm(Acc, 13);
        Acc = IRB.andImm(T, 0xffffff);
        break;
      }
      }
    }
    IRB.ret(Acc);
  }

  if (Opts.WithSignalHandler) {
    size_t SigIndex = M->addGlobal("sigcount", 8);
    uint64_t SigAddr = M->global(SigIndex).Addr;
    Function *Handler = M->addFunction("sighandler", 0);
    IRBuilder IRB(Handler, Handler->addBlock("entry"));
    Reg Count = IRB.loadAbs(static_cast<int64_t>(SigAddr));
    Reg Bumped = IRB.addImm(Count, 1);
    IRB.storeAbs(static_cast<int64_t>(SigAddr), Bumped);
    Reg Zero = IRB.movImm(0);
    IRB.ret(Zero);
  }

  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Reg Budget = IRB.movImm(2000 + static_cast<int64_t>(R.nextBelow(2000)));
    IRB.storeAbs(static_cast<int64_t>(FuelAddr), Budget);
    if (Opts.WithSetjmp) {
      // Direct execution leaves 0 in Jumped; a longjmp from anywhere in
      // the call tree resumes here with the (non-zero) payload.
      BasicBlock *CallPath = Main->addBlock("go");
      BasicBlock *JumpPath = Main->addBlock("jumped");
      Reg Jumped = IRB.setjmp(RandomProgramJmpBuf);
      Reg Took = IRB.cmpNeImm(Jumped, 0);
      IRB.condBr(Took, JumpPath, CallPath);
      IRB.setBlock(JumpPath);
      Reg JMasked = IRB.andImm(Jumped, 0xffffff);
      IRB.ret(JMasked);
      IRB.setBlock(CallPath);
    }
    Reg Seed0 = IRB.movImm(static_cast<int64_t>(R.nextBelow(1024)));
    Reg Result = IRB.call(Funcs[0], {Seed0});
    Reg Masked = IRB.andImm(Result, 0xffffff);
    IRB.ret(Masked);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

/// Seed-count knob shared by the parameterised suites: reads \p Var as a
/// positive integer, falling back to \p Default when unset; a malformed
/// value (PP_CROSSMODE_SEEDS=lots) warns via the shared strict Env
/// helper instead of silently shrinking the sweep.
inline uint64_t seedCountFromEnv(const char *Var, uint64_t Default) {
  uint64_t Value = envUint64Or(Var, "pp-tests", Default);
  return Value ? Value : Default;
}

} // namespace testutil
} // namespace pp

#endif // PP_TESTS_RANDOM_PROGRAM_H
