//===- tests/WorkloadTest.cpp - SPEC95-shaped workload validation -------------===//
//
// Every workload must build verifiably, run to completion deterministically,
// and exhibit the control-flow shape its SPEC95 counterpart contributes to
// the paper's results (path-count contrasts, call-heaviness, FP pressure).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "prof/Session.h"
#include "workloads/Spec.h"

#include <gtest/gtest.h>

using namespace pp;
using prof::Mode;

namespace {

class WorkloadRunTest : public ::testing::TestWithParam<size_t> {};

prof::SessionOptions options(Mode M) {
  prof::SessionOptions Options;
  Options.Config.M = M;
  return Options;
}

} // namespace

TEST_P(WorkloadRunTest, BuildsVerifiesAndRuns) {
  const workloads::WorkloadSpec &Spec = workloads::spec95Suite()[GetParam()];
  auto M = Spec.Build(1);
  ASSERT_TRUE(M);
  std::vector<std::string> Errors;
  ASSERT_TRUE(ir::verifyModule(*M, Errors)) << Spec.Name << ": "
                                            << Errors.front();

  prof::RunOutcome Run = prof::runProfile(*M, options(Mode::None));
  ASSERT_TRUE(Run.Result.Ok) << Spec.Name << ": " << Run.Result.Error;
  // Big enough to be interesting, small enough for the bench suite.
  EXPECT_GT(Run.Result.ExecutedInsts, 50000u) << Spec.Name;
  EXPECT_LT(Run.Result.ExecutedInsts, 30000000u) << Spec.Name;
}

TEST_P(WorkloadRunTest, DeterministicAcrossRuns) {
  const workloads::WorkloadSpec &Spec = workloads::spec95Suite()[GetParam()];
  auto M1 = Spec.Build(1);
  auto M2 = Spec.Build(1);
  prof::RunOutcome Run1 = prof::runProfile(*M1, options(Mode::None));
  prof::RunOutcome Run2 = prof::runProfile(*M2, options(Mode::None));
  ASSERT_TRUE(Run1.Result.Ok && Run2.Result.Ok) << Spec.Name;
  EXPECT_EQ(Run1.Result.ExitValue, Run2.Result.ExitValue) << Spec.Name;
  EXPECT_EQ(Run1.Totals, Run2.Totals) << Spec.Name;
}

TEST_P(WorkloadRunTest, ScaleGrowsTheRun) {
  const workloads::WorkloadSpec &Spec = workloads::spec95Suite()[GetParam()];
  auto Small = Spec.Build(1);
  auto Large = Spec.Build(2);
  prof::RunOutcome RunSmall = prof::runProfile(*Small, options(Mode::None));
  prof::RunOutcome RunLarge = prof::runProfile(*Large, options(Mode::None));
  ASSERT_TRUE(RunSmall.Result.Ok && RunLarge.Result.Ok) << Spec.Name;
  EXPECT_GT(RunLarge.Result.ExecutedInsts,
            RunSmall.Result.ExecutedInsts + 1000)
      << Spec.Name;
}

TEST_P(WorkloadRunTest, SurvivesFlowHwInstrumentation) {
  const workloads::WorkloadSpec &Spec = workloads::spec95Suite()[GetParam()];
  auto M = Spec.Build(1);
  prof::RunOutcome Base = prof::runProfile(*M, options(Mode::None));
  prof::RunOutcome Run = prof::runProfile(*M, options(Mode::FlowHw));
  ASSERT_TRUE(Run.Result.Ok) << Spec.Name << ": " << Run.Result.Error;
  EXPECT_EQ(Run.Result.ExitValue, Base.Result.ExitValue) << Spec.Name;
  EXPECT_GT(Run.total(hw::Event::Cycles), Base.total(hw::Event::Cycles))
      << Spec.Name;

  uint64_t ExecutedPaths = 0;
  for (const prof::FunctionPathProfile &Profile : Run.PathProfiles)
    ExecutedPaths += Profile.Paths.size();
  EXPECT_GT(ExecutedPaths, 0u) << Spec.Name;
}

TEST_P(WorkloadRunTest, SurvivesContextFlowInstrumentation) {
  const workloads::WorkloadSpec &Spec = workloads::spec95Suite()[GetParam()];
  auto M = Spec.Build(1);
  prof::RunOutcome Base = prof::runProfile(*M, options(Mode::None));
  prof::RunOutcome Run = prof::runProfile(*M, options(Mode::ContextFlow));
  ASSERT_TRUE(Run.Result.Ok) << Spec.Name << ": " << Run.Result.Error;
  EXPECT_EQ(Run.Result.ExitValue, Base.Result.ExitValue) << Spec.Name;
  ASSERT_TRUE(Run.Tree) << Spec.Name;
  EXPECT_GT(Run.Tree->numRecords(), 1u) << Spec.Name;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, WorkloadRunTest, ::testing::Range<size_t>(0, 18),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = workloads::spec95Suite()[Info.param].Name;
      for (char &C : Name)
        if (C == '.')
          C = '_';
      return Name;
    });

TEST(WorkloadShape, GoAndGccExecuteManyMorePathsThanFpCodes) {
  auto CountPaths = [](const std::string &Name) {
    auto M = workloads::buildWorkload(Name, 1);
    prof::SessionOptions Options;
    Options.Config.M = Mode::Flow;
    prof::RunOutcome Run = prof::runProfile(*M, Options);
    EXPECT_TRUE(Run.Result.Ok) << Name;
    uint64_t Paths = 0;
    for (const prof::FunctionPathProfile &Profile : Run.PathProfiles)
      Paths += Profile.Paths.size();
    return Paths;
  };
  uint64_t Go = CountPaths("099.go");
  uint64_t Gcc = CountPaths("126.gcc");
  uint64_t Tomcatv = CountPaths("101.tomcatv");
  uint64_t Fpppp = CountPaths("145.fpppp");
  EXPECT_GT(Go, 4 * Tomcatv) << "go must execute many more paths";
  EXPECT_GT(Gcc, 4 * Tomcatv);
  EXPECT_LE(Fpppp, 24u) << "fpppp is nearly straight-line";
}

TEST(WorkloadShape, FpCodesStallTheFpPipeline) {
  auto FpStallShare = [](const std::string &Name) {
    auto M = workloads::buildWorkload(Name, 1);
    prof::SessionOptions Options;
    prof::RunOutcome Run = prof::runProfile(*M, Options);
    EXPECT_TRUE(Run.Result.Ok) << Name;
    return double(Run.total(hw::Event::FpStall)) /
           double(Run.total(hw::Event::Cycles));
  };
  EXPECT_GT(FpStallShare("145.fpppp"), FpStallShare("129.compress"));
  EXPECT_GT(FpStallShare("101.tomcatv"), FpStallShare("134.perl"));
}

TEST(WorkloadShape, VortexAndLiAreCallHeavy) {
  auto CallsPerKiloInst = [](const std::string &Name) {
    auto M = workloads::buildWorkload(Name, 1);
    prof::SessionOptions Options;
    Options.Config.M = Mode::Context;
    prof::RunOutcome Run = prof::runProfile(*M, Options);
    EXPECT_TRUE(Run.Result.Ok) << Name;
    uint64_t Calls = 0;
    for (const auto &R : Run.Tree->records())
      if (R->procId() != cct::RootProcId)
        Calls += R->Metrics[0];
    return 1000.0 * double(Calls) / double(Run.Result.ExecutedInsts);
  };
  EXPECT_GT(CallsPerKiloInst("147.vortex"), CallsPerKiloInst("101.tomcatv"));
  EXPECT_GT(CallsPerKiloInst("130.li"), CallsPerKiloInst("102.swim"));
}

TEST(WorkloadShape, CacheMissRatesDiffer) {
  // The strided/gather codes must miss more than the tiny-footprint ones.
  auto MissRate = [](const std::string &Name) {
    auto M = workloads::buildWorkload(Name, 1);
    prof::SessionOptions Options;
    prof::RunOutcome Run = prof::runProfile(*M, Options);
    EXPECT_TRUE(Run.Result.Ok) << Name;
    uint64_t Misses = Run.total(hw::Event::DCacheReadMiss) +
                      Run.total(hw::Event::DCacheWriteMiss);
    return double(Misses) / double(Run.total(hw::Event::Insts));
  };
  EXPECT_GT(MissRate("146.wave5"), MissRate("132.ijpeg"));
  EXPECT_GT(MissRate("125.turb3d"), MissRate("145.fpppp"));
}
