//===- tests/PathNumberingTest.cpp - Ball-Larus numbering tests ---------------===//

#include "bl/InstrumentationPlan.h"
#include "bl/PathNumbering.h"
#include "ir/IRBuilder.h"
#include "support/Prng.h"
#include "workloads/Examples.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace pp;
using namespace pp::ir;

namespace {

/// Renders a regenerated path as block names, e.g. "ACDF".
std::string pathString(const cfg::Cfg &G, const bl::RegeneratedPath &Path) {
  std::string Out;
  for (unsigned Node : Path.Nodes)
    Out += G.block(Node)->name();
  return Out;
}

} // namespace

TEST(PathNumbering, Fig1SumsMatchThePaper) {
  auto M = workloads::buildFig1Module();
  cfg::Cfg G(*M->findFunction("fig1"));
  bl::PathNumbering PN(G);

  ASSERT_TRUE(PN.valid());
  EXPECT_EQ(PN.numPaths(), 6u);

  // Figure 1(b): the exact sum of every path.
  std::map<std::string, uint64_t> Expected = {
      {"ACDF", 0}, {"ACDEF", 1}, {"ABCDF", 2},
      {"ABCDEF", 3}, {"ABDF", 4}, {"ABDEF", 5},
  };
  for (uint64_t Sum = 0; Sum != PN.numPaths(); ++Sum) {
    bl::RegeneratedPath Path = PN.regenerate(Sum);
    EXPECT_FALSE(Path.StartsAfterBackedge);
    EXPECT_FALSE(Path.EndsWithBackedge);
    std::string Name = pathString(G, Path);
    ASSERT_TRUE(Expected.count(Name)) << "unexpected path " << Name;
    EXPECT_EQ(Expected[Name], Sum) << "wrong sum for " << Name;
  }
}

TEST(PathNumbering, Fig1NumPathsFromMatchesHandComputation) {
  auto M = workloads::buildFig1Module();
  const Function &F = *M->findFunction("fig1");
  cfg::Cfg G(F);
  bl::PathNumbering PN(G);
  // NP: F=1, E=1, D=2, C=2, B=4, A=6 (blocks were created in order A..F).
  EXPECT_EQ(PN.numPathsFrom(0), 6u); // A
  EXPECT_EQ(PN.numPathsFrom(1), 4u); // B
  EXPECT_EQ(PN.numPathsFrom(2), 2u); // C
  EXPECT_EQ(PN.numPathsFrom(3), 2u); // D
  EXPECT_EQ(PN.numPathsFrom(4), 1u); // E
  EXPECT_EQ(PN.numPathsFrom(5), 1u); // F
  EXPECT_EQ(PN.numPathsFrom(G.exitNode()), 1u);
}

TEST(PathNumbering, LoopHasTheFourPathCategories) {
  auto M = workloads::buildLoopModule(10);
  cfg::Cfg G(*M->main());
  bl::PathNumbering PN(G);
  ASSERT_TRUE(PN.valid());
  // entry->head->body (ends with back edge), entry->head->done,
  // head->body after back edge (ends with back edge), head->done after
  // back edge: exactly the paper's four categories.
  EXPECT_EQ(PN.numPaths(), 4u);

  int StartsAfter = 0, EndsWith = 0, Plain = 0, Full = 0;
  for (uint64_t Sum = 0; Sum != 4; ++Sum) {
    bl::RegeneratedPath Path = PN.regenerate(Sum);
    if (Path.StartsAfterBackedge && Path.EndsWithBackedge)
      ++Full;
    else if (Path.StartsAfterBackedge)
      ++StartsAfter;
    else if (Path.EndsWithBackedge)
      ++EndsWith;
    else
      ++Plain;
  }
  EXPECT_EQ(Plain, 1);      // ENTRY to EXIT, no back edge
  EXPECT_EQ(EndsWith, 1);   // ENTRY to back edge
  EXPECT_EQ(Full, 1);       // back edge to back edge
  EXPECT_EQ(StartsAfter, 1); // back edge to EXIT
}

TEST(PathNumbering, LoopBackedgeValues) {
  auto M = workloads::buildLoopModule(10);
  cfg::Cfg G(*M->main());
  bl::PathNumbering PN(G);
  unsigned Backedge = ~0u;
  for (unsigned EdgeId = 0; EdgeId != G.numEdges(); ++EdgeId)
    if (G.isBackedge(EdgeId))
      Backedge = EdgeId;
  ASSERT_NE(Backedge, ~0u);
  uint64_t End = PN.backedgeEndValue(Backedge);
  uint64_t Start = PN.backedgeStartValue(Backedge);
  // Committing r+End and restarting at Start must stay within range and
  // regenerate paths with the right flags.
  EXPECT_LT(Start, PN.numPaths());
  bl::RegeneratedPath Restarted = PN.regenerate(Start);
  EXPECT_TRUE(Restarted.StartsAfterBackedge);
  bl::RegeneratedPath Ending = PN.regenerate(End);
  EXPECT_TRUE(Ending.EndsWithBackedge);
}

TEST(PathNumbering, PlanFoldsExitValuesAndSeparatesBackedges) {
  auto M = workloads::buildLoopModule(10);
  cfg::Cfg G(*M->main());
  bl::PathNumbering PN(G);
  bl::PlanOptions Options;
  bl::PathPlan Plan = bl::buildPathPlan(PN, Options);
  ASSERT_TRUE(Plan.Valid);
  EXPECT_EQ(Plan.NumPaths, 4u);
  EXPECT_FALSE(Plan.UseHashTable);
  EXPECT_EQ(Plan.Backedges.size(), 1u);
  EXPECT_EQ(Plan.ExitCommits.size(), 1u);
  // No increment may target a back edge.
  for (const bl::EdgeIncrement &Incr : Plan.Increments)
    EXPECT_FALSE(G.isBackedge(Incr.CfgEdgeId));
}

TEST(PathNumbering, HashThresholdSelectsHashTables) {
  auto M = workloads::buildFig1Module();
  cfg::Cfg G(*M->findFunction("fig1"));
  bl::PathNumbering PN(G);
  bl::PlanOptions Options;
  Options.ArrayThreshold = 4; // force hashing (6 paths > 4)
  bl::PathPlan Plan = bl::buildPathPlan(PN, Options);
  EXPECT_TRUE(Plan.UseHashTable);
}

TEST(PathNumbering, OverflowDetected) {
  // A long chain of diamonds doubles the path count each step; 70 of them
  // exceed 2^62.
  Module M;
  Function *F = M.addFunction("main", 0);
  BasicBlock *Prev = F->addBlock("entry");
  IRBuilder IRB(F, Prev);
  Reg C = IRB.movImm(1);
  for (int Step = 0; Step != 70; ++Step) {
    BasicBlock *Left = F->addBlock("l" + std::to_string(Step));
    BasicBlock *Right = F->addBlock("r" + std::to_string(Step));
    BasicBlock *Join = F->addBlock("j" + std::to_string(Step));
    IRB.setBlock(Prev);
    IRB.condBr(C, Left, Right);
    IRB.setBlock(Left);
    IRB.br(Join);
    IRB.setBlock(Right);
    IRB.br(Join);
    Prev = Join;
  }
  IRB.setBlock(Prev);
  IRB.retImm(0);
  M.setMain(F);

  cfg::Cfg G(*F);
  bl::PathNumbering PN(G);
  EXPECT_FALSE(PN.valid());
  bl::PathPlan Plan = bl::buildPathPlan(PN, bl::PlanOptions());
  EXPECT_FALSE(Plan.Valid);
}

// --- Property tests over random CFGs -----------------------------------------

namespace {

/// Builds a random function: every block ends in ret / br / condbr with
/// random targets, giving a mix of DAGs, nested and irreducible loops.
std::unique_ptr<Module> makeRandomCfg(uint64_t Seed, unsigned NumBlocks) {
  Prng R(Seed);
  auto M = std::make_unique<Module>();
  Function *F = M->addFunction("main", 0);
  std::vector<BasicBlock *> Blocks;
  for (unsigned Index = 0; Index != NumBlocks; ++Index)
    Blocks.push_back(F->addBlock("b" + std::to_string(Index)));
  IRBuilder IRB(F);
  for (unsigned Index = 0; Index != NumBlocks; ++Index) {
    IRB.setBlock(Blocks[Index]);
    uint64_t Kind = R.nextBelow(10);
    if (Kind < 2 || NumBlocks == 1) {
      IRB.retImm(0);
      continue;
    }
    Reg C = IRB.movImm(static_cast<int64_t>(R.nextBelow(2)));
    if (Kind < 5) {
      IRB.br(Blocks[R.nextBelow(NumBlocks)]);
    } else {
      BasicBlock *T1 = Blocks[R.nextBelow(NumBlocks)];
      BasicBlock *T2 = Blocks[R.nextBelow(NumBlocks)];
      IRB.condBr(C, T1, T2);
    }
  }
  M->setMain(F);
  return M;
}

/// Enumerates every ENTRY->EXIT path of the transformed graph and its sum.
void enumerateSums(const bl::PathNumbering &PN, unsigned Node, uint64_t Sum,
                   std::multiset<uint64_t> &Sums, size_t Cap) {
  const cfg::Cfg &G = PN.graph();
  if (Sums.size() >= Cap)
    return;
  if (Node == G.exitNode()) {
    Sums.insert(Sum);
    return;
  }
  for (unsigned Index : PN.transformedOutEdges(Node)) {
    const bl::TEdge &E = PN.transformedEdges()[Index];
    enumerateSums(PN, E.To, Sum + E.Val, Sums, Cap);
  }
}

class RandomCfgPathTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(RandomCfgPathTest, SumsAreCompactAndUnique) {
  auto M = makeRandomCfg(GetParam(), 3 + GetParam() % 9);
  cfg::Cfg G(*M->main());
  bl::PathNumbering PN(G);
  ASSERT_TRUE(PN.valid());
  if (PN.numPaths() > 5000)
    GTEST_SKIP() << "too many paths for exhaustive enumeration";

  // Exhaustive enumeration of the transformed graph must produce every sum
  // in [0, numPaths()) exactly once.
  std::multiset<uint64_t> Sums;
  enumerateSums(PN, G.entryNode(), 0, Sums, 100000);
  ASSERT_EQ(Sums.size(), PN.numPaths());
  uint64_t ExpectedSum = 0;
  for (uint64_t Sum : Sums)
    EXPECT_EQ(Sum, ExpectedSum++);
}

TEST_P(RandomCfgPathTest, RegenerationIsInjective) {
  auto M = makeRandomCfg(GetParam() * 31 + 7, 4 + GetParam() % 8);
  cfg::Cfg G(*M->main());
  bl::PathNumbering PN(G);
  ASSERT_TRUE(PN.valid());
  uint64_t Limit = std::min<uint64_t>(PN.numPaths(), 2000);
  std::set<std::string> Seen;
  for (uint64_t Sum = 0; Sum != Limit; ++Sum) {
    bl::RegeneratedPath Path = PN.regenerate(Sum);
    ASSERT_FALSE(Path.Nodes.empty());
    std::string Key = "S" + std::to_string(Path.EntryBackedge) + "E" +
                      std::to_string(Path.ExitBackedge);
    for (unsigned EdgeId : Path.Edges)
      Key += "." + std::to_string(EdgeId);
    EXPECT_TRUE(Seen.insert(Key).second)
        << "duplicate path for sum " << Sum << ": " << Key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCfgPathTest,
                         ::testing::Range<uint64_t>(0, 24));
