//===- tools/pp-report/Main.cpp - Profile repository queries -------------------===//
//
// The query side of the profile repository: reads the .ppa artifacts that
// driver runs deposit (PP_PROFILE_OUT / pp --profile-out), merges and
// diffs them, and answers the paper's questions from storage — including
// regenerating Tables 3, 4, and 5 byte-identically to the live bench
// binaries (--repo mode renders through the same analysis::renderTableN
// code the benches use).
//
//   pp-report merge -o merged.ppa shard1.ppa shard2.ppa ...
//   pp-report diff a.ppa b.ppa
//   pp-report top-paths [--paths=N] <a.ppa...>
//   pp-report top-paths --repo DIR          (Table 4)
//   pp-report top-procs [--procs=N] <a.ppa...>
//   pp-report top-procs --repo DIR          (Table 5)
//   pp-report cct-stats [--collapsed=calls|pic0|pic1] <a.ppa...>
//   pp-report cct-stats --repo DIR          (Table 3)
//   pp-report obs <report.json>             (pretty-print an obs report)
//   pp-report obs <a.json> <b.json>         (diff two obs reports)
//   pp-report obs --repo DIR       (aggregate every stored obs report)
//
//===----------------------------------------------------------------------===//

#include "analysis/HotPaths.h"
#include "obs/ObsReport.h"
#include "analysis/PaperTables.h"
#include "analysis/SiteStats.h"
#include "cct/Export.h"
#include "hw/Event.h"
#include "prof/Acquisition.h"
#include "prof/Instrumenter.h"
#include "prof/Mode.h"
#include "profdb/Diff.h"
#include "profdb/Merge.h"
#include "profdb/Report.h"
#include "profdb/Store.h"
#include "workloads/Spec.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace pp;

namespace {

void printUsage() {
  std::printf(
      "usage: pp-report <command> [options] <artifact.ppa...>\n"
      "\n"
      "Queries over stored profile artifacts (see pp --profile-out and\n"
      "the PP_PROFILE_OUT environment knob).\n"
      "\n"
      "commands:\n"
      "  merge -o <out.ppa> <a.ppa...>   merge artifacts (structural CCT\n"
      "                    merge; PP_PROFDB_THREADS sets the pool size)\n"
      "  diff <a.ppa> <b.ppa>  per-path and per-context deltas (B - A)\n"
      "  top-paths         hottest Ball-Larus paths by PIC1\n"
      "  top-procs         hottest procedures by PIC1\n"
      "  cct-stats         calling-context-tree statistics\n"
      "  obs <a.json> [b.json]  pretty-print a pipeline observability\n"
      "                    report (pp --obs-out / $PP_OBS_OUT), or diff\n"
      "                    two of them (B - A); with --repo=<dir>,\n"
      "                    aggregate every stored report into one\n"
      "\n"
      "options:\n"
      "  --repo=<dir>      render the paper table (3/4/5 for cct-stats/\n"
      "                    top-paths/top-procs) from a repository of\n"
      "                    artifacts instead of reporting one artifact\n"
      "  --paths=<n>       rows for top-paths (default 20)\n"
      "  --procs=<n>       rows for top-procs (default 20)\n"
      "  --limit=<n>       rows per diff section (default 20)\n"
      "  --acquisition=<a> which acquisition's artifacts a --repo table\n"
      "                    reads: exact (default) or overflow; artifacts\n"
      "                    of the other acquisition are ignored\n"
      "  --k=<n>           which k-iteration artifacts to read (default 1\n"
      "                    = classic Ball-Larus); a --repo table ignores\n"
      "                    other-k artifacts, explicit artifacts of a\n"
      "                    different k are an error\n"
      "  --collapsed=<c>   emit Brendan-Gregg collapsed stacks instead of\n"
      "                    cct-stats, weighted by calls|pic0|pic1\n"
      "\n"
      "Several artifacts given to top-paths/top-procs/cct-stats are\n"
      "merged in memory first.\n");
}

bool loadArtifact(const std::string &Path, profdb::Artifact &Out) {
  profdb::DecodeStatus Status = profdb::readArtifactFile(Path, Out);
  if (Status != profdb::DecodeStatus::Ok) {
    std::fprintf(stderr, "pp-report: %s: %s\n", Path.c_str(),
                 profdb::decodeStatusName(Status));
    return false;
  }
  return true;
}

/// Loads every positional artifact and folds them into one (a single
/// input passes through). False on any load or merge failure.
bool loadMerged(const std::vector<std::string> &Paths,
                profdb::Artifact &Out) {
  std::vector<profdb::Artifact> Shards;
  for (const std::string &Path : Paths) {
    profdb::Artifact A;
    if (!loadArtifact(Path, A))
      return false;
    Shards.push_back(std::move(A));
  }
  std::string Error;
  if (!profdb::mergeAll(std::move(Shards), Out, Error,
                        profdb::mergeThreadsFromEnv())) {
    std::fprintf(stderr, "pp-report: merge failed: %s\n", Error.c_str());
    return false;
  }
  return true;
}

/// Every decodable artifact in \p Dir (undecodable files warn and are
/// skipped; a missing or empty repository is an error).
bool loadRepo(const std::string &Dir, std::vector<profdb::Artifact> &Out) {
  std::vector<std::string> Files = profdb::listArtifactFiles(Dir);
  if (Files.empty()) {
    std::fprintf(stderr, "pp-report: no .ppa artifacts in '%s'\n",
                 Dir.c_str());
    return false;
  }
  for (const std::string &Path : Files) {
    profdb::Artifact A;
    profdb::DecodeStatus Status = profdb::readArtifactFile(Path, A);
    if (Status != profdb::DecodeStatus::Ok) {
      std::fprintf(stderr, "pp-report: skipping %s: %s\n", Path.c_str(),
                   profdb::decodeStatusName(Status));
      continue;
    }
    Out.push_back(std::move(A));
  }
  return !Out.empty();
}

/// The artifact for \p Workload at scale 1 under \p Schema, or null. More
/// than one match warns and keeps the first in (sorted file) order.
const profdb::Artifact *selectArtifact(
    const std::vector<profdb::Artifact> &All, const std::string &Workload,
    const profdb::MetricSchema &Schema) {
  const profdb::Artifact *Found = nullptr;
  for (const profdb::Artifact &A : All) {
    if (A.Workload != Workload || A.Scale != 1 || A.Schema != Schema)
      continue;
    if (Found) {
      std::fprintf(stderr,
                   "pp-report: several artifacts match %s (%s); using the "
                   "first in file order\n",
                   Workload.c_str(), Schema.Mode.c_str());
      return Found;
    }
    Found = &A;
  }
  return Found;
}

profdb::MetricSchema schemaOf(prof::Mode M, const std::string &Acq,
                              unsigned K) {
  profdb::MetricSchema Schema;
  Schema.Mode = prof::modeName(M);
  Schema.Pic0 = hw::eventName(hw::Event::Insts);
  Schema.Pic1 = hw::eventName(hw::Event::DCacheReadMiss);
  Schema.Acquisition = Acq;
  Schema.K = K;
  return Schema;
}

/// The artifact-side collectPathRecords: same flattening, same order.
std::vector<analysis::PathRecord>
pathRecordsFromArtifact(const profdb::Artifact &A) {
  std::vector<analysis::PathRecord> Records;
  for (const prof::FunctionPathProfile &Profile : A.PathProfiles) {
    if (!Profile.HasProfile)
      continue;
    for (const prof::PathEntry &Entry : Profile.Paths)
      Records.push_back({Profile.FuncId, Entry.PathSum, Entry.Freq,
                         Entry.Metric0, Entry.Metric1});
  }
  return Records;
}

void noteMissingRow(const std::string &Workload, const char *Mode) {
  std::fprintf(stderr,
               "pp-report: no scale-1 %s artifact for %s; row skipped\n",
               Mode, Workload.c_str());
}

/// Table 4 (Table5 = false) or Table 5 from a repository of Flow-and-HW
/// artifacts, through the same renderer the live benches use.
int renderRepoPathTable(const std::string &Dir, bool Table5,
                        const std::string &Acq, unsigned K) {
  std::vector<profdb::Artifact> All;
  if (!loadRepo(Dir, All))
    return 1;
  profdb::MetricSchema Want = schemaOf(prof::Mode::FlowHw, Acq, K);
  std::vector<analysis::SuitePathRows> Rows;
  for (const workloads::WorkloadSpec &Spec : workloads::spec95Suite()) {
    const profdb::Artifact *A = selectArtifact(All, Spec.Name, Want);
    if (!A) {
      noteMissingRow(Spec.Name, Want.Mode.c_str());
      continue;
    }
    Rows.push_back({Spec.Name, Spec.IsFloat, pathRecordsFromArtifact(*A)});
  }
  std::string Out =
      Table5 ? analysis::renderTable5(Rows) : analysis::renderTable4(Rows);
  std::printf("%s", Out.c_str());
  return 0;
}

/// Table 3 from a repository of Context-and-Flow artifacts. The site
/// columns compare the stored CCT against the workload's static call
/// sites, so the (deterministic) module is rebuilt and re-instrumented
/// locally, exactly as the live bench does.
int renderRepoTable3(const std::string &Dir, const std::string &Acq) {
  std::vector<profdb::Artifact> All;
  if (!loadRepo(Dir, All))
    return 1;
  // Context modes are k=1 by construction (k > 1 is flow/flowhw only).
  profdb::MetricSchema Want = schemaOf(prof::Mode::ContextFlow, Acq, 1);
  std::vector<analysis::Table3Row> Rows;
  for (const workloads::WorkloadSpec &Spec : workloads::spec95Suite()) {
    const profdb::Artifact *A = selectArtifact(All, Spec.Name, Want);
    if (!A || !A->Tree) {
      noteMissingRow(Spec.Name, Want.Mode.c_str());
      continue;
    }
    auto Module = Spec.Build(1);
    prof::ProfileConfig Config;
    Config.M = prof::Mode::ContextFlow;
    prof::Instrumented Instr = prof::instrument(*Module, Config);

    analysis::Table3Row Row;
    Row.Name = Spec.Name;
    Row.Stats = A->Tree->computeStats();
    Row.Sites = analysis::computeSitePathStats(*A->Tree, *Module, Instr);
    Row.ProfileBytes =
        cct::serialize(*A->Tree).size() + A->Tree->heapBytes();
    Rows.push_back(std::move(Row));
  }
  std::printf("%s", analysis::renderTable3(Rows).c_str());
  return 0;
}

int runMerge(const std::string &OutPath,
             const std::vector<std::string> &Inputs) {
  if (OutPath.empty()) {
    std::fprintf(stderr, "pp-report: merge needs -o <out.ppa>\n");
    return 1;
  }
  if (Inputs.empty()) {
    std::fprintf(stderr, "pp-report: merge needs input artifacts\n");
    return 1;
  }
  profdb::Artifact Merged;
  if (!loadMerged(Inputs, Merged))
    return 1;
  std::string Error;
  if (!profdb::writeArtifactFile(OutPath, Merged, Error)) {
    std::fprintf(stderr, "pp-report: %s\n", Error.c_str());
    return 1;
  }
  std::printf("merged %zu artifact(s) (%llu runs) into %s\n", Inputs.size(),
              static_cast<unsigned long long>(Merged.RunCount),
              OutPath.c_str());
  return 0;
}

/// `obs --repo DIR`: folds every *.json report stored in \p Dir into one
/// fleet-wide aggregate (counters summed by name, spans summed by
/// identity) and renders it. Unparsable reports warn and are skipped,
/// mirroring the artifact-side loadRepo.
int runObsRepo(const std::string &Dir) {
  std::vector<std::string> Files = obs::listObsReportFiles(Dir);
  if (Files.empty()) {
    std::fprintf(stderr, "pp-report: no .json obs reports in '%s'\n",
                 Dir.c_str());
    return 1;
  }
  std::vector<obs::ObsReport> Reports;
  for (const std::string &Path : Files) {
    obs::ObsReport R;
    std::string Error;
    if (!obs::readObsReportFile(Path, R, Error)) {
      std::fprintf(stderr, "pp-report: skipping %s\n", Error.c_str());
      continue;
    }
    Reports.push_back(std::move(R));
  }
  obs::ObsReport Aggregate;
  std::string Error;
  if (!obs::aggregateObsReports(Reports, Aggregate, Error)) {
    std::fprintf(stderr, "pp-report: %s\n", Error.c_str());
    return 1;
  }
  std::printf("aggregate of %zu obs report(s) in %s\n%s", Reports.size(),
              Dir.c_str(), obs::renderObsReport(Aggregate).c_str());
  return 0;
}

int runObs(const std::vector<std::string> &Inputs) {
  if (Inputs.empty() || Inputs.size() > 2) {
    std::fprintf(stderr, "pp-report: obs wants one or two report files "
                         "(or --repo)\n");
    return 1;
  }
  obs::ObsReport A;
  std::string Error;
  if (!obs::readObsReportFile(Inputs[0], A, Error)) {
    std::fprintf(stderr, "pp-report: %s\n", Error.c_str());
    return 1;
  }
  if (Inputs.size() == 1) {
    std::printf("%s", obs::renderObsReport(A).c_str());
    return 0;
  }
  obs::ObsReport B;
  if (!obs::readObsReportFile(Inputs[1], B, Error)) {
    std::fprintf(stderr, "pp-report: %s\n", Error.c_str());
    return 1;
  }
  std::printf("%s", obs::diffObsReports(A, B).c_str());
  return 0;
}

int runDiff(const std::vector<std::string> &Inputs, size_t Limit) {
  if (Inputs.size() != 2) {
    std::fprintf(stderr, "pp-report: diff wants exactly two artifacts\n");
    return 1;
  }
  profdb::Artifact A, B;
  if (!loadArtifact(Inputs[0], A) || !loadArtifact(Inputs[1], B))
    return 1;
  profdb::ArtifactDiff Diff;
  std::string Error;
  if (!profdb::diffArtifacts(A, B, Diff, Error)) {
    std::fprintf(stderr, "pp-report: %s\n", Error.c_str());
    return 1;
  }
  std::printf("%s", profdb::renderDiff(Diff, Limit).c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    printUsage();
    return 1;
  }
  std::string Cmd = Argv[1];
  if (Cmd == "--help" || Cmd == "-h" || Cmd == "help") {
    printUsage();
    return 0;
  }

  std::string Repo, OutPath, Collapsed;
  std::string Acq = "exact";
  size_t Paths = 20, Procs = 20, Limit = 20;
  unsigned K = 1;
  bool KGiven = false;
  std::vector<std::string> Inputs;
  for (int Index = 2; Index != Argc; ++Index) {
    std::string Arg = Argv[Index];
    auto Value = [&Arg](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    if (Arg == "-o") {
      if (++Index == Argc) {
        std::fprintf(stderr, "pp-report: -o wants a file name\n");
        return 1;
      }
      OutPath = Argv[Index];
    } else if (const char *V = Value("--repo=")) {
      Repo = V;
    } else if (Arg == "--repo") {
      if (++Index == Argc) {
        std::fprintf(stderr, "pp-report: --repo wants a directory\n");
        return 1;
      }
      Repo = Argv[Index];
    } else if (const char *V = Value("--paths=")) {
      Paths = static_cast<size_t>(std::atoi(V));
    } else if (const char *V = Value("--procs=")) {
      Procs = static_cast<size_t>(std::atoi(V));
    } else if (const char *V = Value("--limit=")) {
      Limit = static_cast<size_t>(std::atoi(V));
    } else if (const char *V = Value("--collapsed=")) {
      Collapsed = V;
    } else if (const char *V = Value("--k=")) {
      int Parsed = std::atoi(V);
      if (Parsed < 1 || Parsed > 16) {
        std::fprintf(stderr, "pp-report: bad --k '%s' (want 1..16)\n", V);
        return 1;
      }
      K = static_cast<unsigned>(Parsed);
      KGiven = true;
    } else if (const char *V = Value("--acquisition=")) {
      prof::Acquisition Kind;
      if (!prof::parseAcquisition(V, Kind)) {
        std::fprintf(stderr, "pp-report: unknown acquisition '%s'\n", V);
        return 1;
      }
      Acq = prof::acquisitionName(Kind);
    } else if (Arg.rfind("-", 0) == 0) {
      std::fprintf(stderr, "pp-report: unknown option '%s'\n", Arg.c_str());
      return 1;
    } else {
      Inputs.push_back(Arg);
    }
  }

  if (Cmd == "merge")
    return runMerge(OutPath, Inputs);
  if (Cmd == "diff")
    return runDiff(Inputs, Limit);
  if (Cmd == "obs") {
    if (!Repo.empty()) {
      if (!Inputs.empty()) {
        std::fprintf(stderr, "pp-report: --repo and explicit reports are "
                             "mutually exclusive\n");
        return 1;
      }
      return runObsRepo(Repo);
    }
    return runObs(Inputs);
  }

  if (Cmd != "top-paths" && Cmd != "top-procs" && Cmd != "cct-stats") {
    std::fprintf(stderr, "pp-report: unknown command '%s'\n", Cmd.c_str());
    return 1;
  }

  if (!Repo.empty()) {
    if (!Inputs.empty()) {
      std::fprintf(stderr,
                   "pp-report: --repo and explicit artifacts are "
                   "mutually exclusive\n");
      return 1;
    }
    if (Cmd == "top-paths")
      return renderRepoPathTable(Repo, /*Table5=*/false, Acq, K);
    if (Cmd == "top-procs")
      return renderRepoPathTable(Repo, /*Table5=*/true, Acq, K);
    return renderRepoTable3(Repo, Acq);
  }

  if (Inputs.empty()) {
    std::fprintf(stderr, "pp-report: %s wants artifacts (or --repo)\n",
                 Cmd.c_str());
    return 1;
  }
  profdb::Artifact A;
  if (!loadMerged(Inputs, A))
    return 1;
  // Cross-k inputs already fail the merge above; this catches a uniform
  // set of artifacts at a different k than the one explicitly asked for.
  if (KGiven && A.Schema.K != K) {
    std::fprintf(stderr,
                 "pp-report: artifacts are k=%u, not the requested k=%u\n",
                 A.Schema.K, K);
    return 1;
  }

  if (Cmd == "top-paths") {
    std::printf("%s", profdb::reportTopPaths(A, Paths).c_str());
    return 0;
  }
  if (Cmd == "top-procs") {
    std::printf("%s", profdb::reportTopProcs(A, Procs).c_str());
    return 0;
  }
  // cct-stats, optionally collapsed.
  if (!Collapsed.empty()) {
    profdb::CollapsedCounter Counter;
    if (!profdb::parseCollapsedCounter(Collapsed, Counter)) {
      std::fprintf(stderr, "pp-report: bad --collapsed '%s' (want "
                           "calls|pic0|pic1)\n",
                   Collapsed.c_str());
      return 1;
    }
    std::string Error;
    std::string Out = profdb::collapsedStacks(A, Counter, Error);
    if (!Error.empty()) {
      std::fprintf(stderr, "pp-report: %s\n", Error.c_str());
      return 1;
    }
    std::printf("%s", Out.c_str());
    return 0;
  }
  std::printf("%s", profdb::reportCctStats(A).c_str());
  return 0;
}
