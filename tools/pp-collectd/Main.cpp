//===- tools/pp-collectd/Main.cpp - Fleet ingest daemon ------------------------===//
//
// The collector's front door. Four feeding modes:
//
//   pp-collectd --ingest=DIR [--window=N]   upload every .ppa in DIR
//   pp-collectd --clients=N [...]           simulate a fleet: N clients
//                                           running instrumented workloads
//                                           and uploading their artifacts
//   pp-collectd --serve=PORT [...]          socket front end: accept
//                                           framed uploads over TCP
//   pp-collectd --connect=HOST:PORT [...]   fleet client: upload the
//                                           simulated artifacts over the
//                                           wire instead of in process
//
// Either way, uploads flow through the bounded-queue ingest service into
// per-window merge trees, and the folded windows answer the same queries
// pp-report does (top-paths / top-procs / cct-stats) — plus an ingest
// stats table with every typed rejection reason.
//
//===----------------------------------------------------------------------===//

#include "collectd/Ingest.h"
#include "collectd/Server.h"
#include "collectd/Wire.h"
#include "driver/Driver.h"
#include "obs/Obs.h"
#include "profdb/Artifact.h"
#include "profdb/Store.h"
#include "support/Format.h"
#include "support/TableWriter.h"
#include "workloads/Spec.h"

#include <arpa/inet.h>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace pp;

namespace {

void printUsage() {
  std::printf(
      "usage: pp-collectd [options]\n"
      "\n"
      "Fleet profile collector: ingests .ppa artifact uploads into\n"
      "time-windowed incremental merge trees and serves pp-report-style\n"
      "queries over the folded windows.\n"
      "\n"
      "feeding (pick one):\n"
      "  --ingest=<dir>     upload every .ppa artifact in <dir>\n"
      "  --clients=<n>      simulate <n> fleet clients (default 8)\n"
      "  --serve=<port>     accept framed uploads over TCP (0 = ephemeral;\n"
      "                     the chosen port is printed)\n"
      "  --connect=<host:port>  upload the simulated fleet's artifacts\n"
      "                     over the wire to a --serve collector\n"
      "\n"
      "simulation options:\n"
      "  --uploads=<n>      uploads per client (default 2)\n"
      "  --workloads=<a,b>  source workloads (default 130.li,129.compress)\n"
      "  --corrupt-every=<n> flip one byte of every nth upload, showing\n"
      "                     the typed corrupt-rejection path\n"
      "\n"
      "service options:\n"
      "  --window=<n>       window for --ingest uploads (default 0)\n"
      "  --windows=<n>      windows simulated uploads spread over (default 2)\n"
      "  --threads=<n>      ingest workers; 0 = synchronous (default 4)\n"
      "  --queue=<n>        bounded queue capacity (default 256)\n"
      "  --quota=<n>        accepted uploads per tenant+window (0 = off)\n"
      "  --rate=<n>         per-tenant sustained uploads/second (0 = off)\n"
      "  --burst=<n>        per-tenant burst allowance (0 = max(1, rate))\n"
      "  --retain=<n>       resident-window cap: persist + drop the oldest\n"
      "                     beyond <n> (0 = unlimited; needs --store)\n"
      "  --fanout=<n>       merge-tree level fanout (default 8)\n"
      "  --store=<dir>      persist folded windows to <dir>/w<id>/ as .ppa\n"
      "\n"
      "serve options:\n"
      "  --expect-uploads=<n>  exit once <n> uploads have been served and\n"
      "                     every connection has closed (tests/benches;\n"
      "                     default: run until SIGINT/SIGTERM)\n"
      "  --idle-timeout-ms=<n>  close silent connections (default 30000)\n"
      "\n"
      "queries (printed per window after ingest):\n"
      "  --top-paths=<n>    hottest Ball-Larus paths by PIC1\n"
      "  --top-procs=<n>    hottest procedures by PIC1\n"
      "  --cct-stats        calling-context-tree statistics\n");
}

bool parseCount(const char *Flag, const char *Text, uint64_t &Out) {
  if (parseUint64(Text, Out))
    return true;
  std::fprintf(stderr, "pp-collectd: bad %s '%s' (want a number)\n", Flag,
               Text);
  return false;
}

std::vector<std::string> splitList(const std::string &Text) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Comma = Text.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Text.size();
    if (Comma != Pos)
      Out.push_back(Text.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Out;
}

/// Encoded uploads for the simulated fleet: each workload runs once in
/// Flow-and-HW (path queries) and once in Context-and-Flow-and-HW (CCT
/// queries), then each client's uploads are those runs' artifacts under
/// per-upload fingerprints — exactly what distinct fleet machines
/// reporting the same binary would send.
bool buildUploadPool(const std::vector<std::string> &Workloads,
                     uint64_t Clients, uint64_t UploadsPerClient,
                     std::vector<std::vector<uint8_t>> &Pool) {
  driver::Driver D(/*DiskDir=*/"", /*Threads=*/0);
  struct Source {
    driver::OutcomePtr Run;
    std::unique_ptr<ir::Module> Module;
    prof::ProfileConfig Config;
    std::string Workload;
  };
  std::vector<Source> Sources;
  for (const std::string &Name : Workloads) {
    for (prof::Mode M : {prof::Mode::FlowHw, prof::Mode::ContextFlowHw}) {
      driver::RunPlan Plan;
      Plan.Workload = Name;
      Plan.Options.Config.M = M;
      Source S;
      S.Run = D.run(Plan);
      if (!S.Run || !S.Run->Result.Ok) {
        std::fprintf(stderr, "pp-collectd: workload '%s' failed: %s\n",
                     Name.c_str(),
                     S.Run ? S.Run->Result.Error.c_str() : "no outcome");
        return false;
      }
      S.Module = workloads::buildWorkload(Name, 1);
      S.Config = Plan.Options.Config;
      S.Workload = Name;
      Sources.push_back(std::move(S));
    }
  }

  uint64_t Total = Clients * UploadsPerClient;
  for (uint64_t Index = 0; Index != Total; ++Index) {
    const Source &S = Sources[Index % Sources.size()];
    profdb::Artifact A = profdb::artifactFromOutcome(
        *S.Run, *S.Module,
        formatString("sim;%s;upload%llu", S.Workload.c_str(),
                     static_cast<unsigned long long>(Index)),
        S.Workload, 1, S.Config);
    Pool.push_back(profdb::encodeArtifact(A));
  }
  return true;
}

void printStats(const collectd::IngestService &Service) {
  collectd::IngestStats Stats = Service.stats();
  TableWriter Table;
  Table.setHeader({"Ingest", "Count"});
  Table.addRow({"submitted", std::to_string(Stats.Submitted)});
  Table.addRow({"accepted", std::to_string(Stats.Accepted)});
  Table.addRow({"rejected", std::to_string(Stats.Rejected)});
  for (unsigned R = 1;
       R != static_cast<unsigned>(collectd::RejectReason::NumReasons); ++R)
    Table.addRow({formatString("  %s", collectd::rejectReasonName(
                                           collectd::RejectReason(R))),
                  std::to_string(Stats.RejectedBy[R])});
  Table.addRow({"backpressured", std::to_string(Stats.Backpressured)});
  Table.addRow({"compactions", std::to_string(Stats.Compactions)});
  Table.addRow({"windows", std::to_string(Stats.Windows)});
  Table.addRow({"queries", std::to_string(Stats.Queries)});
  Table.addRow({"windows expired", std::to_string(Stats.WindowsExpired)});
  std::printf("%s", Table.render().c_str());
}

void printServerStats(const collectd::ServerStats &S) {
  TableWriter Table;
  Table.setHeader({"Serve", "Count"});
  Table.addRow({"connections", std::to_string(S.ConnectionsAccepted)});
  Table.addRow({"frames in", std::to_string(S.FramesIn)});
  Table.addRow({"frames out", std::to_string(S.FramesOut)});
  Table.addRow({"bytes in", std::to_string(S.BytesIn)});
  Table.addRow({"bytes out", std::to_string(S.BytesOut)});
  Table.addRow({"uploads", std::to_string(S.Uploads)});
  Table.addRow({"queries", std::to_string(S.Queries)});
  Table.addRow({"protocol errors", std::to_string(S.ProtocolErrors)});
  Table.addRow({"idle closed", std::to_string(S.IdleClosed)});
  Table.addRow({"read pauses", std::to_string(S.ReadPauses)});
  std::printf("%s", Table.render().c_str());
}

/// Parses "--connect=<host:port>" at flag time: dotted-quad host, port in
/// [1, 65535]. Every failure is a typed parse error, not a connect-time
/// surprise.
bool parseEndpoint(const char *Text, std::string &Host, uint16_t &Port) {
  std::string Spec = Text;
  size_t Colon = Spec.rfind(':');
  if (Colon == std::string::npos || Colon == 0) {
    std::fprintf(stderr,
                 "pp-collectd: bad --connect '%s' (want host:port)\n", Text);
    return false;
  }
  Host = Spec.substr(0, Colon);
  in_addr Probe;
  if (inet_pton(AF_INET, Host.c_str(), &Probe) != 1) {
    std::fprintf(stderr,
                 "pp-collectd: bad --connect host '%s' (want a dotted-quad "
                 "address)\n",
                 Host.c_str());
    return false;
  }
  uint64_t Value;
  if (!parseUint64(Spec.c_str() + Colon + 1, Value) || Value == 0 ||
      Value > 65535) {
    std::fprintf(stderr,
                 "pp-collectd: bad --connect port '%s' (want 1..65535)\n",
                 Spec.c_str() + Colon + 1);
    return false;
  }
  Port = static_cast<uint16_t>(Value);
  return true;
}

/// A minimal blocking client for the framed protocol: connect, write
/// whole frames, read whole frames.
class WireClient {
public:
  ~WireClient() { disconnect(); }

  bool connectTo(const std::string &Host, uint16_t Port, std::string &Error) {
    Fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (Fd < 0) {
      Error = std::string("socket: ") + strerror(errno);
      return false;
    }
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(Port);
    inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr);
    if (connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
      Error = formatString("connect %s:%u: %s", Host.c_str(), unsigned(Port),
                           strerror(errno));
      disconnect();
      return false;
    }
    return true;
  }

  bool sendFrame(const collectd::Frame &F, std::string &Error) {
    std::vector<uint8_t> Bytes = collectd::encodeFrame(F);
    size_t Sent = 0;
    while (Sent != Bytes.size()) {
      ssize_t Got = send(Fd, Bytes.data() + Sent, Bytes.size() - Sent,
                         MSG_NOSIGNAL);
      if (Got < 0) {
        if (errno == EINTR)
          continue;
        Error = std::string("send: ") + strerror(errno);
        return false;
      }
      Sent += static_cast<size_t>(Got);
    }
    return true;
  }

  bool readFrame(collectd::Frame &Out, std::string &Error) {
    for (;;) {
      collectd::WireStatus Status = Decoder.next(Out);
      if (Status == collectd::WireStatus::Ok)
        return true;
      if (Status != collectd::WireStatus::NeedMore) {
        Error = formatString("stream error: %s",
                             collectd::wireStatusName(Status));
        return false;
      }
      uint8_t Chunk[64 * 1024];
      ssize_t Got = recv(Fd, Chunk, sizeof(Chunk), 0);
      if (Got < 0) {
        if (errno == EINTR)
          continue;
        Error = std::string("recv: ") + strerror(errno);
        return false;
      }
      if (Got == 0) {
        Error = "server closed the connection";
        return false;
      }
      Decoder.feed(Chunk, static_cast<size_t>(Got));
    }
  }

  void disconnect() {
    if (Fd >= 0)
      close(Fd);
    Fd = -1;
  }

private:
  int Fd = -1;
  collectd::FrameDecoder Decoder;
};

volatile std::sig_atomic_t StopRequested = 0;

void onStopSignal(int) { StopRequested = 1; }

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Clients = 8, Uploads = 2, Windows = 2, Window = 0;
  uint64_t CorruptEvery = 0, TopPaths = 0, TopProcs = 0;
  uint64_t ExpectUploads = 0, IdleTimeoutMs = 30000;
  bool CctStats = false, ClientsSet = false, ServeSet = false;
  uint64_t ServePort = 0;
  std::string ConnectHost;
  uint16_t ConnectPort = 0;
  std::string IngestDir, WorkloadList = "130.li,129.compress";
  collectd::IngestConfig Config;
  Config.Threads = 4;
  Config.QueueCapacity = 256;

  for (int Index = 1; Index != Argc; ++Index) {
    std::string Arg = Argv[Index];
    auto Value = [&Arg](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    uint64_t N;
    if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    } else if (const char *V = Value("--ingest=")) {
      IngestDir = V;
    } else if (const char *V = Value("--clients=")) {
      if (!parseCount("--clients", V, Clients))
        return 1;
      if (Clients == 0) {
        std::fprintf(stderr, "pp-collectd: --clients wants at least 1\n");
        return 1;
      }
      ClientsSet = true;
    } else if (const char *V = Value("--uploads=")) {
      if (!parseCount("--uploads", V, Uploads))
        return 1;
      if (Uploads == 0) {
        std::fprintf(stderr, "pp-collectd: --uploads wants at least 1\n");
        return 1;
      }
    } else if (const char *V = Value("--workloads=")) {
      WorkloadList = V;
    } else if (const char *V = Value("--corrupt-every=")) {
      if (!parseCount("--corrupt-every", V, CorruptEvery))
        return 1;
      if (CorruptEvery == 0) {
        std::fprintf(stderr,
                     "pp-collectd: --corrupt-every wants at least 1 "
                     "(omit the flag to corrupt nothing)\n");
        return 1;
      }
    } else if (const char *V = Value("--serve=")) {
      if (!parseCount("--serve", V, ServePort) || ServePort > 65535) {
        std::fprintf(stderr,
                     "pp-collectd: bad --serve port '%s' (want 0..65535; "
                     "0 = ephemeral)\n",
                     V);
        return 1;
      }
      ServeSet = true;
    } else if (const char *V = Value("--connect=")) {
      if (!parseEndpoint(V, ConnectHost, ConnectPort))
        return 1;
    } else if (const char *V = Value("--expect-uploads=")) {
      if (!parseCount("--expect-uploads", V, ExpectUploads))
        return 1;
    } else if (const char *V = Value("--idle-timeout-ms=")) {
      if (!parseCount("--idle-timeout-ms", V, IdleTimeoutMs))
        return 1;
    } else if (const char *V = Value("--rate=")) {
      if (!parseCount("--rate", V, N))
        return 1;
      Config.TenantRatePerSec = static_cast<double>(N);
    } else if (const char *V = Value("--burst=")) {
      if (!parseCount("--burst", V, N))
        return 1;
      Config.TenantRateBurst = static_cast<double>(N);
    } else if (const char *V = Value("--retain=")) {
      if (!parseCount("--retain", V, N))
        return 1;
      Config.RetainWindows = N;
    } else if (const char *V = Value("--window=")) {
      if (!parseCount("--window", V, Window))
        return 1;
    } else if (const char *V = Value("--windows=")) {
      if (!parseCount("--windows", V, Windows) || Windows == 0) {
        std::fprintf(stderr, "pp-collectd: --windows wants at least 1\n");
        return 1;
      }
    } else if (const char *V = Value("--threads=")) {
      if (!parseCount("--threads", V, N))
        return 1;
      Config.Threads = static_cast<unsigned>(N);
    } else if (const char *V = Value("--queue=")) {
      if (!parseCount("--queue", V, N) || N == 0) {
        std::fprintf(stderr, "pp-collectd: --queue wants at least 1\n");
        return 1;
      }
      Config.QueueCapacity = N;
    } else if (const char *V = Value("--quota=")) {
      if (!parseCount("--quota", V, Config.TenantWindowQuota))
        return 1;
    } else if (const char *V = Value("--fanout=")) {
      if (!parseCount("--fanout", V, N))
        return 1;
      Config.Fanout = static_cast<unsigned>(N);
    } else if (const char *V = Value("--store=")) {
      Config.StoreDir = V;
    } else if (const char *V = Value("--top-paths=")) {
      if (!parseCount("--top-paths", V, TopPaths))
        return 1;
    } else if (const char *V = Value("--top-procs=")) {
      if (!parseCount("--top-procs", V, TopProcs))
        return 1;
    } else if (Arg == "--cct-stats") {
      CctStats = true;
    } else {
      std::fprintf(stderr, "pp-collectd: unknown option '%s'\n",
                   Arg.c_str());
      return 1;
    }
  }
  // --ingest, --serve, and --connect are modes; --clients parameterises
  // both the in-process simulation and --connect's wire fleet.
  int Modes = (!IngestDir.empty() ? 1 : 0) + (ServeSet ? 1 : 0) +
              (!ConnectHost.empty() ? 1 : 0);
  if (Modes > 1) {
    std::fprintf(stderr,
                 "pp-collectd: --ingest, --serve, and --connect are "
                 "mutually exclusive\n");
    return 1;
  }
  if (ClientsSet && (!IngestDir.empty() || ServeSet)) {
    std::fprintf(stderr,
                 "pp-collectd: --clients only applies to the simulation "
                 "and --connect modes\n");
    return 1;
  }

  // ---- client mode: upload the simulated fleet over the wire ----
  if (!ConnectHost.empty()) {
    std::vector<std::string> Workloads = splitList(WorkloadList);
    if (Workloads.empty()) {
      std::fprintf(stderr, "pp-collectd: --workloads names no workload\n");
      return 1;
    }
    std::vector<std::vector<uint8_t>> Pool;
    if (!buildUploadPool(Workloads, Clients, Uploads, Pool))
      return 1;

    uint64_t Accepted = 0;
    uint64_t RejectedBy[static_cast<size_t>(
        collectd::RejectReason::NumReasons)] = {};
    for (uint64_t Client = 0; Client != Clients; ++Client) {
      WireClient Wire;
      std::string Error;
      if (!Wire.connectTo(ConnectHost, ConnectPort, Error)) {
        std::fprintf(stderr, "pp-collectd: %s\n", Error.c_str());
        return 1;
      }
      collectd::Frame Hello;
      Hello.Type = collectd::FrameType::Hello;
      Hello.Tenant = formatString("c%llu",
                                  static_cast<unsigned long long>(Client));
      Hello.Acquisition = Config.Acquisition;
      collectd::Frame Reply;
      if (!Wire.sendFrame(Hello, Error) || !Wire.readFrame(Reply, Error)) {
        std::fprintf(stderr, "pp-collectd: hello failed: %s\n",
                     Error.c_str());
        return 1;
      }
      if (Reply.Type != collectd::FrameType::Ack) {
        std::fprintf(stderr, "pp-collectd: hello rejected: %s\n",
                     Reply.Message.c_str());
        return 1;
      }
      // Pipeline every upload, then read the verdicts in order.
      for (uint64_t U = 0; U != Uploads; ++U) {
        uint64_t Index = Client * Uploads + U;
        collectd::Frame Up;
        Up.Type = collectd::FrameType::Upload;
        Up.Serial = Index;
        Up.Window = Client % Windows;
        Up.Artifact = Pool[Index];
        if (CorruptEvery && (Index + 1) % CorruptEvery == 0 &&
            Up.Artifact.size() > 16)
          Up.Artifact[Up.Artifact.size() / 2] ^= 0x20;
        if (!Wire.sendFrame(Up, Error)) {
          std::fprintf(stderr, "pp-collectd: upload failed: %s\n",
                       Error.c_str());
          return 1;
        }
      }
      for (uint64_t U = 0; U != Uploads; ++U) {
        if (!Wire.readFrame(Reply, Error)) {
          std::fprintf(stderr, "pp-collectd: upload verdict lost: %s\n",
                       Error.c_str());
          return 1;
        }
        if (Reply.Type == collectd::FrameType::Ack)
          ++Accepted;
        else
          ++RejectedBy[static_cast<size_t>(Reply.Reason)];
      }

      // The last client carries the window queries.
      if (Client + 1 == Clients && (TopPaths || TopProcs || CctStats)) {
        for (uint64_t Id = 0; Id != Windows; ++Id) {
          struct Ask {
            bool On;
            collectd::QueryKind Kind;
            uint64_t Limit;
          } Asks[] = {
              {TopPaths != 0, collectd::QueryKind::TopPaths, TopPaths},
              {TopProcs != 0, collectd::QueryKind::TopProcs, TopProcs},
              {CctStats, collectd::QueryKind::CctStats, 0},
          };
          for (const Ask &A : Asks) {
            if (!A.On)
              continue;
            collectd::Frame Query;
            Query.Type = collectd::FrameType::Query;
            Query.Kind = A.Kind;
            Query.Window = Id;
            Query.Limit = A.Limit;
            if (!Wire.sendFrame(Query, Error) ||
                !Wire.readFrame(Reply, Error)) {
              std::fprintf(stderr, "pp-collectd: query failed: %s\n",
                           Error.c_str());
              return 1;
            }
            if (Reply.Type == collectd::FrameType::Ack)
              std::printf("-- window %llu --\n%s",
                          static_cast<unsigned long long>(Id),
                          Reply.Text.c_str());
          }
        }
      }
      Wire.disconnect();
    }

    TableWriter Table;
    Table.setHeader({"Wire client", "Count"});
    Table.addRow({"uploads", std::to_string(Clients * Uploads)});
    Table.addRow({"accepted", std::to_string(Accepted)});
    for (unsigned R = 1;
         R != static_cast<unsigned>(collectd::RejectReason::NumReasons); ++R)
      Table.addRow({formatString("rejected %s",
                                 collectd::rejectReasonName(
                                     collectd::RejectReason(R))),
                    std::to_string(RejectedBy[R])});
    std::printf("%s", Table.render().c_str());
    return 0;
  }

  // ---- serve mode: the socket front end owns the service ----
  if (ServeSet) {
    // The event loop ingests synchronously; queue workers would only idle.
    Config.Threads = 0;
    collectd::IngestService Service(Config);
    collectd::ServerConfig ServerCfg;
    ServerCfg.Port = static_cast<uint16_t>(ServePort);
    ServerCfg.IdleTimeoutMs = IdleTimeoutMs;
    collectd::Server Server(ServerCfg, Service);
    std::string Error;
    if (!Server.start(Error)) {
      std::fprintf(stderr, "pp-collectd: %s\n", Error.c_str());
      return 1;
    }
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);
    std::printf("pp-collectd: listening on %s:%u\n",
                ServerCfg.BindAddress.c_str(), unsigned(Server.port()));
    std::fflush(stdout);
    while (!StopRequested) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      if (ExpectUploads) {
        collectd::ServerStats S = Server.stats();
        if (S.Uploads >= ExpectUploads && S.OpenConnections == 0)
          break;
      }
    }
    Server.stop();

    if (!Config.StoreDir.empty()) {
      if (!Service.persist(Error)) {
        std::fprintf(stderr, "pp-collectd: persist failed: %s\n",
                     Error.c_str());
        return 1;
      }
      std::printf("persisted %zu window(s) under %s\n",
                  Service.windows().size(), Config.StoreDir.c_str());
    }
    printServerStats(Server.stats());
    printStats(Service);
    return 0;
  }

  collectd::IngestService Service(Config);

  if (!IngestDir.empty()) {
    std::vector<std::string> Files = profdb::listArtifactFiles(IngestDir);
    if (Files.empty()) {
      std::fprintf(stderr, "pp-collectd: no .ppa artifacts in '%s'\n",
                   IngestDir.c_str());
      return 1;
    }
    for (const std::string &Path : Files) {
      std::ifstream In(Path, std::ios::binary);
      std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                                 std::istreambuf_iterator<char>());
      Service.submit({Path, Window, std::move(Bytes)});
    }
  } else {
    std::vector<std::string> Workloads = splitList(WorkloadList);
    if (Workloads.empty() || Clients == 0 || Uploads == 0) {
      std::fprintf(stderr,
                   "pp-collectd: nothing to simulate (check --clients, "
                   "--uploads, --workloads)\n");
      return 1;
    }
    std::vector<std::vector<uint8_t>> Pool;
    if (!buildUploadPool(Workloads, Clients, Uploads, Pool))
      return 1;
    for (uint64_t Client = 0; Client != Clients; ++Client)
      for (uint64_t U = 0; U != Uploads; ++U) {
        uint64_t Index = Client * Uploads + U;
        std::vector<uint8_t> Bytes = Pool[Index];
        if (CorruptEvery && (Index + 1) % CorruptEvery == 0 &&
            Bytes.size() > 16)
          Bytes[Bytes.size() / 2] ^= 0x20;
        Service.submit({formatString("c%llu",
                                     static_cast<unsigned long long>(Client)),
                        Client % Windows, std::move(Bytes)});
      }
  }

  Service.drain();

  for (uint64_t Id : Service.windows()) {
    std::string Error;
    if (TopPaths) {
      std::string Out = Service.queryTopPaths(Id, TopPaths, Error);
      if (Out.empty() && !Error.empty()) {
        std::fprintf(stderr, "pp-collectd: %s\n", Error.c_str());
        return 1;
      }
      std::printf("-- window %llu --\n%s",
                  static_cast<unsigned long long>(Id), Out.c_str());
    }
    if (TopProcs) {
      std::string Out = Service.queryTopProcs(Id, TopProcs, Error);
      if (Out.empty() && !Error.empty()) {
        std::fprintf(stderr, "pp-collectd: %s\n", Error.c_str());
        return 1;
      }
      std::printf("-- window %llu --\n%s",
                  static_cast<unsigned long long>(Id), Out.c_str());
    }
    if (CctStats) {
      std::string Out = Service.queryCctStats(Id, Error);
      if (Out.empty() && !Error.empty()) {
        std::fprintf(stderr, "pp-collectd: %s\n", Error.c_str());
        return 1;
      }
      std::printf("-- window %llu --\n%s",
                  static_cast<unsigned long long>(Id), Out.c_str());
    }
  }

  if (!Config.StoreDir.empty()) {
    std::string Error;
    if (!Service.persist(Error)) {
      std::fprintf(stderr, "pp-collectd: persist failed: %s\n",
                   Error.c_str());
      return 1;
    }
    std::printf("persisted %zu window(s) under %s\n",
                Service.windows().size(), Config.StoreDir.c_str());
  }

  printStats(Service);
  return 0;
}
