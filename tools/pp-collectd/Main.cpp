//===- tools/pp-collectd/Main.cpp - Fleet ingest daemon ------------------------===//
//
// The collector's front door. Two feeding modes:
//
//   pp-collectd --ingest=DIR [--window=N]   upload every .ppa in DIR
//   pp-collectd --clients=N [...]           simulate a fleet: N clients
//                                           running instrumented workloads
//                                           and uploading their artifacts
//
// Either way, uploads flow through the bounded-queue ingest service into
// per-window merge trees, and the folded windows answer the same queries
// pp-report does (top-paths / top-procs / cct-stats) — plus an ingest
// stats table with every typed rejection reason.
//
//===----------------------------------------------------------------------===//

#include "collectd/Ingest.h"
#include "driver/Driver.h"
#include "obs/Obs.h"
#include "profdb/Artifact.h"
#include "profdb/Store.h"
#include "support/Format.h"
#include "support/TableWriter.h"
#include "workloads/Spec.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace pp;

namespace {

void printUsage() {
  std::printf(
      "usage: pp-collectd [options]\n"
      "\n"
      "Fleet profile collector: ingests .ppa artifact uploads into\n"
      "time-windowed incremental merge trees and serves pp-report-style\n"
      "queries over the folded windows.\n"
      "\n"
      "feeding (pick one):\n"
      "  --ingest=<dir>     upload every .ppa artifact in <dir>\n"
      "  --clients=<n>      simulate <n> fleet clients (default 8)\n"
      "\n"
      "simulation options:\n"
      "  --uploads=<n>      uploads per client (default 2)\n"
      "  --workloads=<a,b>  source workloads (default 130.li,129.compress)\n"
      "  --corrupt-every=<n> flip one byte of every nth upload, showing\n"
      "                     the typed corrupt-rejection path\n"
      "\n"
      "service options:\n"
      "  --window=<n>       window for --ingest uploads (default 0)\n"
      "  --windows=<n>      windows simulated uploads spread over (default 2)\n"
      "  --threads=<n>      ingest workers; 0 = synchronous (default 4)\n"
      "  --queue=<n>        bounded queue capacity (default 256)\n"
      "  --quota=<n>        accepted uploads per tenant+window (0 = off)\n"
      "  --fanout=<n>       merge-tree level fanout (default 8)\n"
      "  --store=<dir>      persist folded windows to <dir>/w<id>/ as .ppa\n"
      "\n"
      "queries (printed per window after ingest):\n"
      "  --top-paths=<n>    hottest Ball-Larus paths by PIC1\n"
      "  --top-procs=<n>    hottest procedures by PIC1\n"
      "  --cct-stats        calling-context-tree statistics\n");
}

bool parseCount(const char *Flag, const char *Text, uint64_t &Out) {
  if (parseUint64(Text, Out))
    return true;
  std::fprintf(stderr, "pp-collectd: bad %s '%s' (want a number)\n", Flag,
               Text);
  return false;
}

std::vector<std::string> splitList(const std::string &Text) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Comma = Text.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Text.size();
    if (Comma != Pos)
      Out.push_back(Text.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Out;
}

/// Encoded uploads for the simulated fleet: each workload runs once in
/// Flow-and-HW (path queries) and once in Context-and-Flow-and-HW (CCT
/// queries), then each client's uploads are those runs' artifacts under
/// per-upload fingerprints — exactly what distinct fleet machines
/// reporting the same binary would send.
bool buildUploadPool(const std::vector<std::string> &Workloads,
                     uint64_t Clients, uint64_t UploadsPerClient,
                     std::vector<std::vector<uint8_t>> &Pool) {
  driver::Driver D(/*DiskDir=*/"", /*Threads=*/0);
  struct Source {
    driver::OutcomePtr Run;
    std::unique_ptr<ir::Module> Module;
    prof::ProfileConfig Config;
    std::string Workload;
  };
  std::vector<Source> Sources;
  for (const std::string &Name : Workloads) {
    for (prof::Mode M : {prof::Mode::FlowHw, prof::Mode::ContextFlowHw}) {
      driver::RunPlan Plan;
      Plan.Workload = Name;
      Plan.Options.Config.M = M;
      Source S;
      S.Run = D.run(Plan);
      if (!S.Run || !S.Run->Result.Ok) {
        std::fprintf(stderr, "pp-collectd: workload '%s' failed: %s\n",
                     Name.c_str(),
                     S.Run ? S.Run->Result.Error.c_str() : "no outcome");
        return false;
      }
      S.Module = workloads::buildWorkload(Name, 1);
      S.Config = Plan.Options.Config;
      S.Workload = Name;
      Sources.push_back(std::move(S));
    }
  }

  uint64_t Total = Clients * UploadsPerClient;
  for (uint64_t Index = 0; Index != Total; ++Index) {
    const Source &S = Sources[Index % Sources.size()];
    profdb::Artifact A = profdb::artifactFromOutcome(
        *S.Run, *S.Module,
        formatString("sim;%s;upload%llu", S.Workload.c_str(),
                     static_cast<unsigned long long>(Index)),
        S.Workload, 1, S.Config);
    Pool.push_back(profdb::encodeArtifact(A));
  }
  return true;
}

void printStats(const collectd::IngestService &Service) {
  collectd::IngestStats Stats = Service.stats();
  TableWriter Table;
  Table.setHeader({"Ingest", "Count"});
  Table.addRow({"submitted", std::to_string(Stats.Submitted)});
  Table.addRow({"accepted", std::to_string(Stats.Accepted)});
  Table.addRow({"rejected", std::to_string(Stats.Rejected)});
  for (unsigned R = 1;
       R != static_cast<unsigned>(collectd::RejectReason::NumReasons); ++R)
    Table.addRow({formatString("  %s", collectd::rejectReasonName(
                                           collectd::RejectReason(R))),
                  std::to_string(Stats.RejectedBy[R])});
  Table.addRow({"backpressured", std::to_string(Stats.Backpressured)});
  Table.addRow({"compactions", std::to_string(Stats.Compactions)});
  Table.addRow({"windows", std::to_string(Stats.Windows)});
  Table.addRow({"queries", std::to_string(Stats.Queries)});
  std::printf("%s", Table.render().c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Clients = 8, Uploads = 2, Windows = 2, Window = 0;
  uint64_t CorruptEvery = 0, TopPaths = 0, TopProcs = 0;
  bool CctStats = false, ClientsSet = false;
  std::string IngestDir, WorkloadList = "130.li,129.compress";
  collectd::IngestConfig Config;
  Config.Threads = 4;
  Config.QueueCapacity = 256;

  for (int Index = 1; Index != Argc; ++Index) {
    std::string Arg = Argv[Index];
    auto Value = [&Arg](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    uint64_t N;
    if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    } else if (const char *V = Value("--ingest=")) {
      IngestDir = V;
    } else if (const char *V = Value("--clients=")) {
      if (!parseCount("--clients", V, Clients))
        return 1;
      ClientsSet = true;
    } else if (const char *V = Value("--uploads=")) {
      if (!parseCount("--uploads", V, Uploads))
        return 1;
    } else if (const char *V = Value("--workloads=")) {
      WorkloadList = V;
    } else if (const char *V = Value("--corrupt-every=")) {
      if (!parseCount("--corrupt-every", V, CorruptEvery))
        return 1;
    } else if (const char *V = Value("--window=")) {
      if (!parseCount("--window", V, Window))
        return 1;
    } else if (const char *V = Value("--windows=")) {
      if (!parseCount("--windows", V, Windows) || Windows == 0) {
        std::fprintf(stderr, "pp-collectd: --windows wants at least 1\n");
        return 1;
      }
    } else if (const char *V = Value("--threads=")) {
      if (!parseCount("--threads", V, N))
        return 1;
      Config.Threads = static_cast<unsigned>(N);
    } else if (const char *V = Value("--queue=")) {
      if (!parseCount("--queue", V, N) || N == 0) {
        std::fprintf(stderr, "pp-collectd: --queue wants at least 1\n");
        return 1;
      }
      Config.QueueCapacity = N;
    } else if (const char *V = Value("--quota=")) {
      if (!parseCount("--quota", V, Config.TenantWindowQuota))
        return 1;
    } else if (const char *V = Value("--fanout=")) {
      if (!parseCount("--fanout", V, N))
        return 1;
      Config.Fanout = static_cast<unsigned>(N);
    } else if (const char *V = Value("--store=")) {
      Config.StoreDir = V;
    } else if (const char *V = Value("--top-paths=")) {
      if (!parseCount("--top-paths", V, TopPaths))
        return 1;
    } else if (const char *V = Value("--top-procs=")) {
      if (!parseCount("--top-procs", V, TopProcs))
        return 1;
    } else if (Arg == "--cct-stats") {
      CctStats = true;
    } else {
      std::fprintf(stderr, "pp-collectd: unknown option '%s'\n",
                   Arg.c_str());
      return 1;
    }
  }
  if (!IngestDir.empty() && ClientsSet) {
    std::fprintf(stderr,
                 "pp-collectd: --ingest and --clients are mutually "
                 "exclusive\n");
    return 1;
  }

  collectd::IngestService Service(Config);

  if (!IngestDir.empty()) {
    std::vector<std::string> Files = profdb::listArtifactFiles(IngestDir);
    if (Files.empty()) {
      std::fprintf(stderr, "pp-collectd: no .ppa artifacts in '%s'\n",
                   IngestDir.c_str());
      return 1;
    }
    for (const std::string &Path : Files) {
      std::ifstream In(Path, std::ios::binary);
      std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                                 std::istreambuf_iterator<char>());
      Service.submit({Path, Window, std::move(Bytes)});
    }
  } else {
    std::vector<std::string> Workloads = splitList(WorkloadList);
    if (Workloads.empty() || Clients == 0 || Uploads == 0) {
      std::fprintf(stderr,
                   "pp-collectd: nothing to simulate (check --clients, "
                   "--uploads, --workloads)\n");
      return 1;
    }
    std::vector<std::vector<uint8_t>> Pool;
    if (!buildUploadPool(Workloads, Clients, Uploads, Pool))
      return 1;
    for (uint64_t Client = 0; Client != Clients; ++Client)
      for (uint64_t U = 0; U != Uploads; ++U) {
        uint64_t Index = Client * Uploads + U;
        std::vector<uint8_t> Bytes = Pool[Index];
        if (CorruptEvery && (Index + 1) % CorruptEvery == 0 &&
            Bytes.size() > 16)
          Bytes[Bytes.size() / 2] ^= 0x20;
        Service.submit({formatString("c%llu",
                                     static_cast<unsigned long long>(Client)),
                        Client % Windows, std::move(Bytes)});
      }
  }

  Service.drain();

  for (uint64_t Id : Service.windows()) {
    std::string Error;
    if (TopPaths) {
      std::string Out = Service.queryTopPaths(Id, TopPaths, Error);
      if (Out.empty() && !Error.empty()) {
        std::fprintf(stderr, "pp-collectd: %s\n", Error.c_str());
        return 1;
      }
      std::printf("-- window %llu --\n%s",
                  static_cast<unsigned long long>(Id), Out.c_str());
    }
    if (TopProcs) {
      std::string Out = Service.queryTopProcs(Id, TopProcs, Error);
      if (Out.empty() && !Error.empty()) {
        std::fprintf(stderr, "pp-collectd: %s\n", Error.c_str());
        return 1;
      }
      std::printf("-- window %llu --\n%s",
                  static_cast<unsigned long long>(Id), Out.c_str());
    }
    if (CctStats) {
      std::string Out = Service.queryCctStats(Id, Error);
      if (Out.empty() && !Error.empty()) {
        std::fprintf(stderr, "pp-collectd: %s\n", Error.c_str());
        return 1;
      }
      std::printf("-- window %llu --\n%s",
                  static_cast<unsigned long long>(Id), Out.c_str());
    }
  }

  if (!Config.StoreDir.empty()) {
    std::string Error;
    if (!Service.persist(Error)) {
      std::fprintf(stderr, "pp-collectd: persist failed: %s\n",
                   Error.c_str());
      return 1;
    }
    std::printf("persisted %zu window(s) under %s\n",
                Service.windows().size(), Config.StoreDir.c_str());
  }

  printStats(Service);
  return 0;
}
