//===- tools/pp-opt/Main.cpp - the profile-guided optimizer CLI ---------------===//
//
// The command-line face of the optimizer: load a program (a .ppir file or
// a built-in workload), resolve a merged .ppa profile artifact against it,
// run the requested pass pipeline (hot-path-first layout, superblock
// formation, CCT-directed inlining), and write the optimized module plus a
// per-pass report of what changed and what was refused.
//
// Exit codes are typed so scripted PGO loops can tell the failure classes
// apart: 1 = usage / I/O / artifact decode error, 2 = the profile was
// refused against this module (ViewStatus), 3 = a pass broke the module
// (verifier failure; the output file is not written).
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opt/Pass.h"
#include "profdb/Store.h"
#include "workloads/Spec.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace pp;

namespace {

struct Options {
  std::string Input;
  std::string ProfileFile;
  std::string PassText;
  std::string OutFile;
  std::string Report; // "", "text", "json"
  int Scale = 1;
};

void printUsage() {
  std::printf(
      "usage: pp-opt --in <file.ppir|workload> --profile <file.ppa> "
      "[options]\n"
      "\n"
      "Profile-guided optimizer: consumes a profile artifact collected by\n"
      "pp / pp-collectd and rewrites the program it was collected from.\n"
      "\n"
      "options:\n"
      "  --in <prog>       the program to optimize (.ppir file or built-in\n"
      "                    workload name)\n"
      "  --profile <file>  the .ppa artifact to optimize from\n"
      "  --passes <list>   comma-separated pass order: layout, superblock,\n"
      "                    inline (default $PP_OPT_PASSES, else all three)\n"
      "  --out <file>      write the optimized module here (.ppir text)\n"
      "  --report <fmt>    print a per-pass report: text or json\n"
      "  --scale <n>       workload scale factor (default 1)\n"
      "\n"
      "environment:\n"
      "  PP_OPT_PASSES         default pass list\n"
      "  PP_OPT_INLINE_BUDGET  max instructions a caller may grow by\n"
      "  PP_OPT_DUP_BUDGET     max instructions a function may duplicate\n");
}

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  for (int Index = 1; Index != Argc; ++Index) {
    std::string Arg = Argv[Index];
    // Accept both "--flag=value" and "--flag value".
    auto Value = [&](const char *Flag) -> const char * {
      size_t Len = std::strlen(Flag);
      if (Arg.compare(0, Len, Flag) == 0 && Arg.size() > Len &&
          Arg[Len] == '=')
        return Arg.c_str() + Len + 1;
      if (Arg == Flag && Index + 1 != Argc)
        return Argv[++Index];
      return nullptr;
    };
    if (Arg == "--help" || Arg == "-h") {
      printUsage();
      std::exit(0);
    } else if (const char *V = Value("--in")) {
      Opts.Input = V;
    } else if (const char *V = Value("--profile")) {
      Opts.ProfileFile = V;
    } else if (const char *V = Value("--passes")) {
      Opts.PassText = V;
    } else if (const char *V = Value("--out")) {
      Opts.OutFile = V;
    } else if (const char *V = Value("--report")) {
      Opts.Report = V;
      if (Opts.Report != "text" && Opts.Report != "json") {
        std::fprintf(stderr, "pp-opt: bad --report '%s' (want text|json)\n",
                     V);
        return false;
      }
    } else if (const char *V = Value("--scale")) {
      Opts.Scale = std::atoi(V);
      if (Opts.Scale < 1) {
        std::fprintf(stderr, "pp-opt: bad scale\n");
        return false;
      }
    } else {
      std::fprintf(stderr, "pp-opt: unknown option '%s'\n", Arg.c_str());
      return false;
    }
  }
  if (Opts.Input.empty() || Opts.ProfileFile.empty()) {
    std::fprintf(stderr, "pp-opt: --in and --profile are required "
                         "(see --help)\n");
    return false;
  }
  return true;
}

std::unique_ptr<ir::Module> loadInput(const Options &Opts) {
  if (auto M = workloads::buildWorkload(Opts.Input, Opts.Scale))
    return M;
  std::ifstream File(Opts.Input);
  if (!File) {
    std::fprintf(stderr, "pp-opt: cannot open '%s' (and it is not a "
                         "built-in workload)\n",
                 Opts.Input.c_str());
    return nullptr;
  }
  std::stringstream Buffer;
  Buffer << File.rdbuf();
  ir::ParseResult Parsed = ir::parseModule(Buffer.str());
  if (!Parsed.ok()) {
    std::fprintf(stderr, "pp-opt: %s: %s\n", Opts.Input.c_str(),
                 Parsed.Error.c_str());
    return nullptr;
  }
  return std::move(Parsed.M);
}

void reportText(const opt::PipelineResult &Result, size_t InstsBefore,
                size_t InstsAfter) {
  std::printf("%-12s %10s %8s %6s %8s %7s %7s %7s %7s %6s\n", "pass",
              "considered", "changed", "dups", "inlined", "insts+",
              "budget-", "recur-", "unsafe-", "cost-");
  for (const opt::PassStats &S : Result.Passes)
    std::printf("%-12s %10u %8u %6u %8u %7llu %7u %7u %7u %6u\n",
                opt::passName(S.Kind), S.FunctionsConsidered,
                S.FunctionsChanged, S.BlocksDuplicated, S.SitesInlined,
                (unsigned long long)S.InstsAdded, S.BudgetRefusals,
                S.RecursionRefusals, S.UnsafeRefusals, S.CostRefusals);
  std::printf("module: %zu insts -> %zu insts\n", InstsBefore, InstsAfter);
}

void reportJson(const opt::PipelineResult &Result, size_t InstsBefore,
                size_t InstsAfter) {
  std::printf("{\n  \"passes\": [\n");
  for (size_t Index = 0; Index != Result.Passes.size(); ++Index) {
    const opt::PassStats &S = Result.Passes[Index];
    std::printf("    {\"pass\": \"%s\", \"functions_considered\": %u, "
                "\"functions_changed\": %u, \"blocks_duplicated\": %u, "
                "\"sites_inlined\": %u, \"insts_added\": %llu, "
                "\"budget_refusals\": %u, \"recursion_refusals\": %u, "
                "\"unsafe_refusals\": %u, \"cost_refusals\": %u}%s\n",
                opt::passName(S.Kind), S.FunctionsConsidered,
                S.FunctionsChanged, S.BlocksDuplicated, S.SitesInlined,
                (unsigned long long)S.InstsAdded, S.BudgetRefusals,
                S.RecursionRefusals, S.UnsafeRefusals, S.CostRefusals,
                Index + 1 == Result.Passes.size() ? "" : ",");
  }
  std::printf("  ],\n  \"insts_before\": %zu,\n  \"insts_after\": %zu,\n"
              "  \"ok\": %s\n}\n",
              InstsBefore, InstsAfter, Result.Ok ? "true" : "false");
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 1;

  std::unique_ptr<ir::Module> M = loadInput(Opts);
  if (!M)
    return 1;

  profdb::Artifact A;
  profdb::DecodeStatus DS = profdb::readArtifactFile(Opts.ProfileFile, A);
  if (DS != profdb::DecodeStatus::Ok) {
    std::fprintf(stderr, "pp-opt: %s: %s\n", Opts.ProfileFile.c_str(),
                 profdb::decodeStatusName(DS));
    return 1;
  }

  opt::ProfileView View;
  opt::ViewStatus VS = opt::ProfileView::build(A, *M, View);
  if (VS != opt::ViewStatus::Ok) {
    std::fprintf(stderr, "pp-opt: profile refused: %s\n",
                 opt::viewStatusName(VS));
    return 2;
  }

  std::vector<opt::PassKind> Passes;
  if (!Opts.PassText.empty()) {
    std::string Error;
    if (!opt::parsePasses(Opts.PassText, Passes, Error)) {
      std::fprintf(stderr, "pp-opt: bad --passes: %s\n", Error.c_str());
      return 1;
    }
  } else {
    Passes = opt::passesFromEnv(
        "pp-opt", {opt::PassKind::Layout, opt::PassKind::Superblock,
                   opt::PassKind::Inline});
  }
  const opt::PassOptions PassOpts = opt::PassOptions::fromEnv("pp-opt");

  const size_t InstsBefore = M->numInsts();
  opt::PipelineResult Result = opt::runPipeline(*M, View, Passes, PassOpts);
  if (!Result.Ok) {
    std::fprintf(stderr, "pp-opt: %s\n", Result.Error.c_str());
    return 3;
  }
  const size_t InstsAfter = M->numInsts();

  if (!Opts.OutFile.empty()) {
    std::ofstream Out(Opts.OutFile, std::ios::trunc);
    if (!Out) {
      std::fprintf(stderr, "pp-opt: cannot write '%s'\n",
                   Opts.OutFile.c_str());
      return 1;
    }
    Out << ir::printModule(*M);
    if (!Out.flush()) {
      std::fprintf(stderr, "pp-opt: write to '%s' failed\n",
                   Opts.OutFile.c_str());
      return 1;
    }
  }

  if (Opts.Report == "json")
    reportJson(Result, InstsBefore, InstsAfter);
  else if (Opts.Report == "text")
    reportText(Result, InstsBefore, InstsAfter);
  return 0;
}
