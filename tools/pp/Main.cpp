//===- tools/pp/Main.cpp - the PP command-line driver --------------------------===//
//
// The command-line face of the library, mirroring the paper's PP tool:
// load a program (a .ppir file or a built-in SPEC95-shaped workload),
// instrument it for the requested mode, run it on the simulated machine,
// and report — whole-run metrics with overhead against an uninstrumented
// run, hot paths with their block sequences, per-procedure aggregates,
// and calling-context-tree statistics or Graphviz dumps.
//
//===----------------------------------------------------------------------===//

#include "analysis/HotPaths.h"
#include "bl/KPathNumbering.h"
#include "bl/PathNumbering.h"
#include "cct/Export.h"
#include "driver/Driver.h"
#include "ir/Parser.h"
#include "obs/Obs.h"
#include "ir/Printer.h"
#include "prof/Session.h"
#include "support/Env.h"
#include "support/Format.h"
#include "support/TableWriter.h"
#include "workloads/Spec.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

using namespace pp;

namespace {

struct Options {
  std::string Input;
  prof::Mode M = prof::Mode::FlowHw;
  hw::Event Pic0 = hw::Event::Insts;
  hw::Event Pic1 = hw::Event::DCacheReadMiss;
  prof::AcquisitionOptions Acq;
  int Scale = 1;
  unsigned K = 1;
  double HotThreshold = 0.01;
  bool DumpIr = false;
  bool DumpInstrumented = false;
  bool ListWorkloads = false;
  unsigned MaxPathsShown = 10;
  bool Coverage = false;
  std::string DotFile;
  std::string CctFile;
  std::string SignalSpec;
  std::string ProfileOutDir;
  std::string ObsOutFile;
};

void printUsage() {
  std::printf(
      "usage: pp [options] <file.ppir | workload name>\n"
      "\n"
      "Flow and context sensitive profiling on a simulated machine\n"
      "(reproduction of Ammons/Ball/Larus, PLDI 1997).\n"
      "\n"
      "options:\n"
      "  --mode=<m>        none|edge|flow|flowhw|context|contexthw|"
      "contextflow|\n"
      "                    contextflowhw (default flowhw)\n"
      "  --events=<a>,<b>  the two events routed to the PICs:\n"
      "                    cycles,insts,dcrmiss,dcwmiss,icmiss,mispredict,\n"
      "                    storebuf,fpstall (default insts,dcrmiss)\n"
      "  --scale=<n>       workload scale factor (default 1)\n"
      "  --k=<n>           count paths spanning up to n-1 back edges\n"
      "                    (k-iteration Ball-Larus; default 1 = classic;\n"
      "                    needs flow/flowhw mode and exact acquisition;\n"
      "                    $PP_BL_K sets the default)\n"
      "  --hot=<frac>      hot-path threshold as a miss fraction "
      "(default 0.01)\n"
      "  --paths=<n>       hot paths to list (default 10)\n"
      "  --coverage        report path coverage per function (flow modes)\n"
      "  --signal=<f>:<n>  run function f as a signal handler every n\n"
      "                    executed instructions\n"
      "  --acquisition=<a> exact (instrumented counter reads, the default)\n"
      "                    or overflow (PIC overflow-trap sampling; the\n"
      "                    profile becomes a statistical estimate)\n"
      "  --period=<n>      overflow sampling period in events "
      "(default 65536)\n"
      "  --sample-pic=<p>  which PIC's overflow traps drive sampling: 0 "
      "or 1\n"
      "                    (default 0)\n"
      "  --sample-seed=<s> nonzero: jitter each period in [p/2, 3p/2) "
      "from a\n"
      "                    deterministic PRNG; 0 keeps the period fixed\n"
      "  --dot=<file>      write the CCT as Graphviz\n"
      "  --cct-out=<file>  write the serialised CCT profile\n"
      "  --profile-out=<dir>  deposit a profile artifact per run into dir\n"
      "                    (overrides $PP_PROFILE_OUT; see pp-report)\n"
      "  --obs-out=<file>  write the pipeline observability report as JSON\n"
      "                    at exit (overrides $PP_OBS_OUT; see pp-report "
      "obs)\n"
      "  --dump-ir         print the program and exit\n"
      "  --dump-instrumented  print the instrumented program and exit\n"
      "  --list-workloads  list the built-in SPEC95-shaped workloads\n");
}

bool parseEvent(const std::string &Name, hw::Event &Out) {
  static const std::map<std::string, hw::Event> Table = {
      {"cycles", hw::Event::Cycles},
      {"insts", hw::Event::Insts},
      {"dcrmiss", hw::Event::DCacheReadMiss},
      {"dcwmiss", hw::Event::DCacheWriteMiss},
      {"icmiss", hw::Event::ICacheMiss},
      {"mispredict", hw::Event::MispredictStall},
      {"storebuf", hw::Event::StoreBufferStall},
      {"fpstall", hw::Event::FpStall},
  };
  auto It = Table.find(Name);
  if (It == Table.end())
    return false;
  Out = It->second;
  return true;
}

bool parseMode(const std::string &Name, prof::Mode &Out) {
  static const std::map<std::string, prof::Mode> Table = {
      {"none", prof::Mode::None},
      {"edge", prof::Mode::Edge},
      {"flow", prof::Mode::Flow},
      {"flowhw", prof::Mode::FlowHw},
      {"context", prof::Mode::Context},
      {"contexthw", prof::Mode::ContextHw},
      {"contextflow", prof::Mode::ContextFlow},
      {"contextflowhw", prof::Mode::ContextFlowHw},
  };
  auto It = Table.find(Name);
  if (It == Table.end())
    return false;
  Out = It->second;
  return true;
}

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  for (int Index = 1; Index != Argc; ++Index) {
    std::string Arg = Argv[Index];
    auto Value = [&Arg](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    if (Arg == "--help" || Arg == "-h") {
      printUsage();
      std::exit(0);
    } else if (Arg == "--dump-ir") {
      Opts.DumpIr = true;
    } else if (Arg == "--dump-instrumented") {
      Opts.DumpInstrumented = true;
    } else if (Arg == "--list-workloads") {
      Opts.ListWorkloads = true;
    } else if (const char *V = Value("--mode=")) {
      if (!parseMode(V, Opts.M)) {
        std::fprintf(stderr, "pp: unknown mode '%s'\n", V);
        return false;
      }
    } else if (const char *V = Value("--events=")) {
      std::string Text = V;
      size_t Comma = Text.find(',');
      if (Comma == std::string::npos ||
          !parseEvent(Text.substr(0, Comma), Opts.Pic0) ||
          !parseEvent(Text.substr(Comma + 1), Opts.Pic1)) {
        std::fprintf(stderr, "pp: bad --events '%s'\n", V);
        return false;
      }
    } else if (const char *V = Value("--scale=")) {
      Opts.Scale = std::atoi(V);
      if (Opts.Scale < 1) {
        std::fprintf(stderr, "pp: bad scale\n");
        return false;
      }
    } else if (const char *V = Value("--k=")) {
      uint64_t K = 0;
      if (!parseUint64(V, K) || K == 0 || K > 16) {
        std::fprintf(stderr, "pp: bad --k '%s' (want 1..16)\n", V);
        return false;
      }
      Opts.K = static_cast<unsigned>(K);
    } else if (const char *V = Value("--hot=")) {
      Opts.HotThreshold = std::atof(V);
    } else if (const char *V = Value("--paths=")) {
      Opts.MaxPathsShown = static_cast<unsigned>(std::atoi(V));
    } else if (Arg == "--coverage") {
      Opts.Coverage = true;
    } else if (const char *V = Value("--acquisition=")) {
      if (!prof::parseAcquisition(V, Opts.Acq.Kind)) {
        std::fprintf(stderr, "pp: unknown acquisition '%s'\n", V);
        return false;
      }
    } else if (const char *V = Value("--period=")) {
      // The PIC is 32 bits wide: 0 would arm a 2^32-event trap (the
      // register wraps all the way around) and > 2^32-1 cannot be
      // programmed, so both are user errors, not values to clamp quietly.
      uint64_t Period = 0;
      if (!parseUint64(V, Period) || Period == 0 ||
          Period > 0xffffffffULL) {
        std::fprintf(stderr,
                     "pp: bad --period '%s' (want 1..4294967295)\n", V);
        return false;
      }
      Opts.Acq.Period = Period;
    } else if (const char *V = Value("--sample-pic=")) {
      unsigned Pic = static_cast<unsigned>(std::atoi(V));
      if (Pic > 1) {
        std::fprintf(stderr, "pp: --sample-pic wants 0 or 1\n");
        return false;
      }
      Opts.Acq.Pic = Pic;
    } else if (const char *V = Value("--sample-seed=")) {
      Opts.Acq.Seed = std::strtoull(V, nullptr, 10);
    } else if (const char *V = Value("--signal=")) {
      Opts.SignalSpec = V;
    } else if (const char *V = Value("--dot=")) {
      Opts.DotFile = V;
    } else if (const char *V = Value("--cct-out=")) {
      Opts.CctFile = V;
    } else if (const char *V = Value("--profile-out=")) {
      Opts.ProfileOutDir = V;
    } else if (const char *V = Value("--obs-out=")) {
      Opts.ObsOutFile = V;
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "pp: unknown option '%s'\n", Arg.c_str());
      return false;
    } else if (Opts.Input.empty()) {
      Opts.Input = Arg;
    } else {
      std::fprintf(stderr, "pp: multiple inputs\n");
      return false;
    }
  }
  return true;
}

std::unique_ptr<ir::Module> loadInput(const Options &Opts) {
  // Built-in workload name?
  if (auto M = workloads::buildWorkload(Opts.Input, Opts.Scale))
    return M;
  // Otherwise a .ppir file.
  std::ifstream File(Opts.Input);
  if (!File) {
    std::fprintf(stderr, "pp: cannot open '%s' (and it is not a built-in "
                         "workload; see --list-workloads)\n",
                 Opts.Input.c_str());
    return nullptr;
  }
  std::stringstream Buffer;
  Buffer << File.rdbuf();
  ir::ParseResult Parsed = ir::parseModule(Buffer.str());
  if (!Parsed.ok()) {
    std::fprintf(stderr, "pp: %s: %s\n", Opts.Input.c_str(),
                 Parsed.Error.c_str());
    return nullptr;
  }
  return std::move(Parsed.M);
}

void reportSummary(const prof::RunOutcome &Base,
                   const prof::RunOutcome &Run) {
  TableWriter Table;
  Table.setHeader({"Metric", "Base", "Instrumented", "Ratio"});
  for (unsigned E = 0; E != hw::NumEvents; ++E) {
    uint64_t BaseVal = Base.Totals[E];
    uint64_t RunVal = Run.Totals[E];
    Table.addRow({hw::eventName(static_cast<hw::Event>(E)),
                  std::to_string(BaseVal), std::to_string(RunVal),
                  formatRatio(double(RunVal), double(BaseVal))});
  }
  std::printf("%s\n", Table.render().c_str());
}

void reportHotPaths(const ir::Module &M, const prof::RunOutcome &Run,
                    const Options &Opts) {
  std::vector<analysis::PathRecord> Records =
      analysis::collectPathRecords(Run);
  analysis::HotPathAnalysis A =
      analysis::analyzeHotPaths(Records, Opts.HotThreshold);
  std::printf("%llu executed paths; %llu hot (>= %.2f%% of misses) cover "
              "%s of misses\n\n",
              (unsigned long long)A.TotalPaths,
              (unsigned long long)A.Hot.Num, 100.0 * Opts.HotThreshold,
              formatPercent(double(A.Hot.Misses), double(A.TotalMisses))
                  .c_str());

  TableWriter Table;
  // k > 1 runs rename the sum column and render each window's iteration
  // segments; k=1 output stays byte-identical to the classic tool.
  bool KMode = Opts.K > 1;
  if (KMode)
    Table.setHeader({"Function", "k", "Window", "Freq", "PIC0", "PIC1",
                     "Blocks"});
  else
    Table.setHeader({"Function", "Path", "Freq", "PIC0", "PIC1", "Blocks"});
  unsigned Shown = 0;
  for (size_t Index : A.HotIndices) {
    if (Shown++ == Opts.MaxPathsShown)
      break;
    const analysis::PathRecord &Record = Records[Index];
    const ir::Function &F = *M.function(Record.FuncId);
    // The function's effective k after the fallback ladder, straight from
    // the run's instrumentation metadata.
    unsigned KIters =
        Record.FuncId < Run.Instr.Functions.size()
            ? Run.Instr.Functions[Record.FuncId].KIters
            : 1;
    std::string Blocks;
    if (KIters > 1) {
      // Rebuilding the bundle is deterministic, so the decode matches the
      // numbering the run counted with.
      bl::KPathBundle Bundle(F, KIters);
      std::vector<bl::RegeneratedPath> Segments =
          Bundle.KPN.regenerate(Record.PathSum);
      for (size_t S = 0; S != Segments.size(); ++S) {
        const bl::RegeneratedPath &Path = Segments[S];
        if (S)
          Blocks += " | ";
        else if (Path.StartsAfterBackedge)
          Blocks += "(loop) ";
        for (size_t N = 0; N != Path.Nodes.size(); ++N) {
          if (N)
            Blocks += " ";
          Blocks += Bundle.G.block(Path.Nodes[N])->name();
        }
      }
      if (!Segments.empty() && Segments.back().EndsWithBackedge)
        Blocks += " (back edge)";
    } else {
      cfg::Cfg G(F);
      bl::PathNumbering PN(G);
      if (PN.valid()) {
        bl::RegeneratedPath Path = PN.regenerate(Record.PathSum);
        if (Path.StartsAfterBackedge)
          Blocks += "(loop) ";
        for (size_t N = 0; N != Path.Nodes.size(); ++N) {
          if (N)
            Blocks += " ";
          Blocks += G.block(Path.Nodes[N])->name();
        }
        if (Path.EndsWithBackedge)
          Blocks += " (back edge)";
      }
    }
    std::vector<std::string> Cells{F.name()};
    if (KMode)
      Cells.push_back(std::to_string(KIters));
    Cells.insert(Cells.end(),
                 {std::to_string(Record.PathSum),
                  std::to_string(Record.Freq), std::to_string(Record.Insts),
                  std::to_string(Record.Misses), Blocks});
    Table.addRow(std::move(Cells));
  }
  std::printf("%s\n", Table.render().c_str());
}

void reportProcedures(const ir::Module &M, const prof::RunOutcome &Run,
                      const Options &Opts) {
  std::vector<analysis::PathRecord> Records =
      analysis::collectPathRecords(Run);
  std::vector<analysis::ProcRecord> Procs =
      analysis::aggregateByProcedure(Records);
  std::sort(Procs.begin(), Procs.end(),
            [](const analysis::ProcRecord &A, const analysis::ProcRecord &B) {
              return A.Misses > B.Misses;
            });
  TableWriter Table;
  Table.setHeader({"Function", "Paths", "Calls+Loops", "PIC0", "PIC1"});
  for (const analysis::ProcRecord &Proc : Procs)
    Table.addRow({M.function(Proc.FuncId)->name(),
                  std::to_string(Proc.NumPathsExecuted),
                  std::to_string(Proc.Freq), std::to_string(Proc.Insts),
                  std::to_string(Proc.Misses)});
  std::printf("%s\n", Table.render().c_str());
}

/// Path coverage (the program-testing application the paper cites
/// [WHH80, RBDL97]): executed paths vs the statically possible ones.
void reportCoverage(const ir::Module &M, const prof::RunOutcome &Run) {
  TableWriter Table;
  Table.setHeader({"Function", "Potential", "Executed", "Coverage"});
  uint64_t TotalPotential = 0, TotalExecuted = 0;
  for (const prof::FunctionPathProfile &Profile : Run.PathProfiles) {
    if (!Profile.HasProfile)
      continue;
    uint64_t Executed = Profile.Paths.size();
    Table.addRow({M.function(Profile.FuncId)->name(),
                  std::to_string(Profile.NumPaths),
                  std::to_string(Executed),
                  formatPercent(double(Executed),
                                double(Profile.NumPaths))});
    TotalPotential += Profile.NumPaths;
    TotalExecuted += Executed;
  }
  Table.addSeparator();
  Table.addRow({"total", std::to_string(TotalPotential),
                std::to_string(TotalExecuted),
                formatPercent(double(TotalExecuted),
                              double(TotalPotential))});
  std::printf("path coverage:\n%s\n", Table.render().c_str());
}

void reportCct(const prof::RunOutcome &Run, const Options &Opts) {
  const cct::CallingContextTree &Tree = *Run.Tree;
  cct::CctStats Stats = Tree.computeStats();
  std::printf("CCT: %llu records, %llu heap bytes, avg out-degree %.1f, "
              "height avg %.1f / max %llu, max replication %llu, "
              "%llu recursion backedges\n\n",
              (unsigned long long)Stats.NumRecords,
              (unsigned long long)Stats.TotalBytes, Stats.AvgOutDegree,
              Stats.AvgLeafDepth, (unsigned long long)Stats.MaxDepth,
              (unsigned long long)Stats.MaxReplication,
              (unsigned long long)Stats.BackedgeSlots);

  // The most-visited contexts.
  std::vector<const cct::CallRecord *> Sorted;
  for (const auto &R : Tree.records())
    if (R->procId() != cct::RootProcId)
      Sorted.push_back(R.get());
  std::sort(Sorted.begin(), Sorted.end(),
            [](const cct::CallRecord *A, const cct::CallRecord *B) {
              return A->Metrics[0] > B->Metrics[0];
            });
  TableWriter Table;
  Table.setHeader({"Context", "Calls", "Paths", "PIC0", "PIC1"});
  unsigned Shown = 0;
  for (const cct::CallRecord *R : Sorted) {
    if (Shown++ == Opts.MaxPathsShown)
      break;
    std::string Context;
    std::vector<const cct::CallRecord *> Chain;
    for (const cct::CallRecord *Cursor = R;
         Cursor && Cursor->procId() != cct::RootProcId;
         Cursor = Cursor->parent())
      Chain.push_back(Cursor);
    for (auto It = Chain.rbegin(); It != Chain.rend(); ++It) {
      if (!Context.empty())
        Context += " > ";
      Context += Tree.procDesc((*It)->procId()).Name;
    }
    // Metrics live in the record for Context+HW, or summed over the
    // per-record path cells for the combined flow modes.
    uint64_t Pic0 = R->Metrics[1], Pic1 = R->Metrics[2];
    for (const auto &[Sum, Cell] : R->PathTable) {
      Pic0 += Cell.Metric0;
      Pic1 += Cell.Metric1;
    }
    Table.addRow({Context, std::to_string(R->Metrics[0]),
                  std::to_string(R->PathTable.size()),
                  std::to_string(Pic0), std::to_string(Pic1)});
  }
  std::printf("%s\n", Table.render().c_str());

  if (!Opts.DotFile.empty()) {
    std::ofstream Out(Opts.DotFile);
    Out << cct::exportDot(Tree);
    std::printf("wrote %s\n", Opts.DotFile.c_str());
  }
  if (!Opts.CctFile.empty()) {
    std::vector<uint8_t> Bytes = cct::serialize(Tree);
    std::ofstream Out(Opts.CctFile, std::ios::binary);
    Out.write(reinterpret_cast<const char *>(Bytes.data()),
              static_cast<std::streamsize>(Bytes.size()));
    std::printf("wrote %s (%zu bytes)\n", Opts.CctFile.c_str(),
                Bytes.size());
  }
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  // $PP_BL_K supplies the default k (strictly parsed — a malformed value
  // warns and falls back to classic); an explicit --k= wins.
  Opts.K = prof::defaultKFromEnv("pp");
  if (!parseArgs(Argc, Argv, Opts))
    return 1;
  if (Opts.ListWorkloads) {
    for (const workloads::WorkloadSpec &Spec : workloads::spec95Suite())
      std::printf("%-14s (%s)\n", Spec.Name.c_str(),
                  Spec.IsFloat ? "CFP95" : "CINT95");
    return 0;
  }
  if (Opts.Input.empty()) {
    printUsage();
    return 1;
  }

  std::unique_ptr<ir::Module> M = loadInput(Opts);
  if (!M)
    return 1;
  if (Opts.DumpIr) {
    std::printf("%s", ir::printModule(*M).c_str());
    return 0;
  }

  if (Opts.K > 1) {
    if (Opts.M != prof::Mode::Flow && Opts.M != prof::Mode::FlowHw) {
      std::fprintf(stderr,
                   "pp: --k=%u needs --mode=flow or --mode=flowhw "
                   "(got %s)\n",
                   Opts.K, prof::modeName(Opts.M));
      return 1;
    }
    if (Opts.Acq.Kind != prof::Acquisition::Exact) {
      std::fprintf(stderr,
                   "pp: --k=%u needs --acquisition=exact (sampling "
                   "reconstructs single-iteration paths only)\n",
                   Opts.K);
      return 1;
    }
  }

  prof::SessionOptions Session;
  Session.Config.M = Opts.M;
  Session.Config.Pic0 = Opts.Pic0;
  Session.Config.Pic1 = Opts.Pic1;
  Session.Config.K = Opts.K;
  Session.Acq = Opts.Acq;
  if (!Opts.SignalSpec.empty()) {
    size_t Colon = Opts.SignalSpec.find(':');
    if (Colon == std::string::npos) {
      std::fprintf(stderr, "pp: --signal wants <function>:<interval>\n");
      return 1;
    }
    Session.SignalHandler = Opts.SignalSpec.substr(0, Colon);
    Session.SignalInterval =
        std::strtoull(Opts.SignalSpec.c_str() + Colon + 1, nullptr, 10);
    if (Session.SignalInterval == 0 ||
        !M->findFunction(Session.SignalHandler)) {
      std::fprintf(stderr, "pp: bad --signal '%s'\n",
                   Opts.SignalSpec.c_str());
      return 1;
    }
  }

  if (Opts.DumpInstrumented) {
    prof::Instrumented Instr = prof::instrument(*M, Session.Config);
    std::printf("%s", ir::printModule(*Instr.M).c_str());
    return 0;
  }

  // Declare both runs up front on the shared driver; a disk cache
  // ($PP_RUN_CACHE_DIR) lets repeat invocations skip the measurement.
  // File inputs bypass the cache — their contents are not named by the
  // input path, unlike registry workloads.
  bool IsBuiltin = workloads::buildWorkload(Opts.Input, Opts.Scale) != nullptr;
  auto MakePlan = [&Opts, IsBuiltin](const prof::SessionOptions &Options) {
    driver::RunPlan Plan;
    Plan.Workload = Opts.Input;
    Plan.Scale = Opts.Scale;
    Plan.Options = Options;
    Plan.Build = [Opts] { return loadInput(Opts); };
    Plan.Cacheable = IsBuiltin;
    return Plan;
  };
  prof::SessionOptions BaseSession = Session;
  BaseSession.Config.M = prof::Mode::None;
  // The overhead baseline is always an exact uninstrumented run — the
  // thing both acquisitions are measured against. It is also always
  // classic k=1: an uninstrumented run has no window state, and the
  // baseline fingerprint must stay shared across k values.
  BaseSession.Config.K = 1;
  BaseSession.Acq = prof::AcquisitionOptions();
  driver::Driver &D = driver::defaultDriver();
  if (!Opts.ProfileOutDir.empty())
    D.scheduler().setProfileOutDir(Opts.ProfileOutDir);
  if (!Opts.ObsOutFile.empty())
    obs::setReportPath(Opts.ObsOutFile);
  size_t BaseTicket = D.submit(MakePlan(BaseSession));
  size_t RunTicket = D.submit(MakePlan(Session));

  driver::OutcomePtr Base = D.get(BaseTicket);
  if (!Base || !Base->Result.Ok) {
    std::fprintf(stderr, "pp: program failed: %s\n",
                 Base ? Base->Result.Error.c_str() : "no outcome");
    return 1;
  }

  driver::OutcomePtr Run = D.get(RunTicket);
  if (!Run || !Run->Result.Ok) {
    std::fprintf(stderr, "pp: instrumented program failed: %s\n",
                 Run ? Run->Result.Error.c_str() : "no outcome");
    return 1;
  }

  std::printf("== %s under %s (PIC0=%s, PIC1=%s) ==\n", Opts.Input.c_str(),
              prof::modeName(Opts.M), hw::eventName(Opts.Pic0),
              hw::eventName(Opts.Pic1));
  std::printf("exit value %llu; %llu instructions executed\n",
              (unsigned long long)Run->Result.ExitValue,
              (unsigned long long)Run->Result.ExecutedInsts);
  if (Opts.Acq.Kind == prof::Acquisition::Overflow)
    std::printf("overflow sampling on PIC%u, period %llu: %llu traps, "
                "%llu samples (profile is a statistical estimate)\n",
                Opts.Acq.Pic, (unsigned long long)Opts.Acq.Period,
                (unsigned long long)Run->Acq.Traps,
                (unsigned long long)Run->Acq.Samples);
  if (Opts.K > 1) {
    // Name the functions the fallback ladder dropped below the requested
    // k (their k-path space would have overflowed 2^62 ids).
    std::string Laddered;
    for (size_t Id = 0; Id != Run->Instr.Functions.size(); ++Id) {
      const prof::FunctionInstrInfo &Info = Run->Instr.Functions[Id];
      if (!Info.HasPathProfile || Info.KIters >= Opts.K)
        continue;
      if (!Laddered.empty())
        Laddered += ", ";
      Laddered += formatString("%s k=%u", M->function(Id)->name().c_str(),
                               Info.KIters);
    }
    if (Laddered.empty())
      std::printf("k-iteration paths: k=%u on every instrumented "
                  "function\n",
                  Opts.K);
    else
      std::printf("k-iteration paths: requested k=%u; overflow fallback: "
                  "%s\n",
                  Opts.K, Laddered.c_str());
  }
  std::printf("\n");
  reportSummary(*Base, *Run);

  if (Opts.M == prof::Mode::Flow || Opts.M == prof::Mode::FlowHw) {
    reportHotPaths(*M, *Run, Opts);
    reportProcedures(*M, *Run, Opts);
    if (Opts.Coverage)
      reportCoverage(*M, *Run);
  }
  if (Run->Tree)
    reportCct(*Run, Opts);
  return 0;
}
