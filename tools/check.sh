#!/bin/sh
# The repo's sanitizer gate: builds and runs the test suite under the
# address sanitizer (the hardening proof obligation — the fault-injection
# sweep's out-of-bounds claims are only mechanically checked here) and,
# optionally, the thread sanitizer (the parallel driver's race-freedom
# proof). Separate build trees keep the sanitized objects out of the
# normal build.
#
# usage: tools/check.sh [asan|tsan|all]   (default: asan)
#
# The ASan pass runs the full suite; the TSan pass runs the driver,
# fault-injection, profile-repository, observability, and optimizer
# tests, which exercise every concurrent component (worker pool, run
# cache, parallel artifact merge, per-thread obs ring buffers, and the
# benches' Build closures optimizing modules on worker threads).

set -e

MODE=${1:-asan}
JOBS=$(nproc 2>/dev/null || echo 4)

run_asan() {
  echo "== check.sh: address-sanitizer pass ==" >&2
  cmake -B build-asan -S . -DPP_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$JOBS"
  (cd build-asan && ctest --output-on-failure -j "$JOBS")
}

run_tsan() {
  echo "== check.sh: thread-sanitizer pass ==" >&2
  cmake -B build-tsan -S . -DPP_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" --target driver_test \
        --target fault_injection_test --target profdb_test \
        --target obs_test --target collectd_test --target wire_test \
        --target server_test --target opt_test \
        --target pgo_differential_test --target kpath_numbering_test
  (cd build-tsan && ctest --output-on-failure -j "$JOBS" \
        -R 'DriverTest|RunKeyTest|OutcomeIOTest|SchedulerTest|Fault|ProfDb|Obs|Collectd|Wire|Server|Opt|Pgo|KPath|NumberingQueries')
}

case "$MODE" in
  asan) run_asan ;;
  tsan) run_tsan ;;
  all)  run_asan; run_tsan ;;
  *)
    echo "usage: tools/check.sh [asan|tsan|all]" >&2
    exit 2
    ;;
esac

echo "check.sh: $MODE pass clean" >&2
