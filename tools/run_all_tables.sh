#!/bin/sh
# Regenerates the paper's five tables through the shared run cache: every
# unique (workload, mode, machine) run executes at most once across all
# five binaries, on the driver's worker pool, and later tables reuse the
# runs of earlier ones from disk.
#
# Every run also deposits a profile artifact (PP_PROFILE_OUT), and a
# final pp-report pass regenerates Tables 3-5 from the artifact
# repository alone, asserting the stored profiles reproduce the live
# tables byte for byte.
#
# usage: tools/run_all_tables.sh [build-dir] [output-dir]
#
# Environment:
#   PP_RUN_CACHE_DIR   cache directory (default: a fresh temp dir)
#   PP_PROFILE_OUT     artifact repository (default: <output-dir>/artifacts,
#                      or a fresh temp dir)
#   PP_DRIVER_THREADS  worker threads (default: hardware, clamped to 4-16)
#   PP_DRIVER_SERIAL=1 force serial in-order execution
#   PP_DRIVER_STATS=1  per-binary scheduling/cache stats on stderr (set
#                      below unless already set)
#   PP_OBS=0           disable the observability collector entirely
#
# Each table binary also writes a pipeline observability report
# (<output-dir>/<table>.obs.json; see pp-report obs) unless PP_OBS_OUT
# is already set by the caller.

set -e

BUILD_DIR=${1:-build}
OUT_DIR=${2:-}

if [ ! -x "$BUILD_DIR/bench/table1_overhead" ]; then
  echo "run_all_tables.sh: no bench binaries under '$BUILD_DIR'" \
       "(build first: cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

if [ -z "${PP_RUN_CACHE_DIR:-}" ]; then
  PP_RUN_CACHE_DIR=$(mktemp -d "${TMPDIR:-/tmp}/pp-run-cache.XXXXXX")
  export PP_RUN_CACHE_DIR
  echo "run_all_tables.sh: caching runs in $PP_RUN_CACHE_DIR" >&2
fi
if [ -z "${PP_PROFILE_OUT:-}" ]; then
  if [ -n "$OUT_DIR" ]; then
    PP_PROFILE_OUT=$OUT_DIR/artifacts
    mkdir -p "$PP_PROFILE_OUT"
  else
    PP_PROFILE_OUT=$(mktemp -d "${TMPDIR:-/tmp}/pp-artifacts.XXXXXX")
  fi
  export PP_PROFILE_OUT
  echo "run_all_tables.sh: depositing artifacts in $PP_PROFILE_OUT" >&2
fi
PP_DRIVER_STATS=${PP_DRIVER_STATS:-1}
export PP_DRIVER_STATS

# Live table outputs are kept (in OUT_DIR, or a temp dir when printing
# to stdout) so the pp-report replay below can byte-compare against them.
LIVE_DIR=$OUT_DIR
if [ -z "$LIVE_DIR" ]; then
  LIVE_DIR=$(mktemp -d "${TMPDIR:-/tmp}/pp-tables.XXXXXX")
fi
mkdir -p "$LIVE_DIR"

for table in table1_overhead table2_perturbation table3_cct_stats \
             table4_hot_paths table5_hot_procedures; do
  PP_OBS_OUT=${PP_OBS_OUT:-$LIVE_DIR/$table.obs.json} \
    "$BUILD_DIR/bench/$table" > "$LIVE_DIR/$table.txt"
  if [ -n "$OUT_DIR" ]; then
    echo "wrote $OUT_DIR/$table.txt (obs: $table.obs.json)" >&2
  else
    cat "$LIVE_DIR/$table.txt"
    echo
  fi
done

# Replay Tables 3-5 from the artifact repository alone and assert the
# stored profiles reproduce the live output byte for byte.
PPREPORT=$BUILD_DIR/tools/pp-report/pp-report
if [ ! -x "$PPREPORT" ]; then
  echo "run_all_tables.sh: $PPREPORT not built; skipping artifact replay" >&2
  exit 0
fi
echo "run_all_tables.sh: replaying Tables 3-5 from $PP_PROFILE_OUT" >&2
status=0
for pair in "cct-stats table3_cct_stats" "top-paths table4_hot_paths" \
            "top-procs table5_hot_procedures"; do
  cmd=${pair%% *}
  table=${pair#* }
  if ! "$PPREPORT" "$cmd" --repo="$PP_PROFILE_OUT" \
      | cmp -s - "$LIVE_DIR/$table.txt"; then
    echo "run_all_tables.sh: pp-report $cmd --repo diverged from the" \
         "live $table output" >&2
    status=1
  fi
done
if [ "$status" -eq 0 ]; then
  echo "run_all_tables.sh: artifact replay matches live tables" >&2
fi
exit "$status"
