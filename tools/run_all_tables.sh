#!/bin/sh
# Regenerates the paper's five tables through the shared run cache: every
# unique (workload, mode, machine) run executes at most once across all
# five binaries, on the driver's worker pool, and later tables reuse the
# runs of earlier ones from disk.
#
# usage: tools/run_all_tables.sh [build-dir] [output-dir]
#
# Environment:
#   PP_RUN_CACHE_DIR   cache directory (default: a fresh temp dir)
#   PP_DRIVER_THREADS  worker threads (default: hardware, clamped to 4-16)
#   PP_DRIVER_SERIAL=1 force serial in-order execution
#   PP_DRIVER_STATS=1  per-binary scheduling/cache stats on stderr (set
#                      below unless already set)

set -e

BUILD_DIR=${1:-build}
OUT_DIR=${2:-}

if [ ! -x "$BUILD_DIR/bench/table1_overhead" ]; then
  echo "run_all_tables.sh: no bench binaries under '$BUILD_DIR'" \
       "(build first: cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

if [ -z "${PP_RUN_CACHE_DIR:-}" ]; then
  PP_RUN_CACHE_DIR=$(mktemp -d "${TMPDIR:-/tmp}/pp-run-cache.XXXXXX")
  export PP_RUN_CACHE_DIR
  echo "run_all_tables.sh: caching runs in $PP_RUN_CACHE_DIR" >&2
fi
PP_DRIVER_STATS=${PP_DRIVER_STATS:-1}
export PP_DRIVER_STATS

for table in table1_overhead table2_perturbation table3_cct_stats \
             table4_hot_paths table5_hot_procedures; do
  if [ -n "$OUT_DIR" ]; then
    mkdir -p "$OUT_DIR"
    "$BUILD_DIR/bench/$table" > "$OUT_DIR/$table.txt"
    echo "wrote $OUT_DIR/$table.txt" >&2
  else
    "$BUILD_DIR/bench/$table"
    echo
  fi
done
