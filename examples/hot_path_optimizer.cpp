//===- examples/hot_path_optimizer.cpp - profile-guided code layout -------------===//
//
// The paper's summary: "Compilers can use path profiles to identify
// portions of a program that would benefit from optimization, and as an
// empirical basis for making optimization tradeoffs." This example closes
// that loop inside the simulator: profile a program whose hot paths are
// interleaved with fat cold error-handling blocks, reorder each hot
// function so its hottest path's blocks are laid out contiguously, and
// re-measure. The hot code's I-cache footprint collapses and the miss
// count drops.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "opt/Layout.h"
#include "prof/Session.h"

#include <cstdio>

using namespace pp;
using namespace pp::ir;

namespace {

/// A stage function: a chain of hot blocks, each followed by a fat cold
/// "error handling" block that the hot path jumps over. The cold blocks
/// inflate the code so the two stages together overflow the 16 KB I-cache.
Function *buildStage(Module &M, const std::string &Name, uint64_t Data,
                     int Seed) {
  Function *F = M.addFunction(Name, 1);
  BasicBlock *Entry = F->addBlock("entry");
  IRBuilder IRB(F, Entry);
  Reg Value = 0;
  Reg Acc = IRB.movImm(Seed);

  BasicBlock *Cursor = Entry;
  for (int Stage = 0; Stage != 8; ++Stage) {
    BasicBlock *Hot = F->addBlock("hot" + std::to_string(Stage));
    BasicBlock *Cold = F->addBlock("cold" + std::to_string(Stage));
    BasicBlock *Join = F->addBlock("join" + std::to_string(Stage));
    IRB.setBlock(Cursor);
    // The "error" condition is rare: value == a specific pattern.
    Reg Masked = IRB.andImm(Value, 1023);
    Reg IsError = IRB.cmpEqImm(Masked, 999 - Stage);
    IRB.condBr(IsError, Cold, Hot);

    IRB.setBlock(Hot);
    Reg Slot = IRB.andImm(Acc, 511);
    Reg Offset = IRB.shlImm(Slot, 3);
    Reg Addr = IRB.addImm(Offset, static_cast<int64_t>(Data));
    Reg Loaded = IRB.load(Addr, 0);
    Reg Mixed = IRB.add(Acc, Loaded);
    Reg Rotated = IRB.mulImm(Mixed, 33);
    Reg Clipped = IRB.andImm(Rotated, 0xfffff);
    IRB.movRegInto(Acc, Clipped);
    IRB.br(Join);

    // Fat cold block: a long pile of straight-line "recovery" code.
    IRB.setBlock(Cold);
    Reg ColdAcc = IRB.movImm(Stage);
    for (int Filler = 0; Filler != 220; ++Filler) {
      Reg T = IRB.addImm(ColdAcc, Filler);
      Reg T2 = IRB.xorImm(T, 0x5a5a);
      ColdAcc = T2;
    }
    IRB.movRegInto(Acc, ColdAcc);
    IRB.br(Join);

    Cursor = Join;
  }
  IRB.setBlock(Cursor);
  IRB.ret(Acc);
  return F;
}

std::unique_ptr<Module> buildProgram() {
  auto M = std::make_unique<Module>();
  size_t DataIndex = M->addGlobal("data", 4096 * 8);
  uint64_t Data = M->global(DataIndex).Addr;
  Function *StageA = buildStage(*M, "stage_a", Data, 17);
  Function *StageB = buildStage(*M, "stage_b", Data, 71);
  Function *StageC = buildStage(*M, "stage_c", Data, 131);

  Function *Main = M->addFunction("main", 0);
  BasicBlock *Entry = Main->addBlock("entry");
  BasicBlock *Head = Main->addBlock("head");
  BasicBlock *Body = Main->addBlock("body");
  BasicBlock *Done = Main->addBlock("done");
  IRBuilder IRB(Main, Entry);
  Reg I = IRB.movImm(0);
  Reg Acc = IRB.movImm(0);
  IRB.br(Head);
  IRB.setBlock(Head);
  Reg More = IRB.cmpLtImm(I, 2500);
  IRB.condBr(More, Body, Done);
  IRB.setBlock(Body);
  Reg A = IRB.call(StageA, {I});
  Reg B = IRB.call(StageB, {A});
  Reg C = IRB.call(StageC, {B});
  Reg NewAcc = IRB.add(Acc, C);
  IRB.movRegInto(Acc, NewAcc);
  Reg Next = IRB.addImm(I, 1);
  IRB.movRegInto(I, Next);
  IRB.br(Head);
  IRB.setBlock(Done);
  Reg Masked = IRB.andImm(Acc, 0xffffff);
  IRB.ret(Masked);

  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

} // namespace

int main() {
  auto M = buildProgram();
  std::printf("program code size: %zu instructions (%zu KB, vs 16 KB "
              "I-cache)\n\n",
              M->numInsts(), M->numInsts() * 4 / 1024);

  // Measure the original layout.
  prof::SessionOptions Base;
  Base.Config.M = prof::Mode::None;
  prof::RunOutcome Before = prof::runProfile(*M, Base);

  // Profile flow sensitively.
  prof::SessionOptions FlowOptions;
  FlowOptions.Config.M = prof::Mode::FlowHw;
  prof::RunOutcome Profile = prof::runProfile(*M, FlowOptions);
  if (!Profile.Result.Ok) {
    std::fprintf(stderr, "profiling failed: %s\n",
                 Profile.Result.Error.c_str());
    return 1;
  }

  // Optimise: lay every profiled function out hottest-path-first.
  opt::LayoutResult Layout = opt::layoutHotPathsFirst(*M, Profile);
  std::printf("reordered %u of %u profiled functions\n\n",
              Layout.FunctionsReordered, Layout.FunctionsConsidered);
  verifyModuleOrDie(*M);

  prof::RunOutcome After = prof::runProfile(*M, Base);
  if (!After.Result.Ok || After.Result.ExitValue != Before.Result.ExitValue) {
    std::fprintf(stderr, "layout change altered behaviour!\n");
    return 1;
  }

  auto Show = [&](const char *Label, hw::Event E) {
    uint64_t B = Before.total(E), A = After.total(E);
    std::printf("  %-18s %10llu -> %10llu  (%+.1f%%)\n", Label,
                (unsigned long long)B, (unsigned long long)A,
                100.0 * (double(A) - double(B)) / double(B));
  };
  std::printf("profile-guided hot-path-first layout:\n");
  Show("I-cache misses", hw::Event::ICacheMiss);
  Show("cycles", hw::Event::Cycles);
  std::printf("\nsame program, same work (exit value %llu unchanged); only "
              "the block\nlayout moved. The hot paths of the three stages "
              "now share a compact\nI-cache footprint instead of striding "
              "across the cold error blocks.\n",
              (unsigned long long)After.Result.ExitValue);
  return 0;
}
