//===- examples/quickstart.cpp - build, profile, inspect ------------------------===//
//
// The five-minute tour of the library:
//   1. build a program with ir::IRBuilder,
//   2. profile it flow sensitively with hardware metrics (prof::runProfile),
//   3. decode the hot path sums back into block sequences
//      (bl::PathNumbering::regenerate),
//   4. profile it context sensitively and walk the calling context tree.
//
//===----------------------------------------------------------------------===//

#include "bl/PathNumbering.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "prof/Session.h"

#include <cstdio>

using namespace pp;
using namespace pp::ir;

/// A toy program: main repeatedly classifies pseudo-random values with
/// `classify`, which has four paths of very different costs.
static std::unique_ptr<Module> buildProgram() {
  auto M = std::make_unique<Module>();
  size_t TableIndex = M->addGlobal("table", 4096 * 8);
  uint64_t Table = M->global(TableIndex).Addr;

  Function *Classify = M->addFunction("classify", 1);
  {
    BasicBlock *Entry = Classify->addBlock("entry");
    BasicBlock *Small = Classify->addBlock("small");
    BasicBlock *Large = Classify->addBlock("large");
    BasicBlock *Rare = Classify->addBlock("rare");
    BasicBlock *Common = Classify->addBlock("common");
    BasicBlock *Done = Classify->addBlock("done");
    IRBuilder IRB(Classify, Entry);
    Reg Value = 0;
    Reg Out = Classify->freshReg();
    Reg IsSmall = IRB.cmpLtImm(Value, 1000);
    IRB.condBr(IsSmall, Small, Large);

    IRB.setBlock(Small); // cheap: pure arithmetic
    Reg Tripled = IRB.mulImm(Value, 3);
    IRB.movRegInto(Out, Tripled);
    IRB.br(Done);

    IRB.setBlock(Large); // another branch level
    Reg IsRare = IRB.cmpLtImm(Value, 1016);
    IRB.condBr(IsRare, Rare, Common);

    IRB.setBlock(Rare); // expensive: walks the whole table
    Reg Sum = IRB.movImm(0);
    // (a small loop, so this function has loops and multiple paths)
    BasicBlock *Head = Classify->addBlock("walk.head");
    BasicBlock *Body = Classify->addBlock("walk.body");
    Reg Index = IRB.movImm(0);
    IRB.br(Head);
    IRB.setBlock(Head);
    Reg More = IRB.cmpLtImm(Index, 4096);
    IRB.condBr(More, Body, Done);
    IRB.setBlock(Body);
    Reg Offset = IRB.shlImm(Index, 3);
    Reg Addr = IRB.addImm(Offset, static_cast<int64_t>(Table));
    Reg Loaded = IRB.load(Addr, 0);
    Reg NewSum = IRB.add(Sum, Loaded);
    IRB.movRegInto(Sum, NewSum);
    IRB.movRegInto(Out, Sum);
    Reg Next = IRB.addImm(Index, 1);
    IRB.movRegInto(Index, Next);
    IRB.br(Head);

    IRB.setBlock(Common); // moderate: one table touch
    Reg Slot = IRB.andImm(Value, 4095);
    Reg COffset = IRB.shlImm(Slot, 3);
    Reg CAddr = IRB.addImm(COffset, static_cast<int64_t>(Table));
    Reg Old = IRB.load(CAddr, 0);
    Reg Bumped = IRB.addImm(Old, 1);
    IRB.store(CAddr, 0, Bumped);
    IRB.movRegInto(Out, Bumped);
    IRB.br(Done);

    IRB.setBlock(Done);
    IRB.ret(Out);
  }

  Function *Main = M->addFunction("main", 0);
  {
    BasicBlock *Entry = Main->addBlock("entry");
    BasicBlock *Head = Main->addBlock("head");
    BasicBlock *Body = Main->addBlock("body");
    BasicBlock *Done = Main->addBlock("done");
    IRBuilder IRB(Main, Entry);
    Reg Rng = IRB.movImm(0x2545f491);
    Reg Acc = IRB.movImm(0);
    Reg Count = IRB.movImm(0);
    IRB.br(Head);
    IRB.setBlock(Head);
    Reg More = IRB.cmpLtImm(Count, 3000);
    IRB.condBr(More, Body, Done);
    IRB.setBlock(Body);
    Reg Mul = IRB.mulImm(Rng, 6364136223846793005LL);
    Reg Step = IRB.addImm(Mul, 1442695040888963407LL);
    IRB.movRegInto(Rng, Step);
    Reg Sample = IRB.shrImm(Rng, 50); // 0..16383
    Reg Score = IRB.call(Classify, {Sample});
    Reg NewAcc = IRB.add(Acc, Score);
    IRB.movRegInto(Acc, NewAcc);
    Reg Next = IRB.addImm(Count, 1);
    IRB.movRegInto(Count, Next);
    IRB.br(Head);
    IRB.setBlock(Done);
    Reg Masked = IRB.andImm(Acc, 0xffffff);
    IRB.ret(Masked);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

int main() {
  std::unique_ptr<Module> M = buildProgram();

  // --- Flow sensitive profiling with hardware metrics ----------------------
  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::FlowHw;
  Options.Config.Pic0 = hw::Event::Insts;
  Options.Config.Pic1 = hw::Event::DCacheReadMiss;
  prof::RunOutcome Run = prof::runProfile(*M, Options);
  if (!Run.Result.Ok) {
    std::fprintf(stderr, "run failed: %s\n", Run.Result.Error.c_str());
    return 1;
  }
  std::printf("program exited with %llu after %llu instructions\n\n",
              (unsigned long long)Run.Result.ExitValue,
              (unsigned long long)Run.Result.ExecutedInsts);

  const Function &Classify = *M->findFunction("classify");
  cfg::Cfg G(Classify);
  bl::PathNumbering PN(G);
  std::printf("classify has %llu potential paths; executed:\n",
              (unsigned long long)PN.numPaths());
  for (const prof::PathEntry &Entry :
       Run.PathProfiles[Classify.id()].Paths) {
    bl::RegeneratedPath Path = PN.regenerate(Entry.PathSum);
    std::string Blocks;
    for (unsigned Node : Path.Nodes)
      Blocks += G.block(Node)->name() + " ";
    std::printf("  sum %2llu x%-5llu  %6llu insts  %5llu misses   %s%s%s\n",
                (unsigned long long)Entry.PathSum,
                (unsigned long long)Entry.Freq,
                (unsigned long long)Entry.Metric0,
                (unsigned long long)Entry.Metric1,
                Path.StartsAfterBackedge ? "(loop) " : "", Blocks.c_str(),
                Path.EndsWithBackedge ? "(back edge)" : "");
  }

  // --- Context sensitive profiling -----------------------------------------
  Options.Config.M = prof::Mode::Context;
  prof::RunOutcome CtxRun = prof::runProfile(*M, Options);
  std::printf("\ncalling context tree (%zu records):\n",
              CtxRun.Tree->numRecords());
  for (const auto &R : CtxRun.Tree->records()) {
    if (R->procId() == cct::RootProcId)
      continue;
    std::printf("  %*s%s: %llu calls\n", 2 * (R->depth() - 1), "",
                CtxRun.Tree->procDesc(R->procId()).Name.c_str(),
                (unsigned long long)R->Metrics[0]);
  }
  return 0;
}
