//===- examples/gprof_problem.cpp - why contexts beat call graphs ---------------===//
//
// The paper's "gprof problem" (§4.1): tools like gprof apportion a
// procedure's cost to its callers in proportion to call *counts*, which
// "can produce misleading results" [PF88]. This example builds the classic
// counterexample: C is cheap when called from A (small argument) and
// expensive when called from B (large argument); A calls it 9x more often.
// The call-count heuristic blames A; the calling context tree reports the
// truth.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "prof/Session.h"

#include <cstdio>

using namespace pp;
using namespace pp::ir;

int main() {
  auto M = std::make_unique<Module>();

  // work(n): cost linear in n.
  Function *Work = M->addFunction("work", 1);
  {
    BasicBlock *Entry = Work->addBlock("entry");
    BasicBlock *Head = Work->addBlock("head");
    BasicBlock *Body = Work->addBlock("body");
    BasicBlock *Done = Work->addBlock("done");
    IRBuilder IRB(Work, Entry);
    Reg N = 0;
    Reg Acc = IRB.movImm(0);
    Reg I = IRB.movImm(0);
    IRB.br(Head);
    IRB.setBlock(Head);
    Reg More = IRB.cmpLt(I, N);
    IRB.condBr(More, Body, Done);
    IRB.setBlock(Body);
    Reg T = IRB.mulImm(I, 7);
    Reg T2 = IRB.andImm(T, 1023);
    Reg NewAcc = IRB.add(Acc, T2);
    IRB.movRegInto(Acc, NewAcc);
    Reg Next = IRB.addImm(I, 1);
    IRB.movRegInto(I, Next);
    IRB.br(Head);
    IRB.setBlock(Done);
    IRB.ret(Acc);
  }

  // cheap_caller: calls work(4), 900 times.
  Function *CheapCaller = M->addFunction("cheap_caller", 0);
  {
    BasicBlock *Entry = CheapCaller->addBlock("entry");
    BasicBlock *Head = CheapCaller->addBlock("head");
    BasicBlock *Body = CheapCaller->addBlock("body");
    BasicBlock *Done = CheapCaller->addBlock("done");
    IRBuilder IRB(CheapCaller, Entry);
    Reg I = IRB.movImm(0);
    Reg Acc = IRB.movImm(0);
    IRB.br(Head);
    IRB.setBlock(Head);
    Reg More = IRB.cmpLtImm(I, 900);
    IRB.condBr(More, Body, Done);
    IRB.setBlock(Body);
    Reg Four = IRB.movImm(4);
    Reg V = IRB.call(Work, {Four});
    Reg NewAcc = IRB.add(Acc, V);
    IRB.movRegInto(Acc, NewAcc);
    Reg Next = IRB.addImm(I, 1);
    IRB.movRegInto(I, Next);
    IRB.br(Head);
    IRB.setBlock(Done);
    IRB.ret(Acc);
  }

  // expensive_caller: calls work(2000), 100 times.
  Function *ExpensiveCaller = M->addFunction("expensive_caller", 0);
  {
    BasicBlock *Entry = ExpensiveCaller->addBlock("entry");
    BasicBlock *Head = ExpensiveCaller->addBlock("head");
    BasicBlock *Body = ExpensiveCaller->addBlock("body");
    BasicBlock *Done = ExpensiveCaller->addBlock("done");
    IRBuilder IRB(ExpensiveCaller, Entry);
    Reg I = IRB.movImm(0);
    Reg Acc = IRB.movImm(0);
    IRB.br(Head);
    IRB.setBlock(Head);
    Reg More = IRB.cmpLtImm(I, 100);
    IRB.condBr(More, Body, Done);
    IRB.setBlock(Body);
    Reg Big = IRB.movImm(2000);
    Reg V = IRB.call(Work, {Big});
    Reg NewAcc = IRB.add(Acc, V);
    IRB.movRegInto(Acc, NewAcc);
    Reg Next = IRB.addImm(I, 1);
    IRB.movRegInto(I, Next);
    IRB.br(Head);
    IRB.setBlock(Done);
    IRB.ret(Acc);
  }

  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Reg A = IRB.call(CheapCaller, {});
    Reg B = IRB.call(ExpensiveCaller, {});
    Reg Sum = IRB.add(A, B);
    Reg Masked = IRB.andImm(Sum, 0xffffff);
    IRB.ret(Masked);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);

  // Context and HW: PIC0 counts cycles so records accumulate time.
  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::ContextHw;
  Options.Config.Pic0 = hw::Event::Cycles;
  Options.Config.Pic1 = hw::Event::Insts;
  prof::RunOutcome Run = prof::runProfile(*M, Options);
  if (!Run.Result.Ok) {
    std::fprintf(stderr, "run failed: %s\n", Run.Result.Error.c_str());
    return 1;
  }

  // Gather work()'s two context records.
  uint64_t CheapCalls = 0, CheapCycles = 0;
  uint64_t ExpensiveCalls = 0, ExpensiveCycles = 0;
  unsigned WorkId = Work->id();
  for (const auto &R : Run.Tree->records()) {
    if (R->procId() != WorkId || !R->parent())
      continue;
    const std::string &Caller =
        Run.Tree->procDesc(R->parent()->procId()).Name;
    if (Caller == "cheap_caller") {
      CheapCalls = R->Metrics[0];
      CheapCycles = R->Metrics[1];
    } else if (Caller == "expensive_caller") {
      ExpensiveCalls = R->Metrics[0];
      ExpensiveCycles = R->Metrics[1];
    }
  }
  uint64_t TotalCalls = CheapCalls + ExpensiveCalls;
  uint64_t TotalCycles = CheapCycles + ExpensiveCycles;

  std::printf("work() was called %llu times for %llu cycles total\n\n",
              (unsigned long long)TotalCalls,
              (unsigned long long)TotalCycles);

  std::printf("gprof-style attribution (proportional to call counts):\n");
  std::printf("  cheap_caller:     %5.1f%%  <- blamed for the time\n",
              100.0 * double(CheapCalls) / double(TotalCalls));
  std::printf("  expensive_caller: %5.1f%%\n\n",
              100.0 * double(ExpensiveCalls) / double(TotalCalls));

  std::printf("calling context tree (measured per context):\n");
  std::printf("  cheap_caller > work:     %5.1f%% of cycles "
              "(%llu calls)\n",
              100.0 * double(CheapCycles) / double(TotalCycles),
              (unsigned long long)CheapCalls);
  std::printf("  expensive_caller > work: %5.1f%% of cycles "
              "(%llu calls)  <- the real cost\n\n",
              100.0 * double(ExpensiveCycles) / double(TotalCycles),
              (unsigned long long)ExpensiveCalls);

  std::printf("the call-count heuristic inverts the picture: "
              "expensive_caller makes %.0fx\nfewer calls but owns the "
              "time. Context sensitivity measures instead of guessing.\n",
              double(CheapCalls) / double(ExpensiveCalls));
  return 0;
}
