//===- examples/cache_conflict.cpp - the paper's motivating example -------------===//
//
// From the introduction: "a flow insensitive measurement might find two
// statements in a procedure that have high cache miss rates, whereas a
// flow sensitive measurement could show that the misses occur when the
// statements execute along a common path, and thus are possibly due to a
// cache conflict."
//
// This example constructs exactly that situation: two arrays placed 16 KB
// apart (the L1 size), so they conflict in the direct-mapped cache only
// when one path touches both. Statement-level counts blame both loads
// equally; the path profile shows the misses belong to a single path.
//
//===----------------------------------------------------------------------===//

#include "bl/PathNumbering.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "prof/Session.h"
#include "support/AddressLayout.h"

#include <cstdio>

using namespace pp;
using namespace pp::ir;

int main() {
  auto M = std::make_unique<Module>();

  // Two 8 KB arrays exactly one L1-cache-size (16 KB) apart: elements at
  // equal offsets map to the same direct-mapped set.
  size_t AIndex = M->addGlobal("arrayA", 8 * 1024);
  size_t PadIndex = M->addGlobal("pad", 8 * 1024);
  size_t BIndex = M->addGlobal("arrayB", 8 * 1024);
  uint64_t ArrayA = M->global(AIndex).Addr;
  uint64_t ArrayB = M->global(BIndex).Addr;
  (void)PadIndex;
  std::printf("arrayA at 0x%llx, arrayB at 0x%llx (delta 0x%llx = L1 "
              "size)\n\n",
              (unsigned long long)ArrayA, (unsigned long long)ArrayB,
              (unsigned long long)(ArrayB - ArrayA));

  // process(i, both): always reads A[i]; on the "both" path also reads
  // B[i] — the same cache set, evicting A's line every time.
  Function *Process = M->addFunction("process", 2);
  {
    BasicBlock *Entry = Process->addBlock("entry");
    BasicBlock *OnlyA = Process->addBlock("onlyA");
    BasicBlock *Both = Process->addBlock("both");
    BasicBlock *Done = Process->addBlock("done");
    IRBuilder IRB(Process, Entry);
    Reg I = 0, WantBoth = 1;
    Reg Slot = IRB.andImm(I, 1023);
    Reg Offset = IRB.shlImm(Slot, 3);
    Reg AAddr = IRB.addImm(Offset, static_cast<int64_t>(ArrayA));
    Reg AVal = IRB.load(AAddr, 0); // statement S1
    Reg Out = Process->freshReg();
    IRB.condBr(WantBoth, Both, OnlyA);

    IRB.setBlock(OnlyA);
    Reg Doubled = IRB.mulImm(AVal, 2);
    IRB.movRegInto(Out, Doubled);
    IRB.br(Done);

    IRB.setBlock(Both);
    Reg BAddr = IRB.addImm(Offset, static_cast<int64_t>(ArrayB));
    Reg BVal = IRB.load(BAddr, 0); // statement S2: conflicts with S1
    Reg Sum = IRB.add(AVal, BVal);
    IRB.movRegInto(Out, Sum);
    IRB.br(Done);

    IRB.setBlock(Done);
    IRB.ret(Out);
  }

  Function *Main = M->addFunction("main", 0);
  {
    BasicBlock *Entry = Main->addBlock("entry");
    BasicBlock *Head = Main->addBlock("head");
    BasicBlock *Body = Main->addBlock("body");
    BasicBlock *Done = Main->addBlock("done");
    IRBuilder IRB(Main, Entry);
    Reg Count = IRB.movImm(0);
    Reg Acc = IRB.movImm(0);
    IRB.br(Head);
    IRB.setBlock(Head);
    Reg More = IRB.cmpLtImm(Count, 8000);
    IRB.condBr(More, Body, Done);
    IRB.setBlock(Body);
    // Every 4th iteration takes the conflicting path.
    Reg Mod = IRB.andImm(Count, 3);
    Reg WantBoth = IRB.cmpEqImm(Mod, 0);
    Reg Value = IRB.call(Process, {Count, WantBoth});
    Reg NewAcc = IRB.add(Acc, Value);
    IRB.movRegInto(Acc, NewAcc);
    Reg Next = IRB.addImm(Count, 1);
    IRB.movRegInto(Count, Next);
    IRB.br(Head);
    IRB.setBlock(Done);
    Reg Masked = IRB.andImm(Acc, 0xffff);
    IRB.ret(Masked);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);

  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::FlowHw;
  Options.Config.Pic0 = hw::Event::Insts;
  Options.Config.Pic1 = hw::Event::DCacheReadMiss;
  prof::RunOutcome Run = prof::runProfile(*M, Options);
  if (!Run.Result.Ok) {
    std::fprintf(stderr, "run failed: %s\n", Run.Result.Error.c_str());
    return 1;
  }

  const Function &ProcessFn = *M->findFunction("process");
  cfg::Cfg G(ProcessFn);
  bl::PathNumbering PN(G);

  std::printf("per-path profile of process():\n");
  uint64_t BothMisses = 0, OnlyAMisses = 0, BothFreq = 0, OnlyAFreq = 0;
  for (const prof::PathEntry &Entry :
       Run.PathProfiles[ProcessFn.id()].Paths) {
    bl::RegeneratedPath Path = PN.regenerate(Entry.PathSum);
    std::string Blocks;
    bool IsBoth = false;
    for (unsigned Node : Path.Nodes) {
      Blocks += G.block(Node)->name() + " ";
      if (G.block(Node)->name() == "both")
        IsBoth = true;
    }
    std::printf("  %-22s x%-5llu %5llu misses  (%.3f misses/exec)\n",
                Blocks.c_str(), (unsigned long long)Entry.Freq,
                (unsigned long long)Entry.Metric1,
                double(Entry.Metric1) / double(Entry.Freq));
    if (IsBoth) {
      BothMisses += Entry.Metric1;
      BothFreq += Entry.Freq;
    } else {
      OnlyAMisses += Entry.Metric1;
      OnlyAFreq += Entry.Freq;
    }
  }

  std::printf("\nthe conflict path runs %.0f%% of the time but takes "
              "%.0f%% of process()'s misses:\n",
              100.0 * double(BothFreq) / double(BothFreq + OnlyAFreq),
              100.0 * double(BothMisses) /
                  double(BothMisses + OnlyAMisses));
  std::printf("both loads look equally guilty statement-wise; the path "
              "profile shows they\nonly miss when they execute together — "
              "the signature of a cache conflict.\nFix: pad arrayB by one "
              "line, or fuse the loads onto different sets.\n");
  return 0;
}
