# Empty compiler generated dependencies file for pp.
# This may be replaced when dependencies are built.
