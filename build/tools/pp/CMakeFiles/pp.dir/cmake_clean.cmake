file(REMOVE_RECURSE
  "CMakeFiles/pp.dir/Main.cpp.o"
  "CMakeFiles/pp.dir/Main.cpp.o.d"
  "pp"
  "pp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
