file(REMOVE_RECURSE
  "CMakeFiles/path_numbering_test.dir/PathNumberingTest.cpp.o"
  "CMakeFiles/path_numbering_test.dir/PathNumberingTest.cpp.o.d"
  "path_numbering_test"
  "path_numbering_test.pdb"
  "path_numbering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_numbering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
