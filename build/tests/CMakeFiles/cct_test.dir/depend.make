# Empty dependencies file for cct_test.
# This may be replaced when dependencies are built.
