file(REMOVE_RECURSE
  "CMakeFiles/cct_test.dir/CctTest.cpp.o"
  "CMakeFiles/cct_test.dir/CctTest.cpp.o.d"
  "cct_test"
  "cct_test.pdb"
  "cct_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
