file(REMOVE_RECURSE
  "CMakeFiles/vm_edge_test.dir/VmEdgeCaseTest.cpp.o"
  "CMakeFiles/vm_edge_test.dir/VmEdgeCaseTest.cpp.o.d"
  "vm_edge_test"
  "vm_edge_test.pdb"
  "vm_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
