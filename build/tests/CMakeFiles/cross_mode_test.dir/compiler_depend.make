# Empty compiler generated dependencies file for cross_mode_test.
# This may be replaced when dependencies are built.
