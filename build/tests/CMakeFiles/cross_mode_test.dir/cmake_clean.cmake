file(REMOVE_RECURSE
  "CMakeFiles/cross_mode_test.dir/CrossModeTest.cpp.o"
  "CMakeFiles/cross_mode_test.dir/CrossModeTest.cpp.o.d"
  "cross_mode_test"
  "cross_mode_test.pdb"
  "cross_mode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_mode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
