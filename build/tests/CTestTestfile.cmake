# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/cfg_test[1]_include.cmake")
include("/root/repo/build/tests/path_numbering_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/cct_test[1]_include.cmake")
include("/root/repo/build/tests/prof_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/machine_config_test[1]_include.cmake")
include("/root/repo/build/tests/instrumenter_test[1]_include.cmake")
include("/root/repo/build/tests/signal_test[1]_include.cmake")
include("/root/repo/build/tests/cross_mode_test[1]_include.cmake")
include("/root/repo/build/tests/sampling_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/vm_edge_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
