file(REMOVE_RECURSE
  "CMakeFiles/fig4_cct_shapes.dir/fig4_cct_shapes.cpp.o"
  "CMakeFiles/fig4_cct_shapes.dir/fig4_cct_shapes.cpp.o.d"
  "fig4_cct_shapes"
  "fig4_cct_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cct_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
