# Empty dependencies file for fig4_cct_shapes.
# This may be replaced when dependencies are built.
