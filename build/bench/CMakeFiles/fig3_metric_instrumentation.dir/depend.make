# Empty dependencies file for fig3_metric_instrumentation.
# This may be replaced when dependencies are built.
