file(REMOVE_RECURSE
  "CMakeFiles/fig3_metric_instrumentation.dir/fig3_metric_instrumentation.cpp.o"
  "CMakeFiles/fig3_metric_instrumentation.dir/fig3_metric_instrumentation.cpp.o.d"
  "fig3_metric_instrumentation"
  "fig3_metric_instrumentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_metric_instrumentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
