file(REMOVE_RECURSE
  "CMakeFiles/table2_perturbation.dir/table2_perturbation.cpp.o"
  "CMakeFiles/table2_perturbation.dir/table2_perturbation.cpp.o.d"
  "table2_perturbation"
  "table2_perturbation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_perturbation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
