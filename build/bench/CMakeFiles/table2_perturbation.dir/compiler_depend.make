# Empty compiler generated dependencies file for table2_perturbation.
# This may be replaced when dependencies are built.
