# Empty dependencies file for ablation_sampling_vs_cct.
# This may be replaced when dependencies are built.
