file(REMOVE_RECURSE
  "CMakeFiles/ablation_sampling_vs_cct.dir/ablation_sampling_vs_cct.cpp.o"
  "CMakeFiles/ablation_sampling_vs_cct.dir/ablation_sampling_vs_cct.cpp.o.d"
  "ablation_sampling_vs_cct"
  "ablation_sampling_vs_cct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sampling_vs_cct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
