file(REMOVE_RECURSE
  "CMakeFiles/table5_hot_procedures.dir/table5_hot_procedures.cpp.o"
  "CMakeFiles/table5_hot_procedures.dir/table5_hot_procedures.cpp.o.d"
  "table5_hot_procedures"
  "table5_hot_procedures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_hot_procedures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
