# Empty compiler generated dependencies file for table5_hot_procedures.
# This may be replaced when dependencies are built.
