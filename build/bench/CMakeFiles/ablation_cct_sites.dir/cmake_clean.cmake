file(REMOVE_RECURSE
  "CMakeFiles/ablation_cct_sites.dir/ablation_cct_sites.cpp.o"
  "CMakeFiles/ablation_cct_sites.dir/ablation_cct_sites.cpp.o.d"
  "ablation_cct_sites"
  "ablation_cct_sites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cct_sites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
