# Empty compiler generated dependencies file for ablation_cct_sites.
# This may be replaced when dependencies are built.
