file(REMOVE_RECURSE
  "CMakeFiles/ablation_pgo_layout.dir/ablation_pgo_layout.cpp.o"
  "CMakeFiles/ablation_pgo_layout.dir/ablation_pgo_layout.cpp.o.d"
  "ablation_pgo_layout"
  "ablation_pgo_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pgo_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
