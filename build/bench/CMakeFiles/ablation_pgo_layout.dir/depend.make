# Empty dependencies file for ablation_pgo_layout.
# This may be replaced when dependencies are built.
