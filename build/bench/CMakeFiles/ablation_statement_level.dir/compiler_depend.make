# Empty compiler generated dependencies file for ablation_statement_level.
# This may be replaced when dependencies are built.
