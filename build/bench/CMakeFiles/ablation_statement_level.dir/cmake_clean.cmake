file(REMOVE_RECURSE
  "CMakeFiles/ablation_statement_level.dir/ablation_statement_level.cpp.o"
  "CMakeFiles/ablation_statement_level.dir/ablation_statement_level.cpp.o.d"
  "ablation_statement_level"
  "ablation_statement_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_statement_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
