file(REMOVE_RECURSE
  "CMakeFiles/ablation_cache_assoc.dir/ablation_cache_assoc.cpp.o"
  "CMakeFiles/ablation_cache_assoc.dir/ablation_cache_assoc.cpp.o.d"
  "ablation_cache_assoc"
  "ablation_cache_assoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cache_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
