# Empty dependencies file for ablation_cache_assoc.
# This may be replaced when dependencies are built.
