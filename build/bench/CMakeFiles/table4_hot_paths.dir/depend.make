# Empty dependencies file for table4_hot_paths.
# This may be replaced when dependencies are built.
