file(REMOVE_RECURSE
  "CMakeFiles/table4_hot_paths.dir/table4_hot_paths.cpp.o"
  "CMakeFiles/table4_hot_paths.dir/table4_hot_paths.cpp.o.d"
  "table4_hot_paths"
  "table4_hot_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_hot_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
