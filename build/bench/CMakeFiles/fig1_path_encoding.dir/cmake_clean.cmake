file(REMOVE_RECURSE
  "CMakeFiles/fig1_path_encoding.dir/fig1_path_encoding.cpp.o"
  "CMakeFiles/fig1_path_encoding.dir/fig1_path_encoding.cpp.o.d"
  "fig1_path_encoding"
  "fig1_path_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_path_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
