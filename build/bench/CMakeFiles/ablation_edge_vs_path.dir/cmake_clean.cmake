file(REMOVE_RECURSE
  "CMakeFiles/ablation_edge_vs_path.dir/ablation_edge_vs_path.cpp.o"
  "CMakeFiles/ablation_edge_vs_path.dir/ablation_edge_vs_path.cpp.o.d"
  "ablation_edge_vs_path"
  "ablation_edge_vs_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_edge_vs_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
