# Empty compiler generated dependencies file for ablation_edge_vs_path.
# This may be replaced when dependencies are built.
