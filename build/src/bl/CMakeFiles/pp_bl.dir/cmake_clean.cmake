file(REMOVE_RECURSE
  "CMakeFiles/pp_bl.dir/InstrumentationPlan.cpp.o"
  "CMakeFiles/pp_bl.dir/InstrumentationPlan.cpp.o.d"
  "CMakeFiles/pp_bl.dir/PathNumbering.cpp.o"
  "CMakeFiles/pp_bl.dir/PathNumbering.cpp.o.d"
  "libpp_bl.a"
  "libpp_bl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_bl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
