# Empty compiler generated dependencies file for pp_bl.
# This may be replaced when dependencies are built.
