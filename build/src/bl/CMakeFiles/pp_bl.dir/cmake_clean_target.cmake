file(REMOVE_RECURSE
  "libpp_bl.a"
)
