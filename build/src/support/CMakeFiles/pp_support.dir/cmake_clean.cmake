file(REMOVE_RECURSE
  "CMakeFiles/pp_support.dir/Error.cpp.o"
  "CMakeFiles/pp_support.dir/Error.cpp.o.d"
  "CMakeFiles/pp_support.dir/Format.cpp.o"
  "CMakeFiles/pp_support.dir/Format.cpp.o.d"
  "CMakeFiles/pp_support.dir/TableWriter.cpp.o"
  "CMakeFiles/pp_support.dir/TableWriter.cpp.o.d"
  "libpp_support.a"
  "libpp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
