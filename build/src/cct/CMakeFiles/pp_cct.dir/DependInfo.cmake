
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cct/CallingContextTree.cpp" "src/cct/CMakeFiles/pp_cct.dir/CallingContextTree.cpp.o" "gcc" "src/cct/CMakeFiles/pp_cct.dir/CallingContextTree.cpp.o.d"
  "/root/repo/src/cct/DynamicCallTree.cpp" "src/cct/CMakeFiles/pp_cct.dir/DynamicCallTree.cpp.o" "gcc" "src/cct/CMakeFiles/pp_cct.dir/DynamicCallTree.cpp.o.d"
  "/root/repo/src/cct/Export.cpp" "src/cct/CMakeFiles/pp_cct.dir/Export.cpp.o" "gcc" "src/cct/CMakeFiles/pp_cct.dir/Export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
