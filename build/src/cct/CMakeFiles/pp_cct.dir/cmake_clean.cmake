file(REMOVE_RECURSE
  "CMakeFiles/pp_cct.dir/CallingContextTree.cpp.o"
  "CMakeFiles/pp_cct.dir/CallingContextTree.cpp.o.d"
  "CMakeFiles/pp_cct.dir/DynamicCallTree.cpp.o"
  "CMakeFiles/pp_cct.dir/DynamicCallTree.cpp.o.d"
  "CMakeFiles/pp_cct.dir/Export.cpp.o"
  "CMakeFiles/pp_cct.dir/Export.cpp.o.d"
  "libpp_cct.a"
  "libpp_cct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_cct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
