file(REMOVE_RECURSE
  "libpp_cct.a"
)
