# Empty dependencies file for pp_cct.
# This may be replaced when dependencies are built.
