file(REMOVE_RECURSE
  "CMakeFiles/pp_workloads.dir/Examples.cpp.o"
  "CMakeFiles/pp_workloads.dir/Examples.cpp.o.d"
  "CMakeFiles/pp_workloads.dir/Spec.cpp.o"
  "CMakeFiles/pp_workloads.dir/Spec.cpp.o.d"
  "CMakeFiles/pp_workloads.dir/SpecFp.cpp.o"
  "CMakeFiles/pp_workloads.dir/SpecFp.cpp.o.d"
  "CMakeFiles/pp_workloads.dir/SpecInt.cpp.o"
  "CMakeFiles/pp_workloads.dir/SpecInt.cpp.o.d"
  "CMakeFiles/pp_workloads.dir/Util.cpp.o"
  "CMakeFiles/pp_workloads.dir/Util.cpp.o.d"
  "libpp_workloads.a"
  "libpp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
