
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Examples.cpp" "src/workloads/CMakeFiles/pp_workloads.dir/Examples.cpp.o" "gcc" "src/workloads/CMakeFiles/pp_workloads.dir/Examples.cpp.o.d"
  "/root/repo/src/workloads/Spec.cpp" "src/workloads/CMakeFiles/pp_workloads.dir/Spec.cpp.o" "gcc" "src/workloads/CMakeFiles/pp_workloads.dir/Spec.cpp.o.d"
  "/root/repo/src/workloads/SpecFp.cpp" "src/workloads/CMakeFiles/pp_workloads.dir/SpecFp.cpp.o" "gcc" "src/workloads/CMakeFiles/pp_workloads.dir/SpecFp.cpp.o.d"
  "/root/repo/src/workloads/SpecInt.cpp" "src/workloads/CMakeFiles/pp_workloads.dir/SpecInt.cpp.o" "gcc" "src/workloads/CMakeFiles/pp_workloads.dir/SpecInt.cpp.o.d"
  "/root/repo/src/workloads/Util.cpp" "src/workloads/CMakeFiles/pp_workloads.dir/Util.cpp.o" "gcc" "src/workloads/CMakeFiles/pp_workloads.dir/Util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
