file(REMOVE_RECURSE
  "libpp_hw.a"
)
