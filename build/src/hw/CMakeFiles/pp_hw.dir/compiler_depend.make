# Empty compiler generated dependencies file for pp_hw.
# This may be replaced when dependencies are built.
