file(REMOVE_RECURSE
  "CMakeFiles/pp_hw.dir/CacheSim.cpp.o"
  "CMakeFiles/pp_hw.dir/CacheSim.cpp.o.d"
  "CMakeFiles/pp_hw.dir/Event.cpp.o"
  "CMakeFiles/pp_hw.dir/Event.cpp.o.d"
  "libpp_hw.a"
  "libpp_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
