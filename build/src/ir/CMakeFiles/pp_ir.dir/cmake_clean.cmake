file(REMOVE_RECURSE
  "CMakeFiles/pp_ir.dir/Module.cpp.o"
  "CMakeFiles/pp_ir.dir/Module.cpp.o.d"
  "CMakeFiles/pp_ir.dir/Opcode.cpp.o"
  "CMakeFiles/pp_ir.dir/Opcode.cpp.o.d"
  "CMakeFiles/pp_ir.dir/Parser.cpp.o"
  "CMakeFiles/pp_ir.dir/Parser.cpp.o.d"
  "CMakeFiles/pp_ir.dir/Printer.cpp.o"
  "CMakeFiles/pp_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/pp_ir.dir/Verifier.cpp.o"
  "CMakeFiles/pp_ir.dir/Verifier.cpp.o.d"
  "libpp_ir.a"
  "libpp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
