
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/Module.cpp" "src/ir/CMakeFiles/pp_ir.dir/Module.cpp.o" "gcc" "src/ir/CMakeFiles/pp_ir.dir/Module.cpp.o.d"
  "/root/repo/src/ir/Opcode.cpp" "src/ir/CMakeFiles/pp_ir.dir/Opcode.cpp.o" "gcc" "src/ir/CMakeFiles/pp_ir.dir/Opcode.cpp.o.d"
  "/root/repo/src/ir/Parser.cpp" "src/ir/CMakeFiles/pp_ir.dir/Parser.cpp.o" "gcc" "src/ir/CMakeFiles/pp_ir.dir/Parser.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/ir/CMakeFiles/pp_ir.dir/Printer.cpp.o" "gcc" "src/ir/CMakeFiles/pp_ir.dir/Printer.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/ir/CMakeFiles/pp_ir.dir/Verifier.cpp.o" "gcc" "src/ir/CMakeFiles/pp_ir.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
