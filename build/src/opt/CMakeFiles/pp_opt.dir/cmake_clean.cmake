file(REMOVE_RECURSE
  "CMakeFiles/pp_opt.dir/Layout.cpp.o"
  "CMakeFiles/pp_opt.dir/Layout.cpp.o.d"
  "libpp_opt.a"
  "libpp_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
