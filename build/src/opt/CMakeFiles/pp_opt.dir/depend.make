# Empty dependencies file for pp_opt.
# This may be replaced when dependencies are built.
