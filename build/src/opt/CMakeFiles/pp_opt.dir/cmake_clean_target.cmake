file(REMOVE_RECURSE
  "libpp_opt.a"
)
