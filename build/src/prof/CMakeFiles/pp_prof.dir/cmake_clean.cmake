file(REMOVE_RECURSE
  "CMakeFiles/pp_prof.dir/CallSites.cpp.o"
  "CMakeFiles/pp_prof.dir/CallSites.cpp.o.d"
  "CMakeFiles/pp_prof.dir/Instrumenter.cpp.o"
  "CMakeFiles/pp_prof.dir/Instrumenter.cpp.o.d"
  "CMakeFiles/pp_prof.dir/Mode.cpp.o"
  "CMakeFiles/pp_prof.dir/Mode.cpp.o.d"
  "CMakeFiles/pp_prof.dir/Oracle.cpp.o"
  "CMakeFiles/pp_prof.dir/Oracle.cpp.o.d"
  "CMakeFiles/pp_prof.dir/Runtime.cpp.o"
  "CMakeFiles/pp_prof.dir/Runtime.cpp.o.d"
  "CMakeFiles/pp_prof.dir/Session.cpp.o"
  "CMakeFiles/pp_prof.dir/Session.cpp.o.d"
  "libpp_prof.a"
  "libpp_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
