# Empty compiler generated dependencies file for pp_prof.
# This may be replaced when dependencies are built.
