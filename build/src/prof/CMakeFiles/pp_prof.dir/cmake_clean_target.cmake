file(REMOVE_RECURSE
  "libpp_prof.a"
)
