file(REMOVE_RECURSE
  "CMakeFiles/pp_analysis.dir/BlockPaths.cpp.o"
  "CMakeFiles/pp_analysis.dir/BlockPaths.cpp.o.d"
  "CMakeFiles/pp_analysis.dir/EdgeProjection.cpp.o"
  "CMakeFiles/pp_analysis.dir/EdgeProjection.cpp.o.d"
  "CMakeFiles/pp_analysis.dir/HotPaths.cpp.o"
  "CMakeFiles/pp_analysis.dir/HotPaths.cpp.o.d"
  "CMakeFiles/pp_analysis.dir/Perturbation.cpp.o"
  "CMakeFiles/pp_analysis.dir/Perturbation.cpp.o.d"
  "CMakeFiles/pp_analysis.dir/SiteStats.cpp.o"
  "CMakeFiles/pp_analysis.dir/SiteStats.cpp.o.d"
  "libpp_analysis.a"
  "libpp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
