file(REMOVE_RECURSE
  "libpp_analysis.a"
)
