file(REMOVE_RECURSE
  "CMakeFiles/pp_cfg.dir/Cfg.cpp.o"
  "CMakeFiles/pp_cfg.dir/Cfg.cpp.o.d"
  "libpp_cfg.a"
  "libpp_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
