# Empty compiler generated dependencies file for cache_conflict.
# This may be replaced when dependencies are built.
