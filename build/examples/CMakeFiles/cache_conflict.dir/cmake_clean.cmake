file(REMOVE_RECURSE
  "CMakeFiles/cache_conflict.dir/cache_conflict.cpp.o"
  "CMakeFiles/cache_conflict.dir/cache_conflict.cpp.o.d"
  "cache_conflict"
  "cache_conflict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_conflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
