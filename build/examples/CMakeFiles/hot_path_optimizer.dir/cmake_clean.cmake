file(REMOVE_RECURSE
  "CMakeFiles/hot_path_optimizer.dir/hot_path_optimizer.cpp.o"
  "CMakeFiles/hot_path_optimizer.dir/hot_path_optimizer.cpp.o.d"
  "hot_path_optimizer"
  "hot_path_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_path_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
