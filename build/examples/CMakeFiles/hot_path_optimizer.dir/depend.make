# Empty dependencies file for hot_path_optimizer.
# This may be replaced when dependencies are built.
