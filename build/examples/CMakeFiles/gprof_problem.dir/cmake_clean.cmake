file(REMOVE_RECURSE
  "CMakeFiles/gprof_problem.dir/gprof_problem.cpp.o"
  "CMakeFiles/gprof_problem.dir/gprof_problem.cpp.o.d"
  "gprof_problem"
  "gprof_problem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gprof_problem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
