# Empty compiler generated dependencies file for gprof_problem.
# This may be replaced when dependencies are built.
